"""Transaction fundamentals: commit, abort, buffering, wait-die, gating.

The contract under test: ``client.txn`` runs multi-object transactions
over the existing lock/write/sync primitives — locks acquired in global
address order, writes buffered until a single durable intent append marks
the commit point, per-server applies after it, everything released (and
the intent cleared) on the way out.  Abort before the commit point is a
pure no-op.  With ``enable_txn`` off the feature is inert: the manager
refuses to construct and no server carves an intent region.
"""

import pytest

from repro.core.errors import TxnAbortedError, TxnError, TxnWaitDieError
from tests.core.conftest import build_pool, fast_config


def txn_config(**overrides):
    defaults = dict(enable_txn=True, lock_acquire_timeout_ns=150_000)
    defaults.update(overrides)
    return fast_config(**defaults)


def _alloc(pool, client, n, size=256):
    def setup(sim):
        gaddrs = []
        for _ in range(n):
            gaddrs.append((yield from client.gmalloc(size)))
            yield from client.gwrite(gaddrs[-1], b"\x00" * size)
        yield from client.gsync()
        return gaddrs

    (gaddrs,) = pool.run(setup(pool.sim))
    return gaddrs


def test_commit_applies_all_writes_atomically():
    sim, pool = build_pool(seed=1, num_servers=2, num_clients=2,
                           config=txn_config())
    c0, c1 = pool.clients
    g = _alloc(pool, c0, 2)

    def writer(sim):
        def body(txn):
            txn.write(g[0], b"a" * 256)
            txn.write(g[1], b"b" * 256)
            return txn.id
            yield  # pragma: no cover

        return (yield from c0.txn.run(g, body))

    def reader(sim):
        d0 = yield from c1.gread(g[0], length=256)
        d1 = yield from c1.gread(g[1], length=256)
        return bytes(d0), bytes(d1)

    pool.run(writer(sim))
    ((d0, d1),) = pool.run(reader(sim))
    assert d0 == b"a" * 256 and d1 == b"b" * 256
    assert sim.metrics.counter("pool.txn_commits").count == 1
    # The intent slot was cleared after the applies: no leftover records.
    assert pool.describe()["txn"]["intents_journaled"] == 1


def test_read_your_buffered_writes_and_abort_rolls_back():
    sim, pool = build_pool(seed=2, num_servers=2, num_clients=1,
                           config=txn_config())
    client = pool.clients[0]
    g = _alloc(pool, client, 2)

    def app(sim):
        txn = yield from client.txn.begin(g)
        txn.write(g[0], b"x" * 256)
        mine = yield from txn.read(g[0])
        other = yield from txn.read(g[1], length=4)
        yield from txn.abort()
        after = yield from client.gread(g[0], length=4)
        return bytes(mine), bytes(other), bytes(after)

    ((mine, other, after),) = pool.run(app(sim))
    assert mine == b"x" * 256          # buffered write served locally
    assert other == b"\x00" * 4        # untouched object reads through
    assert after == b"\x00" * 4        # abort left no trace
    assert sim.metrics.counter("pool.txn_aborts").count == 1
    assert sim.metrics.counter("pool.txn_commits").count == 0


def test_undeclared_object_is_rejected():
    sim, pool = build_pool(seed=3, num_servers=2, num_clients=1,
                           config=txn_config())
    client = pool.clients[0]
    g = _alloc(pool, client, 2)

    def app(sim):
        txn = yield from client.txn.begin([g[0]])
        with pytest.raises(TxnError, match="static 2PL"):
            txn.write(g[1], b"z")
        yield from txn.abort()

    pool.run(app(sim))


def test_wait_die_younger_contender_dies():
    sim, pool = build_pool(seed=4, num_servers=2, num_clients=2,
                           config=txn_config())
    c0, c1 = pool.clients
    g = _alloc(pool, c0, 1)
    outcome = {}

    def elder(sim):
        txn = yield from c0.txn.begin(g)
        yield sim.timeout(600_000)  # hold the lock well past the timeout
        txn.write(g[0], b"e" * 256)
        yield from txn.commit()

    def younger(sim):
        yield sim.timeout(10_000)  # strictly later begin => larger stamp
        try:
            yield from c1.txn.begin(g)
        except TxnWaitDieError as exc:
            outcome["died"] = True
            outcome["reason"] = exc.reason

    pool.run(elder(sim), younger(sim))
    assert outcome == {"died": True, "reason": "wait-die"}
    assert sim.metrics.counter("pool.txn_wait_die").count == 1
    assert sim.metrics.counter("pool.txn_commits").count == 1


def test_run_retries_wait_die_until_commit():
    sim, pool = build_pool(seed=5, num_servers=2, num_clients=2,
                           config=txn_config())
    c0, c1 = pool.clients
    g = _alloc(pool, c0, 1)

    def elder(sim):
        txn = yield from c0.txn.begin(g)
        yield sim.timeout(400_000)
        txn.write(g[0], b"1" * 256)
        yield from txn.commit()

    def younger(sim):
        yield sim.timeout(10_000)

        def body(txn):
            txn.write(g[0], b"2" * 256)
            return True
            yield  # pragma: no cover

        return (yield from c1.txn.run(g, body))

    _, committed = pool.run(elder(sim), younger(sim))
    assert committed is True
    assert sim.metrics.counter("pool.txn_commits").count == 2

    def reader(sim):
        data = yield from c0.gread(g[0], length=4)
        return bytes(data)

    (data,) = pool.run(reader(sim))
    assert data == b"2222"  # the retried younger txn applied last


def test_feature_off_is_inert():
    sim, pool = build_pool(seed=6, num_servers=2, num_clients=1,
                           config=fast_config())
    client = pool.clients[0]
    with pytest.raises(TxnError, match="enable_txn"):
        client.txn
    # No intent region was carved, no stamp table registered.
    for server in pool.servers.values():
        assert server.intent_base is None
        assert server.stamp_mr is None


def test_read_only_txn_commits_without_intent():
    sim, pool = build_pool(seed=7, num_servers=2, num_clients=1,
                           config=txn_config())
    client = pool.clients[0]
    g = _alloc(pool, client, 2)

    def app(sim):
        def body(txn):
            a = yield from txn.read(g[0], length=4)
            b = yield from txn.read(g[1], length=4)
            return bytes(a), bytes(b)

        return (yield from client.txn.run(g, body))

    ((a, b),) = pool.run(app(sim))
    assert a == b == b"\x00" * 4
    assert sim.metrics.counter("pool.txn_commits").count == 1
    assert pool.describe()["txn"]["intents_journaled"] == 0


def test_oversized_write_set_aborts_cleanly():
    sim, pool = build_pool(
        seed=8, num_servers=2, num_clients=1,
        config=txn_config(txn_intent_slot_bytes=512))
    client = pool.clients[0]
    g = _alloc(pool, client, 2, size=1024)

    def app(sim):
        def body(txn):
            txn.write(g[0], b"a" * 1024)
            txn.write(g[1], b"b" * 1024)
            return True
            yield  # pragma: no cover

        try:
            yield from client.txn.run(g, body)
        except TxnAbortedError as exc:
            return exc.reason
        return None

    (reason,) = pool.run(app(sim))
    assert reason == "intent"
    # The abort released everything: a fresh txn on the same set commits.
    def retry(sim):
        def body(txn):
            txn.write(g[0], b"c" * 64)
            return True
            yield  # pragma: no cover

        return (yield from client.txn.run(g, body))

    (ok,) = pool.run(retry(sim))
    assert ok is True
