"""Crash atomicity across the commit window.

A transaction's commit has exactly one durability point: the intent-record
append on its coordinator.  These tests kill the client at every named
point around it — ``pre-intent`` (nothing durable → rollback), then
``post-intent`` / ``mid-apply`` / ``pre-clear`` (intent durable → the
master's lease sweep rolls the whole write-set forward), and finally
``post-clear`` (fully applied → nothing to recover).  In every case the
write-set must end up all-or-nothing and the locks must come back.

The last test crashes the MASTER at the same instant as the client: the
restarted master's orphan-lock sweep must find the intent by scanning the
servers (it has no volatile state left) and still roll it forward.
"""

import pytest

from repro.core.addressing import server_of
from tests.core.conftest import build_pool, fast_config

LEASE = 100_000
A = b"A" * 256
B = b"B" * 256
ZERO = b"\x00" * 256


class _Kill(Exception):
    """Models the victim process dying at an exact commit point."""


def crash_config(**overrides):
    defaults = dict(enable_txn=True, lock_acquire_timeout_ns=150_000,
                    client_lease_ns=LEASE, auto_reattach=True,
                    retry_max_attempts=3, metadata_journal=True)
    defaults.update(overrides)
    return fast_config(**defaults)


def _setup(pool, victim):
    """Two zeroed objects homed on two *different* servers, so a mid-apply
    kill really does leave one server applied and one not."""
    def alloc(sim):
        gaddrs = []
        while len(gaddrs) < 2:
            g = yield from victim.gmalloc(256)
            yield from victim.gwrite(g, ZERO)
            if not gaddrs or server_of(g) != server_of(gaddrs[0]):
                gaddrs.append(g)
        yield from victim.gsync()
        return gaddrs

    (gaddrs,) = pool.run(alloc(pool.sim))
    assert server_of(gaddrs[0]) != server_of(gaddrs[1])
    return sorted(gaddrs)


def _kill_at(pool, victim, gaddrs, point, crash_master=False):
    """Run a two-object commit on ``victim`` and kill it at ``point``."""
    def hook(p, txn):
        if p != point:
            return
        victim.txn.commit_hook = None
        victim.crash()
        if crash_master:
            pool.master.crash()
        raise _Kill(point)

    victim.txn.commit_hook = hook

    def run_victim(sim):
        try:
            txn = yield from victim.txn.begin(gaddrs)
            txn.write(gaddrs[0], A)
            txn.write(gaddrs[1], B)
            yield from txn.commit()
        except _Kill:
            return "killed"
        return "survived"

    (outcome,) = pool.run(run_victim(pool.sim))
    assert outcome == "killed"


def _settle(pool, lease_multiples=6):
    def wait(sim):
        yield sim.timeout(lease_multiples * LEASE)

    pool.run(wait(pool.sim))


def _read_pair(pool, reader, gaddrs):
    def rd(sim):
        d0 = yield from reader.gread(gaddrs[0], length=256)
        d1 = yield from reader.gread(gaddrs[1], length=256)
        return bytes(d0), bytes(d1)

    (pair,) = pool.run(rd(pool.sim))
    return pair


def _assert_locks_recovered(pool, survivor, gaddrs):
    """A fresh transaction over the same set must commit — the dead
    client's locks were force-unlocked, not leaked."""
    def app(sim):
        def body(txn):
            txn.write(gaddrs[0], b"S" * 256)
            return True
            yield  # pragma: no cover

        return (yield from survivor.txn.run(gaddrs, body))

    (ok,) = pool.run(app(pool.sim))
    assert ok is True


def test_kill_before_intent_rolls_back():
    sim, pool = build_pool(seed=11, num_servers=2, num_clients=2,
                           config=crash_config())
    victim, survivor = pool.clients
    g = _setup(pool, victim)
    _kill_at(pool, victim, g, "pre-intent")
    _settle(pool)
    assert _read_pair(pool, survivor, g) == (ZERO, ZERO)
    assert sim.metrics.counter("master.txn_rolled_forward").count == 0
    _assert_locks_recovered(pool, survivor, g)


@pytest.mark.parametrize("point", ["post-intent", "mid-apply", "pre-clear"])
def test_kill_past_commit_point_rolls_forward(point):
    sim, pool = build_pool(seed=12, num_servers=2, num_clients=2,
                           config=crash_config())
    victim, survivor = pool.clients
    g = _setup(pool, victim)
    _kill_at(pool, victim, g, point)
    _settle(pool)
    # All-or-nothing, and specifically ALL: the intent was durable.
    assert _read_pair(pool, survivor, g) == (A, B)
    assert sim.metrics.counter("master.txn_rolled_forward").count == 1
    _assert_locks_recovered(pool, survivor, g)


def test_kill_after_clear_needs_no_roll_forward():
    sim, pool = build_pool(seed=13, num_servers=2, num_clients=2,
                           config=crash_config())
    victim, survivor = pool.clients
    g = _setup(pool, victim)
    _kill_at(pool, victim, g, "post-clear")
    _settle(pool)
    # Applied and cleared before the crash: visible with no recovery work.
    assert _read_pair(pool, survivor, g) == (A, B)
    assert sim.metrics.counter("master.txn_rolled_forward").count == 0
    _assert_locks_recovered(pool, survivor, g)


def test_master_and_client_crash_orphan_sweep_rolls_forward():
    sim, pool = build_pool(seed=14, num_servers=2, num_clients=2,
                           config=crash_config())
    victim, survivor = pool.clients
    g = _setup(pool, victim)
    _kill_at(pool, victim, g, "post-intent", crash_master=True)
    _settle(pool, lease_multiples=2)
    pool.master.recover()
    sim.spawn(pool.master.recovery_process(rebuild=True),
              name="master.recovery")
    # Rebuild + one lease of re-attach grace + the sweep itself.
    _settle(pool, lease_multiples=8)
    assert _read_pair(pool, survivor, g) == (A, B)
    assert sim.metrics.counter("master.txn_rolled_forward").count == 1
    _assert_locks_recovered(pool, survivor, g)


def test_concurrent_intent_puts_never_share_a_slot():
    """Two commits persisting intents on one coordinator at the same
    instant must land in distinct slots.

    The slot allocator reads the volatile index, yields to write NVM,
    then records its claim — without reserving first, both handlers see
    the same free slot, the second blob overwrites the first, and the
    second transaction's intent *clear* then destroys the first's
    durable commit record: its roll-forward silently evaporates.  Found
    by the chaos soak (seed 21: a mid-apply kill whose conserved-total
    audit came back one transfer leg short).
    """
    sim, pool = build_pool(seed=5, config=crash_config())
    server = next(iter(pool.servers.values()))

    def put(txn_id, gaddr):
        def proc(sim):
            return (yield from server._handle_txn_intent_put({
                "txn": txn_id, "owner": 9, "epoch": 1,
                "writes": [(gaddr, 0, b"x" * 16)],
            }))
        return proc(sim)

    slot_a, slot_b = pool.run(put("c.t1", 0x100), put("c.t2", 0x200))
    assert slot_a != slot_b

    # Clearing one must leave the other durable and scannable.
    def clear_then_scan(sim):
        yield from server._handle_txn_intent_clear({"txn": "c.t2"})
        server._intent_index = None  # force the NVM-truth rebuild path
        return (yield from server._handle_txn_intent_scan({"owners": [9]}))

    (records,) = pool.run(clear_then_scan(sim))
    assert [r["txn"] for r in records] == ["c.t1"]
