"""Idempotent gmalloc/gfree retries.

The contract under test: `_resilient` may replay a control RPC whose
original execution succeeded but whose reply was lost (the master crashed
after executing, before replying).  The client mints one req_id per
*logical* op and repeats it verbatim across retries; the master
deduplicates, so a gmalloc replay returns the original allocation instead
of leaking a second object, and a gfree replay reports success instead of
surfacing an unknown-gaddr error to the application.  The dedup tables
ride in the journal records, so they survive a master rebuild too.
"""

from tests.core.conftest import build_pool, fast_config


def idem_pool():
    cfg = fast_config(metadata_journal=True, journal_entries=64)
    return build_pool(num_servers=1, num_clients=1, config=cfg)


def test_gmalloc_retry_with_same_req_id_returns_the_original_allocation():
    sim, pool = idem_pool()
    client = pool.clients[0]

    def scenario(sim):
        req_id = client._next_req_id()
        first = yield from client._gmalloc_once(64, req_id)
        replay = yield from client._gmalloc_once(64, req_id)  # lost-reply retry
        return first.gaddr, replay.gaddr

    (result,) = pool.run(scenario(sim))
    first, replay = result
    assert first == replay
    assert pool.master.dup_rpcs.count == 1
    assert len(pool.master.directory) == 1  # no second object leaked


def test_distinct_req_ids_still_allocate_distinct_objects():
    sim, pool = idem_pool()
    client = pool.clients[0]

    def scenario(sim):
        a = yield from client.gmalloc(64)
        b = yield from client.gmalloc(64)
        return a, b

    (result,) = pool.run(scenario(sim))
    a, b = result
    assert a != b
    assert pool.master.dup_rpcs.count == 0
    assert len(pool.master.directory) == 2


def test_gfree_retry_with_same_req_id_is_idempotent():
    sim, pool = idem_pool()
    client = pool.clients[0]

    def scenario(sim):
        gaddr = yield from client.gmalloc(64)
        req_id = client._next_req_id()
        yield from client._master_call("gfree", {"gaddr": gaddr, "req_id": req_id})
        # The replay must NOT raise unknown-gaddr: the free already executed.
        ok = yield from client._master_call(
            "gfree", {"gaddr": gaddr, "req_id": req_id})
        return ok

    (ok,) = pool.run(scenario(sim))
    assert ok is True
    assert pool.master.dup_rpcs.count == 1
    assert len(pool.master.directory) == 0


def test_dedup_tables_survive_a_master_rebuild():
    """req_id rides in the journal record: a retry that lands on the
    *restarted* master (the execute-then-crash case this exists for) is
    still deduplicated after the journal replay."""
    sim, pool = idem_pool()
    client = pool.clients[0]

    def before(sim):
        req_id = client._next_req_id()
        meta = yield from client._gmalloc_once(64, req_id)
        return req_id, meta.gaddr

    (result,) = pool.run(before(sim))
    req_id, gaddr = result
    pool.master.reset_volatile_state()

    def after(sim):
        yield from pool.master.rebuild()
        replay = yield from client._gmalloc_once(64, req_id)
        return replay.gaddr

    (replayed,) = pool.run(after(sim))
    assert replayed == gaddr
    assert pool.master.dup_rpcs.count == 1
    assert len(pool.master.directory) == 1
