"""Multi-client fuzz: disjoint writers converge after a global sync.

Each client owns a disjoint set of objects and applies a random write
sequence concurrently with the others.  After every client syncs, all of
NVM must equal the union of the per-client oracles — no cross-client
interference, no lost drains, regardless of interleaving.

The kill fuzz adds random client deaths on top: victims die (possibly
mid-RDMA_WRITE, leaving a torn slot), and afterwards no dead client may
still hold a lock past one lease interval and no torn frame may have
reached NVM.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.faults import ClientCrash, FaultPlan
from tests.core.conftest import build_pool, fast_config

_write = st.tuples(st.integers(0, 4), st.integers(0, 255),
                   st.integers(0, 1023), st.integers(1, 96))


@given(
    plans=st.lists(st.lists(_write, min_size=1, max_size=12),
                   min_size=2, max_size=3),
    seed=st.integers(0, 40),
)
@settings(max_examples=20, deadline=None)
def test_disjoint_writers_converge(plans, seed):
    sim, pool = build_pool(seed=seed, num_servers=2,
                           num_clients=max(2, len(plans)))
    clients = pool.clients[: len(plans)]
    size = 1024

    def setup(sim):
        owned = []
        for client in clients:
            addrs = []
            for _ in range(5):
                addrs.append((yield from client.gmalloc(size)))
            owned.append(addrs)
        return owned

    (owned,) = pool.run(setup(sim))
    oracles = [{g: bytearray(size) for g in addrs} for addrs in owned]

    def worker(idx, plan):
        client = clients[idx]
        for obj_idx, byte, offset, length in plan:
            gaddr = owned[idx][obj_idx % 5]
            length = min(length, size - offset)
            data = bytes([byte]) * length
            yield from client.gwrite(gaddr, data, offset=offset)
            oracles[idx][gaddr][offset : offset + length] = data
        yield from client.gsync()

    pool.run(*[worker(i, plan) for i, plan in enumerate(plans)])

    # Audit NVM directly against the union of the oracles.
    from repro.core.addressing import offset_of, server_of

    for oracle in oracles:
        for gaddr, expected in oracle.items():
            server = pool.servers[server_of(gaddr)]
            actual = server.data_device.peek(offset_of(gaddr), size)
            assert actual == bytes(expected), f"object {gaddr:#x} diverged"


_LEASE = 100_000


@given(
    plans=st.lists(st.lists(_write, min_size=1, max_size=10),
                   min_size=2, max_size=2),
    victim_plan=st.lists(_write, min_size=1, max_size=6),
    seed=st.integers(0, 40),
    kill_delay=st.integers(1_000, 60_000),
    tear=st.booleans(),
)
@example(  # regression: the crash lands mid-RDMA_WRITE of the victim's
    # second write; the injected torn doorbell must queue BEHIND the
    # in-flight frame on the QP, or the drain's seq cursor rejects the
    # good frame as torn and a synced write silently never reaches NVM.
    plans=[[(0, 0, 0, 1)], [(0, 0, 0, 1)]],
    victim_plan=[(0, 0, 0, 1), (0, 1, 0, 1)],
    seed=0, kill_delay=6000, tear=True,
)
@settings(max_examples=15, deadline=None)
def test_random_client_kills_leave_no_stale_locks_or_torn_data(
        plans, victim_plan, seed, kill_delay, tear):
    """client2 dies at a random point (sometimes mid-RDMA_WRITE); the
    survivors keep fuzzing.  Afterwards the victim's lock must be free
    within one lease interval, every synced byte must match its oracle
    (a torn re-stage that slipped past the commit word would corrupt the
    victim's last object), and the ring must be retired."""
    sim, pool = build_pool(
        seed=seed, num_servers=2, num_clients=3,
        config=fast_config(client_lease_ns=_LEASE, proxy_commit=True,
                           auto_reattach=True, retry_max_attempts=3))
    survivors, victim = pool.clients[:2], pool.clients[2]
    size = 1024

    def setup(sim):
        owned = []
        for client in pool.clients:
            addrs = []
            for _ in range(5):
                addrs.append((yield from client.gmalloc(size)))
            owned.append(addrs)
        return owned

    (owned,) = pool.run(setup(sim))
    oracles = [{g: bytearray(size) for g in addrs} for addrs in owned]
    locked_gaddr = owned[2][0]

    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=sim.now + kill_delay, client=victim.name,
                    tear_inflight=tear),
    ))

    def survivor_worker(idx, plan):
        client = survivors[idx]
        for obj_idx, byte, offset, length in plan:
            gaddr = owned[idx][obj_idx % 5]
            length = min(length, size - offset)
            data = bytes([byte]) * length
            yield from client.gwrite(gaddr, data, offset=offset)
            oracles[idx][gaddr][offset : offset + length] = data
        yield from client.gsync()

    def victim_worker(sim):
        # Sync after every write so the oracle is exact: the only unsynced
        # frame left behind is the injected torn re-stage, which the commit
        # word must keep out of NVM.
        yield from victim.glock(locked_gaddr)
        for obj_idx, byte, offset, length in victim_plan:
            if victim.crashed:
                break
            gaddr = owned[2][obj_idx % 5]
            length = min(length, size - offset)
            data = bytes([byte]) * length
            yield from victim.gwrite(gaddr, data, offset=offset)
            yield from victim.gsync()
            oracles[2][gaddr][offset : offset + length] = data
        # Park dead (or idle) until well past lease expiry + recovery.
        yield sim.timeout(kill_delay + 4 * _LEASE)

    pool.run(victim_worker(sim),
             *[survivor_worker(i, plan) for i, plan in enumerate(plans)])

    # 1. The dead client's lock is recoverable within one lease interval.
    assert pool.master.lease_expiries.count == 1
    t0 = sim.now

    def contend(sim):
        yield from survivors[0].glock(locked_gaddr)
        yield from survivors[0].gunlock(locked_gaddr)
        return sim.now - t0

    (took,) = pool.run(contend(sim))
    assert took < _LEASE, "survivor waited on a dead client's lock"

    # 2. The victim's proxy ring was retired on every server.
    for server in pool.servers.values():
        assert victim.name not in server._rings

    # 3. No torn data: every synced byte matches its oracle.
    from repro.core.addressing import offset_of, server_of

    for oracle in oracles:
        for gaddr, expected in oracle.items():
            server = pool.servers[server_of(gaddr)]
            actual = server.data_device.peek(offset_of(gaddr), size)
            assert actual == bytes(expected), f"object {gaddr:#x} diverged"


def test_reattach_edge_cases():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    # Unknown server id is a hard error.
    import pytest

    with pytest.raises(KeyError):
        next(client.reattach_server(99))

    # Re-attaching to a live, never-crashed server is rejected server-side
    # (the ring already exists) and surfaces as an RpcError.
    from repro.rdma.rpc import RpcError

    def app(sim):
        try:
            yield from client.reattach_server(0)
        except RpcError as exc:
            return str(exc)

    (msg,) = pool.run(app(sim))
    assert "already attached" in msg
