"""Multi-client fuzz: disjoint writers converge after a global sync.

Each client owns a disjoint set of objects and applies a random write
sequence concurrently with the others.  After every client syncs, all of
NVM must equal the union of the per-client oracles — no cross-client
interference, no lost drains, regardless of interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.conftest import build_pool, fast_config

_write = st.tuples(st.integers(0, 4), st.integers(0, 255),
                   st.integers(0, 1023), st.integers(1, 96))


@given(
    plans=st.lists(st.lists(_write, min_size=1, max_size=12),
                   min_size=2, max_size=3),
    seed=st.integers(0, 40),
)
@settings(max_examples=20, deadline=None)
def test_disjoint_writers_converge(plans, seed):
    sim, pool = build_pool(seed=seed, num_servers=2,
                           num_clients=max(2, len(plans)))
    clients = pool.clients[: len(plans)]
    size = 1024

    def setup(sim):
        owned = []
        for client in clients:
            addrs = []
            for _ in range(5):
                addrs.append((yield from client.gmalloc(size)))
            owned.append(addrs)
        return owned

    (owned,) = pool.run(setup(sim))
    oracles = [{g: bytearray(size) for g in addrs} for addrs in owned]

    def worker(idx, plan):
        client = clients[idx]
        for obj_idx, byte, offset, length in plan:
            gaddr = owned[idx][obj_idx % 5]
            length = min(length, size - offset)
            data = bytes([byte]) * length
            yield from client.gwrite(gaddr, data, offset=offset)
            oracles[idx][gaddr][offset : offset + length] = data
        yield from client.gsync()

    pool.run(*[worker(i, plan) for i, plan in enumerate(plans)])

    # Audit NVM directly against the union of the oracles.
    from repro.core.addressing import offset_of, server_of

    for oracle in oracles:
        for gaddr, expected in oracle.items():
            server = pool.servers[server_of(gaddr)]
            actual = server.data_device.peek(offset_of(gaddr), size)
            assert actual == bytes(expected), f"object {gaddr:#x} diverged"


def test_reattach_edge_cases():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    # Unknown server id is a hard error.
    import pytest

    with pytest.raises(KeyError):
        next(client.reattach_server(99))

    # Re-attaching to a live, never-crashed server is rejected server-side
    # (the ring already exists) and surfaces as an RpcError.
    from repro.rdma.rpc import RpcError

    def app(sim):
        try:
            yield from client.reattach_server(0)
        except RpcError as exc:
            return str(exc)

    (msg,) = pool.run(app(sim))
    assert "already attached" in msg
