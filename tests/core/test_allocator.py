"""Tests for the extent allocator and the pool allocation policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import (
    AllocatorError,
    ExtentAllocator,
    OutOfMemory,
    PoolAllocationPolicy,
)


def test_alloc_returns_aligned_offsets():
    alloc = ExtentAllocator(4096, alignment=64)
    offsets = [alloc.alloc(10) for _ in range(5)]
    assert all(off % 64 == 0 for off in offsets)
    assert len(set(offsets)) == 5


def test_alloc_free_reuses_space():
    alloc = ExtentAllocator(256, alignment=64)
    a = alloc.alloc(64)
    b = alloc.alloc(64)
    alloc.free(a)
    c = alloc.alloc(64)
    assert c == a  # first fit reuses the hole
    assert b != c


def test_out_of_memory():
    alloc = ExtentAllocator(128, alignment=64)
    alloc.alloc(128)
    with pytest.raises(OutOfMemory):
        alloc.alloc(1)


def test_double_free_rejected():
    alloc = ExtentAllocator(256)
    a = alloc.alloc(64)
    alloc.free(a)
    with pytest.raises(AllocatorError):
        alloc.free(a)


def test_free_of_unallocated_rejected():
    alloc = ExtentAllocator(256)
    with pytest.raises(AllocatorError):
        alloc.free(64)


def test_invalid_sizes_rejected():
    alloc = ExtentAllocator(256)
    with pytest.raises(ValueError):
        alloc.alloc(0)
    with pytest.raises(ValueError):
        alloc.alloc(-5)
    with pytest.raises(ValueError):
        ExtentAllocator(0)
    with pytest.raises(ValueError):
        ExtentAllocator(100, alignment=3)


def test_coalescing_recovers_full_capacity():
    alloc = ExtentAllocator(1024, alignment=64)
    offsets = [alloc.alloc(64) for _ in range(16)]
    assert alloc.free_bytes == 0
    # Free in an interleaved order to exercise both merge directions.
    for off in offsets[::2] + offsets[1::2]:
        alloc.free(off)
    assert alloc.free_bytes == 1024
    assert alloc.largest_free_extent == 1024
    alloc.check_invariants()


def test_fragmentation_blocks_large_alloc():
    alloc = ExtentAllocator(512, alignment=64)
    offsets = [alloc.alloc(64) for _ in range(8)]
    for off in offsets[::2]:
        alloc.free(off)
    assert alloc.free_bytes == 256
    with pytest.raises(OutOfMemory):
        alloc.alloc(128)  # free space exists, but not contiguously


def test_size_of():
    alloc = ExtentAllocator(1024)
    a = alloc.alloc(100)
    assert alloc.size_of(a) == 128  # rounded to alignment
    assert alloc.size_of(9999) is None


@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=700)), max_size=120))
@settings(max_examples=120, deadline=None)
def test_allocator_invariants_under_random_workload(ops):
    """Property: no overlap, no leak, free list always coalesced."""
    alloc = ExtentAllocator(8192, alignment=64)
    live = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            try:
                off = alloc.alloc(size)
            except OutOfMemory:
                continue
            live.append((off, alloc.size_of(off)))
        else:
            off, _size = live.pop(len(live) // 2)
            alloc.free(off)
        alloc.check_invariants()
        # No two live allocations overlap.
        spans = sorted((off, off + sz) for off, sz in live)
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start


def test_policy_round_robins_across_servers():
    allocs = {i: ExtentAllocator(4096) for i in range(3)}
    policy = PoolAllocationPolicy(allocs)
    chosen = [policy.choose(64) for _ in range(6)]
    assert chosen == [0, 1, 2, 0, 1, 2]


def test_policy_skips_full_servers():
    allocs = {0: ExtentAllocator(128), 1: ExtentAllocator(4096)}
    policy = PoolAllocationPolicy(allocs)
    sid = policy.choose(64)
    allocs[sid].alloc(128 if sid == 0 else 64)
    # Server 0 exhausted: every 128-byte request must now land on 1.
    allocs[0]._free = []  # simulate full
    for _ in range(3):
        assert policy.choose(128) == 1


def test_policy_raises_when_nothing_fits():
    allocs = {0: ExtentAllocator(128)}
    policy = PoolAllocationPolicy(allocs)
    with pytest.raises(OutOfMemory):
        policy.choose(4096)


def test_policy_requires_servers():
    with pytest.raises(ValueError):
        PoolAllocationPolicy({})
