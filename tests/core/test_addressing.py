"""Tests for global address packing."""

import pytest

from repro.core.addressing import (
    AddressError,
    GlobalAddress,
    MAX_SERVERS,
    OFFSET_MASK,
    make_gaddr,
    offset_of,
    server_of,
)


def test_roundtrip():
    gaddr = make_gaddr(3, 0x1234)
    assert server_of(gaddr) == 3
    assert offset_of(gaddr) == 0x1234


def test_server_zero_offset_zero():
    assert make_gaddr(0, 0) == 0


def test_max_values_roundtrip():
    gaddr = make_gaddr(MAX_SERVERS - 1, OFFSET_MASK)
    assert server_of(gaddr) == MAX_SERVERS - 1
    assert offset_of(gaddr) == OFFSET_MASK


def test_out_of_range_rejected():
    with pytest.raises(AddressError):
        make_gaddr(-1, 0)
    with pytest.raises(AddressError):
        make_gaddr(MAX_SERVERS, 0)
    with pytest.raises(AddressError):
        make_gaddr(0, OFFSET_MASK + 1)
    with pytest.raises(AddressError):
        make_gaddr(0, -1)


def test_decode_rejects_non_64bit():
    with pytest.raises(AddressError):
        server_of(1 << 64)
    with pytest.raises(AddressError):
        offset_of(-1)


def test_global_address_dataclass():
    ga = GlobalAddress.decode(make_gaddr(7, 4096))
    assert ga.server_id == 7
    assert ga.offset == 4096
    assert int(ga) == make_gaddr(7, 4096)


def test_distinct_servers_never_collide():
    seen = set()
    for sid in range(8):
        for off in (0, 64, 4096):
            seen.add(make_gaddr(sid, off))
    assert len(seen) == 24
