"""Client-side resilience: typed errors, retries, deadlines, degraded mode.

The contract under test: with the default policy (one attempt, no deadline)
failures surface immediately as *typed* errors; raising the retry knobs buys
transparent recovery from transient outages; the deadline watchdog converts
open-ended stalls into :class:`DeadlineExceededError`; and degraded mode
trades the proxy/cache fast paths for availability.
"""

import pytest

from repro.core import (
    ClientError,
    DeadlineExceededError,
    RetryableError,
    RetryPolicy,
    ServerUnavailableError,
)
from repro.faults import FaultPlan, ServerCrash, ServerRecover

from tests.core.conftest import build_pool, fast_config


def _write_one(pool, sim, client, size=64, payload=None):
    payload = payload or bytes(size)

    def setup(sim):
        gaddr = yield from client.gmalloc(size)
        yield from client.gwrite(gaddr, payload)
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    return gaddr


def test_dead_server_raises_typed_server_unavailable():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    gaddr = _write_one(pool, sim, client)
    pool.servers[0].crash()

    def read(sim):
        try:
            yield from client.gread(gaddr)
        except ClientError as exc:
            return exc

    (exc,) = pool.run(read(sim))
    assert isinstance(exc, ServerUnavailableError)
    assert isinstance(exc, RetryableError)  # the retryable branch of the tree
    assert exc.server_id == 0


def test_retry_timeout_knob_bounds_dead_peer_detection():
    elapsed = {}
    for timeout_ns in (20_000, 80_000):
        sim, pool = build_pool(
            num_servers=1, num_clients=1,
            config=fast_config(retry_timeout_ns=timeout_ns))
        assert pool.servers[0].node.endpoint.retry_timeout_ns == timeout_ns
        assert pool.clients[0].node.endpoint.retry_timeout_ns == timeout_ns
        client = pool.clients[0]
        gaddr = _write_one(pool, sim, client)
        pool.servers[0].crash()
        t0 = sim.now

        def read(sim):
            try:
                yield from client.gread(gaddr)
            except ClientError:
                return sim.now - t0

        (took,) = pool.run(read(sim))
        assert took >= timeout_ns
        elapsed[timeout_ns] = took
    assert elapsed[20_000] < elapsed[80_000]


def test_retries_ride_out_a_transient_outage():
    config = fast_config(
        retry_timeout_ns=20_000,
        retry_max_attempts=10,
        retry_base_backoff_ns=10_000,
        retry_max_backoff_ns=40_000,
        auto_reattach=True,
    )
    sim, pool = build_pool(num_servers=1, num_clients=1, config=config)
    client = pool.clients[0]
    gaddr = _write_one(pool, sim, client, payload=b"sturdy!" + bytes(57))
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        ServerCrash(at_ns=t0 + 5_000, server_id=0),
        ServerRecover(at_ns=t0 + 200_000, server_id=0),
    ))

    def read(sim):
        yield sim.timeout(10_000)  # land inside the outage
        data = yield from client.gread(gaddr, length=7)
        return data

    (data,) = pool.run(read(sim))
    assert data == b"sturdy!"  # no exception escaped: the op self-healed
    assert client.m_retries.count > 0
    assert client.m_failovers.count == 1
    assert len(client.fault_log) == 1
    record = client.fault_log[0]
    assert record["server_id"] == 0
    assert record["lost"] == []  # everything was gsync'ed pre-crash


def test_deadline_converts_a_stall_into_a_typed_error():
    config = fast_config(
        retry_timeout_ns=50_000,
        retry_max_attempts=10,
        op_deadline_ns=30_000,  # tighter than one dead-peer detection
    )
    sim, pool = build_pool(num_servers=1, num_clients=1, config=config)
    client = pool.clients[0]
    gaddr = _write_one(pool, sim, client)
    pool.servers[0].crash()
    t0 = sim.now

    def read(sim):
        try:
            yield from client.gread(gaddr)
        except ClientError as exc:
            return exc, sim.now - t0

    (result,) = pool.run(read(sim))
    exc, took = result
    assert isinstance(exc, DeadlineExceededError)
    assert client.m_deadline_misses.count >= 1
    # The watchdog fired at the deadline, not at the retry horizon.
    assert took < 50_000


def test_degraded_mode_writes_through_a_stalled_ring():
    config = fast_config(degraded_mode=True, degraded_patience_polls=2)
    sim, pool = build_pool(num_servers=1, num_clients=1, config=config)
    client = pool.clients[0]
    server = pool.servers[0]
    slots = config.proxy_ring_slots

    def app(sim):
        gaddrs = []
        for _ in range(slots + 1):
            gaddrs.append((yield from client.gmalloc(256)))
        server.stall_drains(2_000_000)
        # Fill the ring, then one more: it must fall back, not block.
        for i, g in enumerate(gaddrs):
            yield from client.gwrite(g, bytes([i + 1]) * 256)
        data = yield from client.gread(gaddrs[-1], length=4)
        return data

    (data,) = pool.run(app(sim))
    assert data == bytes([slots + 1]) * 4
    assert client.m_degraded_writes.count >= 1
    assert client.m_direct_writes.count >= 1


def test_without_degraded_mode_the_writer_waits_out_the_stall():
    config = fast_config()  # degraded_mode off: patience is unbounded
    sim, pool = build_pool(num_servers=1, num_clients=1, config=config)
    client = pool.clients[0]
    server = pool.servers[0]
    slots = config.proxy_ring_slots
    stall_ns = 300_000

    def app(sim):
        gaddrs = []
        for _ in range(slots + 1):
            gaddrs.append((yield from client.gmalloc(256)))
        server.stall_drains(stall_ns)
        t0 = sim.now
        for i, g in enumerate(gaddrs):
            yield from client.gwrite(g, bytes([i + 1]) * 256)
        return sim.now - t0

    (took,) = pool.run(app(sim))
    assert took >= stall_ns  # the overflow write waited for the drain
    assert client.m_degraded_writes.count == 0


def test_fault_free_virtual_time_is_unchanged_by_arming_resilience():
    """Pay-as-you-go: raising the retry knobs must not perturb a clean run."""

    def run(config):
        sim, pool = build_pool(num_servers=2, num_clients=2, config=config)
        a, b = pool.clients

        def app(sim, client, tag):
            gaddrs = []
            for i in range(8):
                g = yield from client.gmalloc(128)
                yield from client.gwrite(g, bytes([tag + i]) * 128)
                gaddrs.append(g)
            yield from client.gsync()
            out = []
            for g in gaddrs:
                out.append((yield from client.gread(g, length=8)))
            return out

        results = pool.run(app(sim, a, 1), app(sim, b, 100))
        return sim.now, results

    t_plain, r_plain = run(fast_config())
    t_armed, r_armed = run(fast_config(
        retry_max_attempts=8, auto_reattach=True, degraded_mode=True))
    assert r_plain == r_armed
    assert t_plain == t_armed


def test_retry_policy_backoff_is_bounded_and_reproducible():
    import random

    policy = RetryPolicy(max_attempts=6, base_backoff_ns=1_000,
                         max_backoff_ns=8_000, jitter=True)
    a = [policy.backoff_ns(i, random.Random(3)) for i in range(1, 7)]
    b = [policy.backoff_ns(i, random.Random(3)) for i in range(1, 7)]
    assert a == b  # same stream state, same jitter
    for delay in a:
        assert 1_000 <= delay <= 8_000
    flat = RetryPolicy(jitter=False, base_backoff_ns=1_000, max_backoff_ns=8_000)
    assert [flat.backoff_ns(i, random.Random(0)) for i in range(1, 6)] == \
        [1_000, 2_000, 4_000, 8_000, 8_000]


def test_default_policy_is_fail_fast():
    policy = RetryPolicy.from_config(fast_config())
    assert policy.max_attempts == 1
    assert policy.deadline_ns == 0
