"""Property tests: invariants every placement policy must uphold.

Whatever the access pattern, a policy's plans must be *executable*: no
promotion of something already cached, no demotion of something not cached,
no overlap between the two lists, and the post-plan cache footprint must fit
the advertised capacity.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotness import EpochDecayPolicy, LfuPolicy, LruPolicy, RandomPolicy

_SIZES = (128, 512, 2048)

_event = st.one_of(
    st.tuples(st.just("track"), st.integers(0, 30), st.integers(0, 2)),
    st.tuples(st.just("record"), st.integers(0, 30), st.integers(1, 40)),
    st.tuples(st.just("free"), st.integers(0, 30)),
    st.tuples(st.just("plan"), st.integers(0, 0)),
)


def _drive(policy, events, capacity):
    """Apply an event stream, executing plans faithfully; check invariants."""
    tracked = {}
    cached = {}
    for ev in events:
        kind = ev[0]
        if kind == "track":
            gaddr, size_idx = ev[1], ev[2]
            size = _SIZES[size_idx]
            if gaddr not in tracked:
                tracked[gaddr] = size
                policy.track(gaddr, size)
        elif kind == "record":
            policy.record(ev[1], reads=ev[2], writes=0)
        elif kind == "free":
            gaddr = ev[1]
            if gaddr in tracked:
                policy.on_freed(gaddr)
                tracked.pop(gaddr)
                cached.pop(gaddr, None)
        else:  # plan
            used = sum(cached.values())
            plan = policy.plan(capacity=capacity, used=used)
            # --- invariants -------------------------------------------
            assert len(set(plan.promotions)) == len(plan.promotions)
            assert len(set(plan.demotions)) == len(plan.demotions)
            assert not set(plan.promotions) & set(plan.demotions)
            for gaddr in plan.promotions:
                assert gaddr in tracked, "promoted an unknown object"
                assert gaddr not in cached, "promoted an already-cached object"
            for gaddr in plan.demotions:
                assert gaddr in cached, "demoted a non-cached object"
            # Execute the plan as the master would.
            for gaddr in plan.demotions:
                policy.on_demoted(gaddr)
                cached.pop(gaddr)
            for gaddr in plan.promotions:
                policy.on_promoted(gaddr)
                cached[gaddr] = tracked[gaddr]
            assert sum(cached.values()) <= capacity, "cache overcommitted"
    return cached


@given(events=st.lists(_event, min_size=1, max_size=60),
       capacity=st.sampled_from((512, 2048, 8192)))
@settings(max_examples=80, deadline=None)
def test_epoch_decay_plans_are_executable(events, capacity):
    policy = EpochDecayPolicy(decay=0.5, promote_threshold=1.0,
                              demote_threshold=0.25)
    _drive(policy, events + [("plan", 0)], capacity)


@given(events=st.lists(_event, min_size=1, max_size=60),
       capacity=st.sampled_from((512, 2048, 8192)))
@settings(max_examples=60, deadline=None)
def test_lru_plans_are_executable(events, capacity):
    _drive(LruPolicy(), events + [("plan", 0)], capacity)


@given(events=st.lists(_event, min_size=1, max_size=60),
       capacity=st.sampled_from((512, 2048, 8192)))
@settings(max_examples=60, deadline=None)
def test_lfu_plans_are_executable(events, capacity):
    _drive(LfuPolicy(promote_threshold=1.0), events + [("plan", 0)], capacity)


@given(events=st.lists(_event, min_size=1, max_size=60),
       capacity=st.sampled_from((512, 2048, 8192)),
       seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_random_plans_are_executable(events, capacity, seed):
    policy = RandomPolicy(random.Random(seed), churn=4)
    _drive(policy, events + [("plan", 0)], capacity)


@given(hits=st.lists(st.integers(1, 100), min_size=2, max_size=10))
@settings(max_examples=60, deadline=None)
def test_epoch_decay_promotes_hottest_first_under_pressure(hits):
    """With room for exactly one object, the single hottest one wins."""
    policy = EpochDecayPolicy(decay=1.0, promote_threshold=0.5,
                              demote_threshold=0.1)
    for gaddr, count in enumerate(hits):
        policy.track(gaddr, 256)
        policy.record(gaddr, reads=count, writes=0)
    plan = policy.plan(capacity=256, used=0)
    assert len(plan.promotions) == 1
    winner = plan.promotions[0]
    assert hits[winner] == max(hits)
