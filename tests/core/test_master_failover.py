"""Master crash and journal-driven failover.

The contract under test: a dead master fails control-plane ops with the
retryable :class:`MasterUnavailableError` (the data plane keeps working); a
restarted master stays closed ("recovering") until the metadata journal has
been replayed, then serves again with the directory intact; clients
re-attach keeping their uid and epoch; and locks owned by clients that died
with the old master are recovered by the post-failover orphan sweep.
"""

import pytest

from repro.core import MasterUnavailableError, RetryableError
from repro.faults import ClientCrash, FaultPlan, MasterCrash, MasterRecover

from tests.core.conftest import build_pool, fast_config

LEASE = 100_000


def failover_config(**overrides):
    defaults = dict(metadata_journal=True, auto_reattach=True,
                    retry_max_attempts=8, retry_timeout_ns=10_000)
    defaults.update(overrides)
    return fast_config(**defaults)


def test_dead_master_raises_typed_retryable_error():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    pool.master.crash()

    def alloc(sim):
        try:
            yield from client.gmalloc(64)
        except MasterUnavailableError as exc:
            return exc

    (exc,) = pool.run(alloc(sim))
    assert isinstance(exc, MasterUnavailableError)
    assert isinstance(exc, RetryableError)


def test_data_plane_survives_a_dead_master():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def setup(sim):
        gaddr = yield from client.gmalloc(128)
        yield from client.gwrite(gaddr, b"M" * 128)
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    pool.master.crash()

    def rw(sim):
        # Metadata is cached client-side; reads/writes are one-sided verbs
        # against the memory server and never touch the master.
        yield from client.gwrite(gaddr, b"N" * 128)
        yield from client.gsync()
        data = yield from client.gread(gaddr)
        return data

    (data,) = pool.run(rw(sim))
    assert data == b"N" * 128


def test_recovering_master_rejects_ops_typed():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(metadata_journal=True))
    client = pool.clients[0]
    pool.master.crash()
    pool.master.recover()  # recovering until recovery_process() completes

    def alloc(sim):
        try:
            yield from client.gmalloc(64)
        except MasterUnavailableError as exc:
            return str(exc)

    (msg,) = pool.run(alloc(sim))
    assert "recovering" in msg


def test_journal_rebuild_end_to_end_via_fault_plan():
    sim, pool = build_pool(num_servers=2, num_clients=2,
                           config=failover_config())
    c0, c1 = pool.clients
    payloads = {}

    def setup(sim):
        addrs = []
        for i in range(6):
            g = yield from c0.gmalloc(256)
            data = bytes([i + 1]) * 256
            yield from c0.gwrite(g, data)
            payloads[g] = data
            addrs.append(g)
        yield from c0.gsync()
        return addrs

    (addrs,) = pool.run(setup(sim))
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        MasterCrash(at_ns=t0 + 10_000),
        MasterRecover(at_ns=t0 + 60_000, rebuild=True),
    ))

    def through_the_outage(sim):
        # Allocations issued during the outage retry until the rebuilt
        # master serves again (auto re-attach + backoff).
        yield sim.timeout(20_000)  # master is down now
        g = yield from c1.gmalloc(512)
        yield from c1.gwrite(g, b"Z" * 512)
        yield from c1.gsync()
        return g

    (g_new,) = pool.run(through_the_outage(sim))
    assert pool.master.failovers.count == 1
    assert pool.master.journal_replayed.total == len(addrs)
    # Old objects survived the failover with their metadata intact.
    master_view = {r.gaddr for r in pool.master.directory.objects()}
    assert set(addrs) <= master_view and g_new in master_view

    def verify(sim):
        out = []
        for g, expected in payloads.items():
            data = yield from c1.gread(g)
            out.append(data == expected)
        return out

    (checks,) = pool.run(verify(sim))
    assert all(checks)


def test_client_reattach_keeps_uid_and_epoch():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=failover_config(client_lease_ns=LEASE))
    client = pool.clients[0]
    uid0, epoch0 = client.uid, client.fence_epoch
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        MasterCrash(at_ns=t0 + 5_000),
        MasterRecover(at_ns=t0 + 45_000, rebuild=True),
    ))

    def work(sim):
        yield sim.timeout(10_000)
        g = yield from client.gmalloc(64)  # retries across the outage
        return g

    pool.run(work(sim))
    assert client.uid == uid0
    assert client.fence_epoch == epoch0
    assert not client.fenced
    assert pool.master._client_uids["client0"] == uid0
    # The re-attach was counted exactly once per healed outage.
    assert client.m_master_failovers.count >= 1


def test_orphan_lock_sweep_recovers_locks_lost_with_the_old_master():
    """client0 dies holding a lock, and the master dies with it (losing the
    lease table).  The restarted master gives everyone one lease interval
    to re-register; client0 never does, so its lock is swept."""
    sim, pool = build_pool(num_servers=1, num_clients=2,
                           config=failover_config(client_lease_ns=LEASE))
    c0, c1 = pool.clients

    def setup(sim):
        gaddr = yield from c0.gmalloc(128)
        yield from c0.glock(gaddr)
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=t0 + 1_000, client="client0"),
        MasterCrash(at_ns=t0 + 2_000),
        MasterRecover(at_ns=t0 + 40_000, rebuild=True),
    ))

    def contender(sim):
        # Outlive the outage + the orphan grace period, then take the lock.
        yield sim.timeout(40_000 + 2 * LEASE)
        t_acq = sim.now
        yield from c1.glock(gaddr)
        yield from c1.gunlock(gaddr)
        return sim.now - t_acq

    (took,) = pool.run(contender(sim))
    assert took < LEASE  # never waited on the dead holder
    assert pool.master.lock_recoveries.total >= 1
    # client1 re-registered with the restarted master; client0 did not.
    assert "client1" in pool.master._client_uids
    assert "client0" not in pool.master._client_uids


def test_orphan_sweep_retires_rings_of_clients_that_never_reattached():
    """Regression: the post-failover sweep recovered orphan locks but left
    the dead client's proxy ring armed — a zombie could keep landing staged
    writes on objects whose locks were just handed to a new holder.  The
    sweep must cut the ring along with the lock; re-attached clients keep
    theirs."""
    sim, pool = build_pool(num_servers=1, num_clients=2,
                           config=failover_config(client_lease_ns=LEASE))
    c0, c1 = pool.clients
    server = pool.servers[0]

    def setup(sim):
        gaddr = yield from c0.gmalloc(128)
        yield from c0.glock(gaddr)
        return gaddr

    pool.run(setup(sim))
    assert "client0" in server._rings and "client1" in server._rings
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=t0 + 1_000, client="client0"),
        MasterCrash(at_ns=t0 + 2_000),
        MasterRecover(at_ns=t0 + 40_000, rebuild=True),
    ))

    def outlive_the_sweep(sim):
        # client1's heartbeat re-attaches it within one interval of the
        # restart (well inside the grace window); client0 stays dead.
        yield sim.timeout(40_000 + 3 * LEASE)

    pool.run(outlive_the_sweep(sim))
    assert "client1" in pool.master._client_uids
    # client0 never re-attached: lock recovered AND ring retired ...
    assert "client0" not in server._rings
    # ... while the re-attached survivor's ring is untouched.
    assert "client1" in server._rings
