"""Tests for server crash/recovery: the NVM durability story.

The contract: everything a client ``gsync``'ed before the crash survives in
NVM; writes still staged in the (DRAM) proxy ring are lost and reported back
to the client at re-attach; the DRAM cache and the lock table evaporate and
the directory is reconciled.
"""

import pytest

from repro.core import ClientError
from repro.rdma.wr import WcStatus

from tests.core.conftest import build_pool, fast_config


def crash_and_recover(pool, sim, client, server_id=0):
    """Standard recovery sequence; returns the client's lost writes."""
    pool.servers[server_id].crash()
    pool.servers[server_id].recover()
    pool.master.on_server_recovered(server_id)
    holder = {}

    def reattach(sim):
        holder["lost"] = yield from client.reattach_server(server_id)

    pool.run(reattach(sim))
    return holder["lost"]


def test_synced_data_survives_a_crash():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def before(sim):
        gaddr = yield from client.gmalloc(256)
        yield from client.gwrite(gaddr, b"durable!" + bytes(248))
        yield from client.gsync()  # reaches NVM
        return gaddr

    (gaddr,) = pool.run(before(sim))
    lost = crash_and_recover(pool, sim, client)
    assert lost == []

    def after(sim):
        data = yield from client.gread(gaddr, length=8)
        return data

    (data,) = pool.run(after(sim))
    assert data == b"durable!"


def test_unsynced_staged_writes_are_lost_and_reported():
    """Crash with a drain backlog: the ring's staged writes never reach NVM.

    A single small write drains within a microsecond, so to strand data we
    burst writes faster than the Optane drain and crash from *inside* the
    simulation right after the last ack.
    """
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(proxy_ring_slots=64))
    client = pool.clients[0]
    burst = 24
    size = 4000  # fits a 4 KiB ring slot; drain (NVM) is slower than acks
    payloads = {i: bytes([0xA0 + (i % 16)]) * size for i in range(burst)}

    def before(sim):
        synced = yield from client.gmalloc(128)
        yield from client.gwrite(synced, b"SYNCED" + bytes(122))
        yield from client.gsync()
        staged = []
        for _ in range(burst):  # allocate first: the burst must be pure writes
            staged.append((yield from client.gmalloc(size)))
        for i, g in enumerate(staged):
            yield from client.gwrite(g, payloads[i])
        # Crash at this very instant: the drain is still working the ring.
        pool.servers[0].crash()
        return synced, staged

    (result,) = pool.run(before(sim))
    synced, staged = result
    pool.servers[0].recover()
    pool.master.on_server_recovered(0)
    holder = {}

    def reattach(sim):
        holder["lost"] = yield from client.reattach_server(0)

    pool.run(reattach(sim))
    lost = holder["lost"]
    assert synced not in lost
    assert lost, "a 24-write burst must leave undrained entries behind"

    def after(sim):
        ok = yield from client.gread(synced, length=6)
        contents = []
        for i, g in enumerate(staged):
            data = yield from client.gread(g, length=size)
            contents.append(data == payloads[i])
        return ok, contents

    (result,) = pool.run(after(sim))
    ok, contents = result
    assert ok == b"SYNCED"
    # At least one staged write truly never reached NVM...
    assert not all(contents)
    # ...and every one of those is covered by the reported lost set
    # (the report is a conservative over-approximation).
    for i, survived in enumerate(contents):
        if not survived:
            assert staged[i] in lost


def test_ops_fail_while_server_is_down():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def before(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, bytes(64))
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(before(sim))
    pool.servers[0].crash()

    def during(sim):
        try:
            yield from client.gread(gaddr)
        except ClientError as exc:
            return str(exc)

    (msg,) = pool.run(during(sim))
    assert WcStatus.RETRY_EXCEEDED.name in msg


def test_cache_rebuilds_after_recovery():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def before(sim):
        gaddr = yield from client.gmalloc(512)
        yield from client.gwrite(gaddr, b"hot" + bytes(509))
        yield from client.gsync()
        yield from pool.master.pin(gaddr)
        return gaddr

    (gaddr,) = pool.run(before(sim))
    assert pool.master.directory.get(gaddr).cached
    lost = crash_and_recover(pool, sim, client)
    assert lost == []
    record = pool.master.directory.get(gaddr)
    assert not record.cached  # the DRAM copy evaporated
    assert not record.pinned  # pins don't survive the holder's DRAM
    assert pool.servers[0].cache_used_bytes == 0

    def after(sim):
        data = yield from client.gread(gaddr, length=3)  # served from NVM
        yield from pool.master.pin(gaddr)  # re-pin works
        return data

    (data,) = pool.run(after(sim))
    assert data == b"hot"
    assert pool.master.directory.get(gaddr).cached


def test_locks_are_released_by_a_crash():
    """The lock table lives in DRAM: a crash frees every lock."""
    sim, pool = build_pool(num_servers=1, num_clients=2)
    a, b = pool.clients

    def before(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.gwrite(gaddr, bytes(64))
        yield from a.gsync()
        yield from a.glock(gaddr, write=True)
        return gaddr

    (gaddr,) = pool.run(before(sim))
    crash_and_recover(pool, sim, a)

    def reattach_b(sim):
        yield from b.reattach_server(0)

    pool.run(reattach_b(sim))

    def contender(sim):
        yield from b.glock(gaddr, write=True)  # must not block forever
        yield from b.gunlock(gaddr, write=True)
        return "acquired"

    (outcome,) = pool.run(contender(sim))
    assert outcome == "acquired"


def test_proxy_works_again_after_reattach():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def before(sim):
        gaddr = yield from client.gmalloc(128)
        yield from client.gwrite(gaddr, b"one" + bytes(125))
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(before(sim))
    crash_and_recover(pool, sim, client)

    def after(sim):
        yield from client.gwrite(gaddr, b"two" + bytes(125))
        yield from client.gsync()
        data = yield from client.gread(gaddr, length=3)
        return data

    (data,) = pool.run(after(sim))
    assert data == b"two"
    assert client.m_proxy_writes.count >= 2  # the new ring carries writes


def test_crash_only_affects_that_server():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    def setup(sim):
        # One object per server.
        a = yield from client.gmalloc(64)
        b = yield from client.gmalloc(64)
        yield from client.gwrite(a, b"AA" + bytes(62))
        yield from client.gwrite(b, b"BB" + bytes(62))
        yield from client.gsync()
        return a, b

    (result,) = pool.run(setup(sim))
    obj_a, obj_b = result
    from repro.core import server_of

    dead_sid = server_of(obj_a)
    live_obj = obj_b if server_of(obj_b) != dead_sid else obj_a
    pool.servers[dead_sid].crash()

    def during(sim):
        data = yield from client.gread(live_obj, length=2)
        return data

    (data,) = pool.run(during(sim))
    assert data in (b"AA", b"BB")


def test_double_crash_is_idempotent():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    server = pool.servers[0]
    server.crash()
    server.crash()  # no-op
    assert server.crashes == 1
    server.recover()
    assert server.is_alive


def test_repeated_crash_recover_cycles_do_not_leak():
    """Five power cycles must not leak DRAM carves, MRs, or drain loops.

    Each re-attach registers a fresh ring MR and spawns a fresh drain loop;
    the crash path must fully retire the previous generation (and reuse the
    carved ring span) or a long-lived server bleeds resources one outage at
    a time.
    """
    sim, pool = build_pool(num_servers=1, num_clients=2)
    server = pool.servers[0]
    endpoint = server.node.endpoint
    a, b = pool.clients

    def cycle():
        server.crash()
        server.recover()
        pool.master.on_server_recovered(0)

        def reattach(sim):
            yield from a.reattach_server(0)
            yield from b.reattach_server(0)

        pool.run(reattach(sim))

    cycle()  # first cycle settles any lazily-carved state
    mrs = len(endpoint._mrs)
    carved = server._carver._next
    assert len(server._drain_loops) == 2  # one live drain loop per client

    for _ in range(4):
        cycle()

    assert len(endpoint._mrs) == mrs
    assert server._carver._next == carved  # ring spans are reused, not re-carved
    assert len(server._drain_loops) == 2
    assert server.cache_alloc.allocated_bytes == 0  # cache allocator reset

    def app(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.gwrite(gaddr, b"alive!" + bytes(58))
        yield from a.gsync()
        data = yield from b.gread(gaddr, length=6)
        return data

    (data,) = pool.run(app(sim))
    assert data == b"alive!"
    assert server.crashes == 5


def test_force_unlock_does_not_wipe_a_concurrently_reacquired_lock():
    """Regression: the admin clear's read→zero used to be two separate
    steps, so a release + fresh acquire landing in between (during the
    zero's DRAM write latency) was silently wiped — the new holder kept
    running convinced it held the lock.  Gated under the endpoint's atomic
    serializer, the release and re-acquire are forced *after* the clear:
    the stale release fails typed and the fresh acquire survives."""
    from repro.core import FencedError
    from repro.core.protocol import lock_owner

    sim, pool = build_pool(
        num_servers=1, num_clients=2,
        config=fast_config(client_lease_ns=100_000, auto_reattach=True,
                           retry_max_attempts=3))
    a, b = pool.clients
    server = pool.servers[0]

    def setup(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.glock(gaddr)
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    lock_idx = pool.master.directory.get(gaddr).lock_idx

    # Stretch the clear's critical section: every lock-table write now takes
    # an extra 50 us, holding the atomic gate open across the race window.
    orig_write = server.lock_mr.write

    def slow_write(offset, data, **kw):
        yield sim.timeout(50_000)
        yield from orig_write(offset, data, **kw)

    server.lock_mr.write = slow_write

    def admin(sim):
        yield from pool.master.force_unlock(gaddr)

    def stale_release(sim):
        # Lands while the clear holds the gate; must fail typed, never
        # blind-subtract from whatever word is there afterwards.
        yield sim.timeout(5_000)
        try:
            yield from a.gunlock(gaddr)
        except FencedError as exc:
            return exc

    def fresh_acquire(sim):
        yield sim.timeout(6_000)
        yield from b.glock(gaddr)
        return "acquired"

    _, release_exc, outcome = pool.run(
        admin(sim), stale_release(sim), fresh_acquire(sim))
    assert isinstance(release_exc, FencedError)
    assert outcome == "acquired"
    word = server.lock_mr.read_u64(lock_idx * 8)
    assert lock_owner(word) == b.uid  # the fresh lock survived the clear


def test_client_death_frees_ring_resources():
    """Three kill → lease-expiry → revive → rejoin cycles must not leak
    server-side ring MRs, DRAM carves, or drain loops: lease expiry retires
    the dead client's ring, and the rejoin reuses the parked span."""
    LEASE = 100_000
    sim, pool = build_pool(
        num_servers=1, num_clients=2,
        config=fast_config(client_lease_ns=LEASE, auto_reattach=True,
                           retry_max_attempts=3))
    server = pool.servers[0]
    endpoint = server.node.endpoint
    a, b = pool.clients

    def cycle():
        a.crash()

        def wait(sim):
            yield sim.timeout(3 * LEASE)  # lease lapses; ring retired

        pool.run(wait(sim))
        assert "client0" not in server._rings
        assert len(server._drain_loops) == 1
        a.revive()

        def rejoin(sim):
            yield from a.reattach_master()
            yield from a.reattach_server(0)

        pool.run(rejoin(sim))

    cycle()  # first cycle settles any lazily-carved state
    mrs = len(endpoint._mrs)
    carved = server._carver._next
    assert len(server._drain_loops) == 2

    for _ in range(2):
        cycle()

    assert len(endpoint._mrs) == mrs
    assert server._carver._next == carved  # spans reused, never re-carved
    assert len(server._drain_loops) == 2
    assert pool.master.lease_expiries.count == 3

    def app(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.gwrite(gaddr, b"alive!" + bytes(58))
        yield from a.gsync()
        data = yield from b.gread(gaddr, length=6)
        return data

    (data,) = pool.run(app(sim))
    assert data == b"alive!"
