"""Tests for GengarPool.build validation and deployment shapes."""

import pytest

from repro.core import GengarPool
from repro.hardware.specs import TEST_DRAM, TEST_NVM
from repro.sim import Simulator

from tests.core.conftest import build_pool, fast_config


def test_build_rejects_empty_deployments():
    sim = Simulator()
    with pytest.raises(ValueError):
        GengarPool.build(sim, num_servers=0, num_clients=1,
                         dram=TEST_DRAM, nvm=TEST_NVM)
    with pytest.raises(ValueError):
        GengarPool.build(sim, num_servers=1, num_clients=0,
                         dram=TEST_DRAM, nvm=TEST_NVM)


def test_build_larger_deployment():
    sim, pool = build_pool(num_servers=3, num_clients=4)
    assert len(pool.servers) == 3
    assert len(pool.clients) == 4
    client = pool.clients[3]

    def app(sim):
        addrs = []
        for _ in range(6):
            addrs.append((yield from client.gmalloc(128)))
        return addrs

    (addrs,) = pool.run(app(sim))
    from repro.core import server_of

    assert {server_of(g) for g in addrs} == {0, 1, 2}


def test_run_propagates_first_failure():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def good(sim):
        yield from client.gmalloc(64)

    def bad(sim):
        yield from client.gmalloc(64)
        raise RuntimeError("app bug")

    with pytest.raises(RuntimeError, match="app bug"):
        pool.run(good(sim), bad(sim))


def test_server_for_maps_addresses():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        return (yield from client.gmalloc(64))

    (gaddr,) = pool.run(app(sim))
    from repro.core import server_of

    assert pool.server_for(gaddr).server_id == server_of(gaddr)


def test_rack_plan_places_nodes():
    from repro.hardware.specs import LinkSpec, DEFAULT_LINK

    sim = Simulator(seed=4)
    link = LinkSpec(bandwidth=DEFAULT_LINK.bandwidth,
                    propagation_ns=DEFAULT_LINK.propagation_ns,
                    core_bandwidth=DEFAULT_LINK.bandwidth / 4)
    pool = GengarPool.build(
        sim, num_servers=1, num_clients=1, dram=TEST_DRAM, nvm=TEST_NVM,
        config=fast_config(), link=link,
        rack_plan={"server0": "r0", "client0": "r1", "master": "r1"},
    )
    fabric = pool.cluster.fabric
    assert fabric.rack_of("server0") == "r0"
    assert fabric.rack_of("client0") == "r1"
    client = pool.clients[0]

    def app(sim):
        g = yield from client.gmalloc(4096)
        yield from client.gwrite(g, b"x" * 4096)
        yield from client.gsync()
        yield from client.gread(g)

    pool.run(app(sim))
    assert fabric.inter_rack_messages.count > 0
    assert fabric.core_bytes("r1") > 0  # client-side uplink carried requests


def test_flat_build_has_no_rack_state():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    assert pool.cluster.fabric.rack_of("server0") == ""
    assert pool.cluster.fabric.inter_rack_messages.count == 0
