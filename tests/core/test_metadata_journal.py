"""Tests for the persistent metadata journal and master rebuild."""

import pytest

from repro.core.master import MasterError
from repro.core.protocol import (
    JOURNAL_OP_ALLOC,
    JOURNAL_OP_FREE,
    pack_journal_record,
    unpack_journal_record,
)

from tests.core.conftest import build_pool, fast_config


def journal_pool(**overrides):
    cfg = fast_config(metadata_journal=True, journal_entries=256, **overrides)
    return build_pool(num_servers=2, num_clients=1, config=cfg)


# ---------------------------------------------------------------------------
# Record encoding
# ---------------------------------------------------------------------------
def test_journal_record_roundtrip():
    raw = pack_journal_record(JOURNAL_OP_ALLOC, 7, 0xABCD, 4096)
    assert len(raw) == 32
    op, lock_idx, gaddr, size, req_id = unpack_journal_record(raw)
    assert (op, lock_idx, gaddr, size) == (JOURNAL_OP_ALLOC, 7, 0xABCD, 4096)
    assert req_id == 0  # default: no idempotency token


def test_journal_record_roundtrip_with_req_id():
    raw = pack_journal_record(JOURNAL_OP_FREE, 3, 0x1000, 64, req_id=(9 << 32) | 5)
    op, lock_idx, gaddr, size, req_id = unpack_journal_record(raw)
    assert (op, lock_idx, gaddr, size) == (JOURNAL_OP_FREE, 3, 0x1000, 64)
    assert req_id == (9 << 32) | 5


def test_journal_record_validation():
    with pytest.raises(ValueError):
        pack_journal_record(99, 0, 0, 0)
    with pytest.raises(ValueError):
        unpack_journal_record(bytes(32))  # zero magic


# ---------------------------------------------------------------------------
# Journaling during normal operation
# ---------------------------------------------------------------------------
def test_allocations_are_journaled_to_nvm():
    sim, pool = journal_pool()
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(4):
            addrs.append((yield from client.gmalloc(1024)))
        yield from client.gfree(addrs[1])
        return addrs

    (addrs,) = pool.run(app(sim))
    # The journals hold one record per alloc/free, persisted in NVM.
    total = 0
    for server in pool.servers.values():
        if server._journal_count:
            count = int.from_bytes(
                server.data_device.peek(server.journal_base, 8), "little")
            assert count == server._journal_count
            total += count
    assert total == 5  # 4 allocs + 1 free


def test_journal_region_is_excluded_from_allocation():
    sim, pool = journal_pool()
    server = pool.servers[0]
    assert server.data_capacity < server.data_device.capacity
    handle = pool.master._servers[0]
    assert handle.allocator.capacity == server.data_capacity


def test_journal_disabled_by_default():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    assert pool.servers[0].journal_base is None

    def app(sim):
        try:
            yield from pool.master.rebuild()
        except MasterError:
            return "no-journal"

    (outcome,) = pool.run(app(sim))
    assert outcome == "no-journal"


# ---------------------------------------------------------------------------
# Rebuild after a full master restart
# ---------------------------------------------------------------------------
def test_master_rebuild_restores_directory_and_data():
    sim, pool = journal_pool()
    client = pool.clients[0]

    def before(sim):
        addrs = []
        for i in range(6):
            g = yield from client.gmalloc(512)
            yield from client.gwrite(g, bytes([i + 1]) * 512)
            addrs.append(g)
        yield from client.gsync()
        yield from client.gfree(addrs[2])
        return addrs

    (addrs,) = pool.run(before(sim))
    live = [g for i, g in enumerate(addrs) if i != 2]

    # Master restart: all volatile metadata evaporates...
    pool.master.reset_volatile_state()
    assert len(pool.master.directory) == 0

    # ...and the journal brings it back.
    def rebuild(sim):
        recovered = yield from pool.master.rebuild()
        return recovered

    (recovered,) = pool.run(rebuild(sim))
    assert recovered == 5
    for g in live:
        assert g in pool.master.directory

    # Clients can still read everything (their metadata re-resolves).
    def after(sim):
        out = []
        for g in live:
            client._invalidate_meta(g)
            out.append((yield from client.gread(g, length=4)))
        return out

    (values,) = pool.run(after(sim))
    expected = [bytes([i + 1]) * 4 for i in range(6) if i != 2]
    assert values == expected


def test_rebuild_allocator_prevents_overlap():
    """New allocations after rebuild never overlap recovered objects."""
    sim, pool = journal_pool()
    client = pool.clients[0]

    def before(sim):
        addrs = []
        for _ in range(4):
            g = yield from client.gmalloc(1024)
            yield from client.gwrite(g, b"\x77" * 1024)
            addrs.append(g)
        yield from client.gsync()
        return addrs

    (old_addrs,) = pool.run(before(sim))
    pool.master.reset_volatile_state()

    def rebuild_and_alloc(sim):
        yield from pool.master.rebuild()
        fresh = []
        for _ in range(4):
            g = yield from client.gmalloc(1024)
            fresh.append(g)
        return fresh

    (fresh,) = pool.run(rebuild_and_alloc(sim))
    assert not set(fresh) & set(old_addrs)

    # Old data is untouched by the new allocations' existence.
    def check(sim):
        out = []
        for g in old_addrs:
            client._invalidate_meta(g)
            out.append((yield from client.gread(g, length=4)))
        return out

    (values,) = pool.run(check(sim))
    assert values == [b"\x77" * 4] * 4


def test_rebuild_reuses_freed_lock_indices():
    # One server: lock indices are a per-server namespace.
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(metadata_journal=True, journal_entries=256),
    )
    client = pool.clients[0]

    def before(sim):
        a = yield from client.gmalloc(64)
        b = yield from client.gmalloc(64)
        yield from client.gfree(a)
        return a, b

    (result,) = pool.run(before(sim))
    _a, b = result
    b_lock = pool.master.directory.get(b).lock_idx
    pool.master.reset_volatile_state()

    def rebuild(sim):
        yield from pool.master.rebuild()
        # A new allocation may reuse the freed object's lock index but
        # must never collide with the live object's.
        c = yield from client.gmalloc(64)
        return c

    (c,) = pool.run(rebuild(sim))
    assert pool.master.directory.get(b).lock_idx == b_lock
    assert pool.master.directory.get(c).lock_idx != b_lock


def test_journal_full_rejects_allocation():
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(metadata_journal=True, journal_entries=3),
    )
    client = pool.clients[0]
    from repro.rdma.rpc import RpcError

    def app(sim):
        for _ in range(3):
            yield from client.gmalloc(64)
        try:
            yield from client.gmalloc(64)
        except RpcError as exc:
            return str(exc)

    (msg,) = pool.run(app(sim))
    assert "journal full" in msg


def test_locks_work_after_rebuild():
    sim, pool = journal_pool()
    client = pool.clients[0]

    def before(sim):
        g = yield from client.gmalloc(64)
        yield from client.gwrite(g, bytes(64))
        yield from client.gsync()
        return g

    (gaddr,) = pool.run(before(sim))
    pool.master.reset_volatile_state()

    def after(sim):
        yield from pool.master.rebuild()
        client._invalidate_meta(gaddr)
        yield from client.glock(gaddr, write=True)
        yield from client.gwrite(gaddr, b"post-rebuild" + bytes(52))
        yield from client.gunlock(gaddr, write=True)
        data = yield from client.gread(gaddr, length=12)
        return data

    (data,) = pool.run(after(sim))
    assert data == b"post-rebuild"
