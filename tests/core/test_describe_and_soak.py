"""Tests for the operator snapshot plus a mixed-workload soak run."""

from tests.core.conftest import build_pool, fast_config


def test_describe_reflects_activity():
    sim, pool = build_pool(num_servers=2, num_clients=2)
    a, b = pool.clients

    def app(sim):
        g = yield from a.gmalloc(512)
        yield from a.gwrite(g, b"d" * 512)
        yield from a.gsync()
        yield from b.glock(g, write=True)
        yield from b.gunlock(g, write=True)
        return g

    pool.run(app(sim))
    snap = pool.describe()
    assert snap["objects"] == 1
    assert snap["master"]["allocations"] == 1
    assert snap["virtual_time_ns"] == sim.now
    assert set(snap["servers"]) == {"server0", "server1"}
    drained = sum(s["drained_writes"] for s in snap["servers"].values())
    assert drained == 1
    assert all(s["alive"] for s in snap["servers"].values())
    assert snap["clients"]["client0"]["uid"] != snap["clients"]["client1"]["uid"]
    assert snap["locks"]["acquires"] == 1
    # No journal configured: the field reports None.
    assert all(s["journal_records"] is None for s in snap["servers"].values())


def test_describe_counts_journal_when_enabled():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(metadata_journal=True))
    client = pool.clients[0]

    def app(sim):
        yield from client.gmalloc(64)
        yield from client.gmalloc(64)

    pool.run(app(sim))
    snap = pool.describe()
    assert snap["servers"]["server0"]["journal_records"] == 2


def test_soak_mixed_workload_stays_consistent():
    """A longer mixed run: locks, proxy writes, frees, promotions, batch
    ops, and syncs interleaved across three clients.  The final state must
    be exactly what a serial oracle of the locked counters predicts, and
    all internal accounting must balance."""
    sim, pool = build_pool(
        seed=2024, num_servers=2, num_clients=3,
        config=fast_config(cache_capacity=128 * 1024, epoch_ns=40_000,
                           report_every_ops=8, promote_threshold=1.0,
                           demote_threshold=0.2),
    )
    clients = pool.clients
    rounds = 12

    def setup(sim):
        counter = yield from clients[0].gmalloc(64)
        yield from clients[0].gwrite(counter, bytes(64))
        hot = yield from clients[0].gmalloc(2048)
        yield from clients[0].gwrite(hot, b"H" * 2048)
        yield from clients[0].gsync()
        return counter, hot

    ((counter, hot),) = pool.run(setup(sim))

    def worker(idx):
        client = clients[idx]
        rng = sim.rng.stream(f"soak.{idx}")
        scratch = []
        for r in range(rounds):
            # Locked increment (the oracle-checked part).
            yield from client.glock(counter, write=True)
            raw = yield from client.gread(counter, length=8)
            value = int.from_bytes(raw, "little")
            yield from client.gwrite(counter, (value + 1).to_bytes(8, "little"))
            yield from client.gunlock(counter, write=True)
            # Hot-object reads (drive promotion).
            for _ in range(4):
                data = yield from client.gread(hot, length=16)
                assert data == b"H" * 16
            # Private object churn.
            g = yield from client.gmalloc(256)
            scratch.append(g)
            yield from client.gwrite(g, bytes([idx + 1]) * 256)
            if rng.random() < 0.4 and len(scratch) > 1:
                victim = scratch.pop(0)
                yield from client.gfree(victim)
            if rng.random() < 0.3:
                yield from client.gsync()
        # Batch check of the survivors.
        values = yield from client.gread_many(scratch)
        assert all(v == bytes([idx + 1]) * 256 for v in values)

    pool.run(*[worker(i) for i in range(3)])

    def final(sim):
        yield from clients[0].gsync()
        raw = yield from clients[0].gread(counter, length=8)
        return int.from_bytes(raw, "little")

    (total,) = pool.run(final(sim))
    assert total == 3 * rounds

    snap = pool.describe()
    # Every client's session is clean after its syncs...
    for server in pool.servers.values():
        # ...and server cache accounting balances directory accounting.
        assert len(server.cached) == sum(
            1 for rec in pool.master.directory.objects()
            if rec.cached and rec.server_id == server.server_id
        )
    assert snap["locks"]["acquires"] == 3 * rounds
    # The hot object was promoted at some point during the run.
    assert pool.master.promote_ops.count >= 1
