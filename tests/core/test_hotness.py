"""Tests for the hot-data identification policies."""

import random

import pytest

from repro.core.hotness import (
    EpochDecayPolicy,
    LfuPolicy,
    LruPolicy,
    NeverCachePolicy,
    PlacementPlan,
    RandomPolicy,
)

KIB = 1024


def make_policy(**kw):
    defaults = dict(decay=0.5, promote_threshold=4.0, demote_threshold=1.0)
    defaults.update(kw)
    return EpochDecayPolicy(**defaults)


def test_plan_empty_is_noop():
    policy = make_policy()
    plan = policy.plan(capacity=1024, used=0)
    assert plan.is_noop


def test_hot_object_promoted():
    policy = make_policy()
    policy.track(gaddr=1, size=256)
    policy.record(1, reads=10, writes=0)
    plan = policy.plan(capacity=1024, used=0)
    assert plan.promotions == (1,)
    assert plan.demotions == ()


def test_cold_object_not_promoted():
    policy = make_policy()
    policy.track(1, 256)
    policy.record(1, reads=2, writes=0)  # below the threshold of 4
    assert policy.plan(capacity=1024, used=0).is_noop


def test_writes_count_toward_hotness():
    policy = make_policy()
    policy.track(1, 256)
    policy.record(1, reads=0, writes=6)
    assert policy.plan(capacity=1024, used=0).promotions == (1,)


def test_promotions_ranked_hottest_first_within_capacity():
    policy = make_policy()
    for g, hits in [(1, 5), (2, 50), (3, 20)]:
        policy.track(g, 512)
        policy.record(g, reads=hits, writes=0)
    plan = policy.plan(capacity=1024, used=0)
    assert plan.promotions == (2, 3)  # hottest two fill the 1 KiB


def test_score_decays_and_triggers_demotion():
    policy = make_policy(decay=0.25, promote_threshold=4.0, demote_threshold=1.0)
    policy.track(1, 256)
    policy.record(1, reads=16, writes=0)
    plan = policy.plan(capacity=1024, used=0)
    assert plan.promotions == (1,)
    policy.on_promoted(1)
    # Epochs with no accesses: 16 -> 4 -> 1 -> 0.25 (below demote threshold).
    assert policy.plan(capacity=1024, used=256).is_noop  # score 4
    assert policy.plan(capacity=1024, used=256).is_noop  # score 1
    plan = policy.plan(capacity=1024, used=256)  # score 0.25
    assert plan.demotions == (1,)


def test_hysteresis_keeps_warm_objects_cached():
    """Objects between the demote and promote thresholds stay where they are."""
    policy = make_policy(decay=1.0, promote_threshold=10.0, demote_threshold=2.0)
    policy.track(1, 256)
    policy.track(2, 256)
    policy.record(1, reads=12, writes=0)
    policy.record(2, reads=5, writes=0)
    plan = policy.plan(capacity=1024, used=0)
    assert plan.promotions == (1,)  # object 2's score 5 is below promote
    policy.on_promoted(1)
    # Next epoch (decay 1.0 keeps scores): 1 stays cached, 2 stays out.
    plan = policy.plan(capacity=1024, used=256)
    assert plan.is_noop


def test_eviction_replaces_colder_cached_object():
    policy = make_policy(decay=1.0)
    policy.track(1, 512)
    policy.record(1, reads=5, writes=0)
    plan = policy.plan(capacity=512, used=0)
    assert plan.promotions == (1,)
    policy.on_promoted(1)
    # A much hotter object appears; capacity only fits one.
    policy.track(2, 512)
    policy.record(2, reads=50, writes=0)
    plan = policy.plan(capacity=512, used=512)
    assert plan.demotions == (1,)
    assert plan.promotions == (2,)


def test_no_churn_on_equal_scores():
    policy = make_policy(decay=1.0)
    policy.track(1, 512)
    policy.record(1, reads=5, writes=0)
    policy.on_promoted(policy.plan(capacity=512, used=0).promotions[0])
    policy.track(2, 512)
    policy.record(2, reads=5, writes=0)  # equal heat after this epoch? No:
    # object 1's score decays to 5 (decay=1.0), object 2 reaches 5 too.
    plan = policy.plan(capacity=512, used=512)
    assert plan.is_noop  # equal scores: do not churn


def test_oversized_object_never_promoted():
    policy = make_policy()
    policy.track(1, 4096)
    policy.record(1, reads=100, writes=0)
    assert policy.plan(capacity=1024, used=0).is_noop


def test_freed_object_dropped():
    policy = make_policy()
    policy.track(1, 256)
    policy.record(1, reads=100, writes=0)
    policy.on_freed(1)
    assert policy.plan(capacity=1024, used=0).is_noop
    policy.record(1, reads=5, writes=0)  # stale report: ignored
    assert policy.plan(capacity=1024, used=0).is_noop


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        EpochDecayPolicy(decay=1.5)
    with pytest.raises(ValueError):
        EpochDecayPolicy(promote_threshold=1.0, demote_threshold=2.0)


def test_stats_accumulate_reads_writes():
    policy = make_policy()
    policy.track(1, 64)
    policy.record(1, reads=3, writes=2)
    policy.plan(capacity=0, used=0)
    stats = policy.stats_for(1)
    assert stats.reads == 3 and stats.writes == 2 and stats.accesses == 5


# ---------------------------------------------------------------------------
# Comparator policies (E8)
# ---------------------------------------------------------------------------
def test_lru_promotes_recent_evicts_stale():
    lru = LruPolicy()
    for g in (1, 2, 3):
        lru.track(g, 512)
    lru.record(1, 1, 0)
    lru.record(2, 1, 0)
    plan = lru.plan(capacity=1024, used=0)
    assert set(plan.promotions) == {1, 2}
    for g in plan.promotions:
        lru.on_promoted(g)
    lru.record(3, 1, 0)  # 3 is now most recent; 1 is the LRU victim
    plan = lru.plan(capacity=1024, used=1024)
    assert 3 in plan.promotions
    assert 1 in plan.demotions


def test_lfu_promotes_by_count():
    lfu = LfuPolicy(promote_threshold=2)
    for g, n in [(1, 10), (2, 1), (3, 5)]:
        lfu.track(g, 256)
        lfu.record(g, n, 0)
    plan = lfu.plan(capacity=512, used=0)
    assert plan.promotions == (1, 3)


def test_random_policy_respects_capacity():
    rp = RandomPolicy(random.Random(1), churn=10)
    for g in range(10):
        rp.track(g, 256)
        rp.record(g, 1, 0)
    plan = rp.plan(capacity=512, used=0)
    assert len(plan.promotions) <= 2


def test_never_cache_policy_is_inert():
    ncp = NeverCachePolicy()
    ncp.track(1, 10)
    ncp.record(1, 100, 100)
    assert ncp.plan(capacity=10_000, used=0).is_noop


def test_placement_plan_noop_flag():
    assert PlacementPlan((), ()).is_noop
    assert not PlacementPlan((1,), ()).is_noop


def test_lru_considers_later_candidates_after_unplaceable_one():
    """Regression: a candidate that cannot evict its way in must not abort
    the whole plan.

    The old victim loop popped candidates' victims before checking recency
    and, worse, broke out of the candidate loop entirely the first time an
    object could not be placed — silently pinning the cache and starving
    smaller, still-placeable candidates later in the recency order.  Here
    the most recent uncached object (size 2) cannot fit without evicting a
    *more recent* cached victim, but the next candidate (size 1) fits in
    the free space as-is: the fixed planner promotes it, the old one
    returned an empty plan.
    """
    lru = LruPolicy()
    for g, size in [(0x10, 1), (0xA0, 2), (0xB0, 1)]:
        lru.track(g, size)
    lru.record(0xB0, 1, 0)  # touch 1 (oldest)
    lru.record(0xA0, 1, 0)  # touch 2
    lru.record(0x10, 1, 0)  # touch 3 (most recent, cached)
    lru.on_promoted(0x10)

    plan = lru.plan(capacity=2, used=1)
    assert plan.demotions == ()  # the recent victim stays put
    assert plan.promotions == (0xB0,)  # old code: () — plan aborted


def test_lru_oversized_candidate_skipped_not_fatal():
    """An object larger than the whole cache is skipped, and planning
    continues with the remaining candidates."""
    lru = LruPolicy()
    lru.track(1, 100)
    lru.track(2, 8)
    lru.record(1, 1, 0)
    lru.record(2, 1, 0)
    plan = lru.plan(capacity=16, used=0)
    assert plan.promotions == (2,)


def test_lru_victim_survives_check_failure():
    """A victim spared by the recency check must stay in the working list
    (the old code popped it *before* checking, so one spared victim was
    silently dropped from consideration for the rest of the plan)."""
    lru = LruPolicy()
    for g in (1, 2, 3):
        lru.track(g, 1)
    lru.record(3, 1, 0)  # touch 1: uncached, oldest
    lru.record(1, 1, 0)  # touch 2: cached victim
    lru.record(2, 1, 0)  # touch 3: uncached, most recent
    lru.on_promoted(1)
    # Candidate 2 (touch 3) may evict victim 1 (touch 2); candidate 3
    # (touch 1) may not have evicted it.  Full plan: demote 1, promote 2.
    plan = lru.plan(capacity=1, used=1)
    assert plan.demotions == (1,)
    assert plan.promotions == (2,)
