"""Shadow-model fuzzing: the pool vs a plain-dict reference.

A random operation sequence (alloc / free / write / partial write / read /
partial read / sync / batch) is applied both to a real Gengar deployment and
to an in-memory shadow model.  Any divergence — a stale read after sync, a
lost write, a misplaced partial update, cache/proxy interaction bugs — fails
the property.  This is the test that would catch protocol regressions that
no targeted unit test anticipates.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.conftest import build_pool, fast_config

_SIZES = (64, 256, 1024, 4096)


class ShadowModel:
    """Reference semantics: a dict of bytearrays."""

    def __init__(self):
        self.objects = {}

    def alloc(self, handle, size):
        self.objects[handle] = bytearray(size)

    def free(self, handle):
        del self.objects[handle]

    def write(self, handle, offset, data):
        self.objects[handle][offset : offset + len(data)] = data

    def read(self, handle, offset, length):
        return bytes(self.objects[handle][offset : offset + length])


def _apply_ops(pool, sim, client, ops):
    """Run one op sequence against the pool and the shadow, comparing reads."""
    shadow = ShadowModel()
    handles = {}  # handle -> (gaddr, size)

    def driver(sim):
        next_handle = 0
        for op in ops:
            kind = op[0]
            if kind == "alloc":
                size = _SIZES[op[1] % len(_SIZES)]
                gaddr = yield from client.gmalloc(size)
                handles[next_handle] = (gaddr, size)
                shadow.alloc(next_handle, size)
                next_handle += 1
            elif not handles:
                continue
            else:
                handle = sorted(handles)[op[1] % len(handles)]
                gaddr, size = handles[handle]
                if kind == "write":
                    seed_byte = op[2] % 256
                    data = bytes([seed_byte]) * size
                    yield from client.gwrite(gaddr, data)
                    shadow.write(handle, 0, data)
                elif kind == "partial_write":
                    offset = op[2] % size
                    length = max(1, min(size - offset, op[3] % 97))
                    data = bytes([(op[2] + op[3]) % 256]) * length
                    yield from client.gwrite(gaddr, data, offset=offset)
                    shadow.write(handle, offset, data)
                elif kind == "read":
                    got = yield from client.gread(gaddr)
                    want = shadow.read(handle, 0, size)
                    assert got == want, f"full read diverged on handle {handle}"
                elif kind == "partial_read":
                    offset = op[2] % size
                    length = max(1, min(size - offset, op[3] % 131))
                    got = yield from client.gread(gaddr, offset=offset,
                                                  length=length)
                    want = shadow.read(handle, offset, length)
                    assert got == want, (
                        f"partial read diverged on handle {handle} "
                        f"[{offset}:{offset + length}]"
                    )
                elif kind == "sync":
                    yield from client.gsync()
                elif kind == "free":
                    yield from client.gfree(gaddr)
                    shadow.free(handle)
                    del handles[handle]
        # Final full validation after draining everything.
        yield from client.gsync()
        for handle in sorted(handles):
            gaddr, size = handles[handle]
            got = yield from client.gread(gaddr)
            assert got == shadow.read(handle, 0, size), (
                f"final state diverged on handle {handle}"
            )

    pool.run(driver(sim))


_op = st.one_of(
    st.tuples(st.just("alloc"), st.integers(0, 3)),
    st.tuples(st.just("write"), st.integers(0, 30), st.integers(0, 255)),
    st.tuples(st.just("partial_write"), st.integers(0, 30),
              st.integers(0, 4095), st.integers(1, 200)),
    st.tuples(st.just("read"), st.integers(0, 30)),
    st.tuples(st.just("partial_read"), st.integers(0, 30),
              st.integers(0, 4095), st.integers(1, 200)),
    st.tuples(st.just("sync"), st.integers(0, 30)),
    st.tuples(st.just("free"), st.integers(0, 30)),
)


@given(ops=st.lists(_op, min_size=1, max_size=40), seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_pool_matches_shadow_model(ops, seed):
    sim, pool = build_pool(seed=seed, num_servers=2, num_clients=1)
    _apply_ops(pool, sim, pool.clients[0], [("alloc", 0)] + ops)


@given(ops=st.lists(_op, min_size=1, max_size=40), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_pool_matches_shadow_model_nvm_direct(ops, seed):
    """Same property on the baseline config (no cache, no proxy)."""
    sim, pool = build_pool(
        seed=seed, num_servers=2, num_clients=1,
        config=fast_config(enable_cache=False, enable_proxy=False),
    )
    _apply_ops(pool, sim, pool.clients[0], [("alloc", 0)] + ops)


@given(ops=st.lists(_op, min_size=1, max_size=40), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_pool_matches_shadow_model_tiny_ring(ops, seed):
    """Aggressive backpressure: a 2-slot proxy ring must stay correct."""
    sim, pool = build_pool(
        seed=seed, num_servers=1, num_clients=1,
        config=fast_config(proxy_ring_slots=2),
    )
    _apply_ops(pool, sim, pool.clients[0], [("alloc", 0)] + ops)


def test_long_deterministic_fuzz_run():
    """One long randomized soak (fixed seed) across many epochs."""
    rng = random.Random(1234)
    ops = [("alloc", 0), ("alloc", 1), ("alloc", 2)]
    for _ in range(300):
        kind = rng.choice(["write", "partial_write", "read", "partial_read",
                           "sync", "alloc", "free"])
        ops.append((kind, rng.randrange(31), rng.randrange(4096),
                    rng.randrange(1, 200))[: {"alloc": 2, "write": 3,
                                              "read": 2, "sync": 2,
                                              "free": 2}.get(kind, 4)])
    sim, pool = build_pool(seed=77, num_servers=2, num_clients=1)
    _apply_ops(pool, sim, pool.clients[0], ops)
