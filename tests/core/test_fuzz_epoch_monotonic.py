"""Fencing-epoch monotonicity across failover × force-unlock interleavings.

The fencing protocol's load-bearing invariant is that epochs only move
forward: a client fenced by the lease sweep re-attaches STRICTLY above its
retired epoch, and a master restart (which loses the epoch map) must not
hand anyone an older epoch back — ``attach`` takes the max of both views,
so the client's own copy carries the high-water mark through the outage.

These tests generate random interleavings of: a victim dying while holding
a contended lock, the lease sweep force-unlocking it, survivors hammering
the same lock throughout, and (sometimes) the master crashing and
journal-rebuilding in the middle of all that.  Whatever the weave, no
observed epoch sequence may ever regress, the revived zombie must come
back above its old epoch, and the recorded lock history must pass the
checker's epoch audit.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.check import check_history
from repro.check.history import HistoryRecorder
from repro.core.errors import ClientError
from tests.core.conftest import build_pool, fast_config

_LEASE = 100_000


@given(
    seed=st.integers(0, 50),
    kill_delay=st.integers(5_000, 60_000),
    master_down=st.integers(0, 2),  # 0 = master stays up; else crash offset
    contenders=st.integers(1, 2),
)
@example(seed=7, kill_delay=12_000, master_down=1, contenders=2)
@example(seed=23, kill_delay=48_000, master_down=0, contenders=1)
@example(seed=31, kill_delay=30_000, master_down=2, contenders=2)
@settings(max_examples=12, deadline=None)
def test_fence_epochs_never_regress(seed, kill_delay, master_down,
                                    contenders):
    sim, pool = build_pool(
        seed=seed, num_servers=2, num_clients=3,
        config=fast_config(client_lease_ns=_LEASE, auto_reattach=True,
                           retry_max_attempts=4, metadata_journal=True))
    recorder = HistoryRecorder(sim)
    recorder.install()
    c0, c1, victim = pool.clients
    survivors = [c0, c1][:contenders]

    def setup(sim):
        return (yield from victim.gmalloc(256))

    (g,) = pool.run(setup(sim))

    observed = {c.name: [c.fence_epoch] for c in pool.clients}

    def note(client):
        observed[client.name].append(client.fence_epoch)

    def victim_proc(sim):
        yield from victim.glock(g)
        note(victim)
        yield sim.timeout(kill_delay)
        victim.crash()
        yield sim.timeout(8 * _LEASE)  # park dead through sweep + failover

    def survivor_proc(client, lag):
        def proc(sim):
            yield sim.timeout(lag)
            acquired = 0
            while acquired < 3:
                try:
                    yield from client.glock(g)
                except ClientError:
                    yield sim.timeout(_LEASE // 2)
                    continue
                note(client)
                acquired += 1
                yield sim.timeout(2_500)
                try:
                    yield from client.gunlock(g)
                except ClientError:
                    yield sim.timeout(_LEASE // 2)
            return acquired

        return proc

    def master_chaos(sim):
        if not master_down:
            return
        # master_down=1 crashes the master BEFORE the victim's lease can
        # expire (no fence ever happens; the orphan sweep recovers the
        # lock by uid); master_down=2 crashes it AFTER the sweep fenced
        # the victim (the journaled retirement must survive the rebuild).
        yield sim.timeout(kill_delay + master_down * 70_000)
        pool.master.crash()
        yield sim.timeout(2 * _LEASE)
        pool.master.recover()
        yield from pool.master.recovery_process(rebuild=True)

    results = pool.run(
        victim_proc(sim), master_chaos(sim),
        *(survivor_proc(c, 5_000 + 10_000 * i)(sim)
          for i, c in enumerate(survivors)))
    assert all(count == 3 for count in results[2:])

    old_epoch = max(observed[victim.name])
    victim.revive()

    def rejoin(sim):
        yield from victim.reattach_master()
        yield from victim.glock(g)
        note(victim)
        yield from victim.gunlock(g)

    pool.run(rejoin(sim))

    # 1. If the victim was ever FENCED (its lease expired under a live
    #    master), it must re-attach STRICTLY above the retired epoch —
    #    even when the master crashed afterwards and lost its epoch map,
    #    the journaled retirement floor carries the bump across the
    #    rebuild.  If the master died before the lease could expire, no
    #    epoch was retired (the orphan sweep recovers the lock by uid)
    #    and staying level is correct.
    if sim.metrics.counter("master.lease_expiries").count > 0:
        assert victim.fence_epoch > old_epoch
    else:
        assert victim.fence_epoch >= old_epoch
    # 2. Nobody's observed epoch sequence ever regressed.
    for name, seq in observed.items():
        assert seq == sorted(seq), f"{name} epoch regressed: {seq}"
    # 3. The recorded lock history passes the checker's epoch audit: no
    #    lock was ever acquired under an epoch below one a later holder
    #    already presented on the same word.
    recorder.uninstall()
    res = check_history(recorder.ops)
    assert res.ok, res.violations
