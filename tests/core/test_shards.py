"""Sharded control plane: ownership partitioning, redirects, per-shard
failover, cross-shard lease recovery, and resharding.

The contract under test: with ``num_master_shards=N`` every home server is
owned by exactly one master shard; object ops land only at the owning
shard (a misrouted op gets a typed ``NotMyShard`` redirect carrying the
owner and map epoch, never a silent wrong-shard apply); idempotency dedup
is keyed by (client uid, req_id) *inside* the owning shard and travels
with a reshard; terms, leases, and failover are per shard — one shard's
failover must not stale another shard's replies or strand a dead client's
locks on it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NotMyShard, RetryableError, server_of
from repro.faults import ClientCrash, FaultPlan, MasterCrash, MasterRecover

from tests.core.conftest import build_pool, fast_config

LEASE = 100_000


def shard_config(**overrides):
    defaults = dict(num_master_shards=2, metadata_journal=True,
                    journal_entries=64, auto_reattach=True,
                    retry_max_attempts=12, retry_timeout_ns=10_000)
    defaults.update(overrides)
    return fast_config(**defaults)


# ----------------------------------------------------------------------
# Ownership partitioning + routing
# ----------------------------------------------------------------------
def test_sharded_build_partitions_server_ownership():
    sim, pool = build_pool(num_servers=4, num_clients=1,
                           config=shard_config())
    owners = pool.describe()["shards"]["owners"]
    assert owners == {"master": [0, 2], "master_s1": [1, 3]}
    owned_sets = [set(m._servers) for m in pool.masters]
    assert owned_sets[0] & owned_sets[1] == set()
    assert owned_sets[0] | owned_sets[1] == set(pool.servers)


def test_allocations_spread_across_all_shards_servers():
    sim, pool = build_pool(num_servers=4, num_clients=1,
                           config=shard_config())
    client = pool.clients[0]

    def alloc(sim):
        addrs = []
        for _ in range(16):
            addrs.append((yield from client.gmalloc(64)))
        return addrs

    (addrs,) = pool.run(alloc(sim))
    assert {server_of(g) for g in addrs} == {0, 1, 2, 3}
    # Each object's metadata lives in exactly one shard's directory — the
    # one owning its home server.
    for g in addrs:
        holders = [m for m in pool.masters if g in m.directory]
        assert len(holders) == 1
        assert server_of(g) in holders[0]._servers


def test_cross_shard_free_and_lookup_route_to_the_owner():
    sim, pool = build_pool(num_servers=4, num_clients=1,
                           config=shard_config())
    client = pool.clients[0]

    def scenario(sim):
        addrs = []
        for _ in range(8):
            addrs.append((yield from client.gmalloc(128)))
        for g in addrs:
            yield from client.gwrite(g, b"S" * 128)
        client._meta_cache.clear()
        client._meta_epoch.clear()
        reads = []
        for g in addrs:  # forces a lookup at the owning shard
            reads.append((yield from client.gread(g)))
        for g in addrs:
            yield from client.gfree(g)
        return reads

    (reads,) = pool.run(scenario(sim))
    assert all(r == b"S" * 128 for r in reads)
    assert sum(len(m.directory) for m in pool.masters) == 0
    assert client.m_shard_redirects.count == 0  # map was accurate throughout


def test_misrouted_op_gets_typed_redirect_and_heals_the_map():
    sim, pool = build_pool(num_servers=4, num_clients=1,
                           config=shard_config())
    client = pool.clients[0]

    def alloc(sim):
        while True:
            g = yield from client.gmalloc(64)
            if server_of(g) == 1:
                return g

    (target,) = pool.run(alloc(sim))
    pool.reshard(1, 0)  # server 1 moves shard1 -> shard0 behind the client
    client._meta_cache.clear()
    client._meta_epoch.clear()

    def use(sim):
        data = yield from client.gread(target)  # lookup redirects + retries
        yield from client.gfree(target)
        return data

    pool.run(use(sim))
    assert client.m_shard_redirects.count >= 1
    assert client._shard_map[1] == 0
    assert client._shard_map_epoch == 1


def test_misrouted_op_without_retry_budget_raises_not_my_shard():
    sim, pool = build_pool(num_servers=2, num_clients=1,
                           config=shard_config(retry_max_attempts=1))
    client = pool.clients[0]

    def alloc(sim):
        while True:
            g = yield from client.gmalloc(64)
            if server_of(g) == 1:
                return g

    (target,) = pool.run(alloc(sim))
    pool.reshard(1, 0)
    client._meta_cache.clear()
    client._meta_epoch.clear()

    def use(sim):
        try:
            yield from client.gread(target)
        except NotMyShard as exc:
            return exc

    (exc,) = pool.run(use(sim))
    assert isinstance(exc, NotMyShard)
    assert isinstance(exc, RetryableError)
    assert exc.owner_shard == 0
    assert exc.map_epoch == 1


# ----------------------------------------------------------------------
# Satellite 1: alloc retry deduped across a shard failover
# ----------------------------------------------------------------------
def test_alloc_retry_is_deduped_across_a_shard_failover():
    """The lost-reply replay of a gmalloc must return the ORIGINAL
    allocation even when the owning shard crashed and rebuilt in between:
    the dedup key is (client uid, req_id) inside that shard, and it rides
    the shard's journal records through the rebuild."""
    sim, pool = build_pool(num_servers=2, num_clients=1,
                           config=shard_config())
    client = pool.clients[0]

    def before(sim):
        req_id = client._next_req_id()
        client._req_shards[req_id] = 1  # what gmalloc's round-robin pins
        meta = yield from client._gmalloc_once(64, req_id)
        return req_id, meta.gaddr

    (result,) = pool.run(before(sim))
    req_id, gaddr = result
    assert server_of(gaddr) == 1  # shard 1 allocated on its own server
    shard1 = pool.masters[1]
    shard1.crash()
    shard1.recover()

    def after(sim):
        yield from shard1.recovery_process(rebuild=True)
        replay = yield from client._gmalloc_once(64, req_id)
        return replay.gaddr

    (replayed,) = pool.run(after(sim))
    assert replayed == gaddr
    assert shard1.dup_rpcs.count == 1
    assert len(shard1.directory) == 1  # no second object leaked
    assert len(pool.masters[0].directory) == 0  # shard 0 never involved


# ----------------------------------------------------------------------
# Satellite 2: per-shard terms — one failover must not stale the rest
# ----------------------------------------------------------------------
def test_shard_failover_does_not_stale_the_other_shards_replies():
    """Shard 1 fails over and claims a higher term.  With one scalar
    client-side term floor that bump would make every shard-0 reply look
    like a deposed master's echo — a StaleTermError rotation storm.  The
    floor is per shard: zero stale-term rejections, shard 0's term
    untouched."""
    cfg = shard_config(master_terms=True, client_lease_ns=LEASE)
    sim, pool = build_pool(num_servers=2, num_clients=1, config=cfg)
    client = pool.clients[0]
    term0_before = client._master_terms[0]
    term1_before = client._master_terms[1]
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        MasterCrash(at_ns=t0 + 5_000, shard=1),
        MasterRecover(at_ns=t0 + 45_000, rebuild=True, shard=1),
    ))

    def work(sim):
        addrs = []
        for _ in range(12):
            # Round-robin allocation hits both shards; the shard-1 ones
            # ride the retry/auto-reattach machinery through the outage.
            g = yield from client.gmalloc(64)
            addrs.append(g)
            yield sim.timeout(15_000)
        return addrs

    (addrs,) = pool.run(work(sim))
    assert {server_of(g) for g in addrs} == {0, 1}
    assert client.m_stale_terms.count == 0
    assert client._master_terms[0] == term0_before
    assert client._master_terms[1] > term1_before  # new term was claimed
    assert not client.fenced


# ----------------------------------------------------------------------
# Satellite 3: dead client's locks reclaimed across shards, one of them
# mid-failover
# ----------------------------------------------------------------------
def test_dead_clients_locks_reclaimed_on_both_shards_despite_failover():
    """client0 dies holding one write lock on each shard's server while
    shard 1 is ALSO failing over.  The live shard's lease sweep reclaims
    its lock; the restarted shard's post-failover orphan sweep reclaims
    the other.  A survivor must be able to take both locks without ever
    waiting on the corpse."""
    cfg = shard_config(client_lease_ns=LEASE)
    sim, pool = build_pool(num_servers=2, num_clients=2, config=cfg)
    c0, c1 = pool.clients

    def setup(sim):
        g0 = g1 = None
        while g0 is None or g1 is None:
            g = yield from c0.gmalloc(128)
            if server_of(g) == 0 and g0 is None:
                g0 = g
            elif server_of(g) == 1 and g1 is None:
                g1 = g
        yield from c0.glock(g0)
        yield from c0.glock(g1)
        return g0, g1

    (locked,) = pool.run(setup(sim))
    g0, g1 = locked
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=t0 + 1_000, client="client0"),
        MasterCrash(at_ns=t0 + 2_000, shard=1),
        MasterRecover(at_ns=t0 + 40_000, rebuild=True, shard=1),
    ))

    def contender(sim):
        # Outlive the outage plus the lease + orphan grace periods.
        yield sim.timeout(40_000 + 3 * LEASE)
        t_acq = sim.now
        yield from c1.glock(g0)
        yield from c1.gunlock(g0)
        yield from c1.glock(g1)
        yield from c1.gunlock(g1)
        return sim.now - t_acq

    (took,) = pool.run(contender(sim))
    assert took < LEASE  # never parked on the dead holder's locks
    assert pool.master.lock_recoveries.total >= 2
    # client1 still holds a lease on both shards; client0's lease is gone
    # everywhere (uids stay behind — they anchor the fencing epochs).
    for m in pool.masters:
        assert "client1" in m._leases
        assert "client0" not in m._leases


# ----------------------------------------------------------------------
# Cross-shard txn fencing: the fencing shard rolls forward intents that
# live on ANOTHER shard's coordinator server before force-unlocking
# ----------------------------------------------------------------------
def test_fencing_shard_rolls_forward_intent_held_by_another_shard():
    """client0 dies right after its commit point.  The durable intent sits
    on the coordinator server (shard 1's), but client0 also holds a lock on
    shard 0's server.  When shard 0 fences first it must find that foreign
    intent and roll it forward BEFORE clearing its lock — a per-shard-only
    scan would free the lock with the committed bytes still unapplied,
    letting a new writer in under a pending roll-forward."""
    cfg = shard_config(enable_txn=True, client_lease_ns=LEASE)
    sim, pool = build_pool(num_servers=2, num_clients=2, config=cfg)
    c0, c1 = pool.clients

    def setup(sim):
        g0 = g1 = None
        while g0 is None or g1 is None:
            g = yield from c0.gmalloc(64)
            if server_of(g) == 0 and g0 is None:
                g0 = g
            elif server_of(g) == 1 and g1 is None:
                g1 = g
        yield from c0.gwrite(g0, b"o" * 64)
        yield from c0.gwrite(g1, b"o" * 64)
        yield from c0.gsync()
        return g0, g1

    (addrs,) = pool.run(setup(sim))
    g0, g1 = addrs

    def hook(point, txn):
        if point == "post-intent":
            raise RuntimeError("client died right after the commit point")

    def doomed_commit(sim):
        # Lock both objects; write only the shard-1 one, making server 1
        # (shard 1's) the coordinator that stores the intent.
        txn = yield from c0.txn.begin([g0, g1])
        txn.write(g1, b"C" * 64)
        c0.txn.commit_hook = hook
        try:
            yield from txn.commit()
        except RuntimeError:
            pass  # the "death": locks held, intent durable, nothing applied
        c0.txn.commit_hook = None

    pool.run(doomed_commit(sim))
    rolled_before = pool.master.txn_rolled_forward.count

    def fence_shard0(sim):
        # Shard 0 fences the dead client FIRST — it does not own the
        # coordinator, so only a cross-shard intent scan can see the record.
        yield from pool.masters[0]._fence_and_recover("client0")
        return (yield from c1.gread(g1))

    (data,) = pool.run(fence_shard0(sim))
    # Shard 0 alone found the foreign intent and applied it before it
    # force-unlocked anything — the committed bytes are already visible.
    assert pool.master.txn_rolled_forward.count == rolled_before + 1
    assert data == b"C" * 64

    def fence_shard1(sim):
        yield from pool.masters[1]._fence_and_recover("client0")
        # Both locks must be reclaimable immediately (no dead holder left).
        yield from c1.glock(g0)
        yield from c1.gunlock(g0)
        yield from c1.glock(g1)
        yield from c1.gunlock(g1)

    pool.run(fence_shard1(sim))
    # The intent was cleared by shard 0's roll-forward: shard 1 found
    # nothing left to roll forward — exactly-once visibility.
    assert pool.master.txn_rolled_forward.count == rolled_before + 1
    assert c0.txn.m_cross_shard.count == 0  # single-shard write-set


# ----------------------------------------------------------------------
# Resharding moves dedup state with ownership
# ----------------------------------------------------------------------
def test_reshard_moves_dedup_entries_so_replays_stay_deduped():
    sim, pool = build_pool(num_servers=2, num_clients=1,
                           config=shard_config())
    client = pool.clients[0]

    def before(sim):
        req_id = client._next_req_id()
        client._req_shards[req_id] = 1
        meta = yield from client._gmalloc_once(64, req_id)
        return req_id, meta.gaddr

    (result,) = pool.run(before(sim))
    req_id, gaddr = result
    assert server_of(gaddr) == 1
    pool.reshard(1, 0)  # the dedup entry must travel to shard 0

    def after(sim):
        # The replay first hits shard 1 (the memo), gets redirected, and
        # must then be served from shard 0's adopted dedup table.
        try:
            meta = yield from client._gmalloc_once(64, req_id)
        except NotMyShard:
            meta = yield from client._gmalloc_once(64, req_id)
        return meta.gaddr

    (replayed,) = pool.run(after(sim))
    assert replayed == gaddr
    assert client._req_shards.get(req_id) == 0  # memo chased the redirect
    assert pool.master.dup_rpcs.count == 1
    assert sum(len(m.directory) for m in pool.masters) == 1


def test_reshard_refuses_while_a_participant_is_down():
    sim, pool = build_pool(num_servers=2, num_clients=1,
                           config=shard_config())
    pool.masters[1].crash()
    try:
        pool.reshard(1, 0)
        raised = False
    except Exception as exc:  # MasterError
        raised = "serving" in str(exc)
    assert raised


def test_reshard_across_diverged_terms_does_not_depose_the_adopter():
    """Shard 1 fails over twice, pushing its term past shard 0's; its
    server's journal then rejects any append below that term.  Reshard
    server 1 onto shard 0: if the handover dropped the exporter's term,
    shard 0's first journal append to the adopted server would bounce as
    'stale master term' and shard 0 would depose itself off its own
    reshard.  The export carries the term; the adopter rises to it."""
    cfg = shard_config(master_terms=True, client_lease_ns=LEASE)
    sim, pool = build_pool(num_servers=2, num_clients=1, config=cfg)
    client = pool.clients[0]
    shard0, shard1 = pool.masters

    def diverge(sim):
        for _ in range(2):
            shard1.crash()
            shard1.recover()
            yield from shard1.recovery_process(rebuild=True)

    pool.run(diverge(sim))
    assert shard1.term > shard0.term
    assert pool.servers[1]._term_max == shard1.term

    pool.reshard(1, 0)
    assert shard0.term >= shard1.term  # the term travelled with the export

    def work(sim):
        addrs = []
        for _ in range(8):
            addrs.append((yield from client.gmalloc(64)))
        return addrs

    (addrs,) = pool.run(work(sim))
    # Allocations on the adopted server journal at shard 0's term and are
    # accepted — no self-deposition, no stale-term rejection.
    assert 1 in {server_of(g) for g in addrs}
    assert not shard0._deposed
    assert client.m_stale_terms.count == 0


# ----------------------------------------------------------------------
# Satellite 4: fuzz — reshard/failover interleaved with client ops; no
# op may ever be applied by a non-owning shard
# ----------------------------------------------------------------------
_OPS = st.sampled_from(
    ["alloc", "write", "free", "reshard", "failover", "recover"])


def _assert_ownership_invariant(pool):
    owned = [set(m._servers) for m in pool.masters]
    union = set()
    for s in owned:
        assert not (union & s), "a server is owned by two shards"
        union |= s
    assert union == set(pool.servers)
    for m in pool.masters:
        for record in m.directory.objects():
            assert record.server_id in m._servers, (
                "object metadata held by a non-owning shard")


@given(ops=st.lists(_OPS, min_size=4, max_size=24),
       seed=st.integers(0, 20))
@settings(max_examples=20, deadline=None)
def test_fuzz_reshard_failover_ownership(ops, seed):
    cfg = shard_config()
    sim, pool = build_pool(seed=seed, num_servers=2, num_clients=1,
                           config=cfg)
    client = pool.clients[0]
    live = []
    state = {"crashed": False, "flip": 0}

    def run_op(op):
        def proc(sim):
            try:
                if op == "alloc":
                    live.append((yield from client.gmalloc(64)))
                elif op == "write" and live:
                    yield from client.gwrite(live[0], b"F" * 64)
                    yield from client.gsync()
                elif op == "free" and live:
                    yield from client.gfree(live.pop())
            except RetryableError:
                pass  # a shard was down past the budget; invariant still holds
        pool.run(proc(sim))

    for op in ops:
        if op == "reshard":
            if not state["crashed"]:
                sid = state["flip"] % 2
                state["flip"] += 1
                pool.reshard(sid, (pool.master.shard_map[sid] + 1) % 2)
        elif op == "failover":
            if not state["crashed"]:
                pool.masters[1].crash()
                state["crashed"] = True
        elif op == "recover":
            if state["crashed"]:
                pool.masters[1].recover()
                pool.run(pool.masters[1].recovery_process(rebuild=True))
                state["crashed"] = False
        else:
            run_op(op)
        if not state["crashed"]:
            _assert_ownership_invariant(pool)

    if state["crashed"]:
        pool.masters[1].recover()
        pool.run(pool.masters[1].recovery_process(rebuild=True))
    _assert_ownership_invariant(pool)
    # Every surviving object is findable at exactly one shard.
    for g in live:
        holders = [m for m in pool.masters if g in m.directory]
        assert len(holders) == 1
