"""Partition tolerance: master terms, deposition, and degraded mode.

The contract under test, per ``docs/PROTOCOLS.md`` §9: the journal
adjudicates master terms, so a master on the losing side of a partition
can never ack another allocation after a successor claims a higher term —
its first journal touch (an alloc, a lease fence's authority check, or
the periodic no-op validation) deposes it, and from then on it refuses
every RPC *including attach*.  Client-side, partitions surface as typed
retryable errors within the deadline, never as hangs; master-side, the
phi-accrual detector turns "unreachable" into *suspected*, not fenced,
until the suspicion crosses the threshold.
"""

import pytest

from repro.core import (
    DeadlineExceededError,
    FencedError,
    MasterUnavailableError,
    PartitionSuspected,
    StaleTermError,
)
from repro.core.master import MasterError
from repro.faults import FaultPlan, MasterCrash, MasterRecover, Partition

from tests.core.conftest import build_pool, fast_config

LEASE = 100_000


def partition_config(**overrides):
    defaults = dict(client_lease_ns=LEASE, metadata_journal=True,
                    master_terms=True, failure_detector=True,
                    auto_reattach=True, retry_max_attempts=8,
                    retry_timeout_ns=2_000_000, retry_jitter=False)
    defaults.update(overrides)
    return fast_config(**defaults)


def wait_promoted(sim, pool):
    """Promote the standby and park until its term claim lands."""
    pool.promote_standby(rebuild=True)
    for _ in range(64):
        if not pool.master._recovering:
            return
        yield sim.timeout(LEASE // 8)
    raise AssertionError("standby never finished recovery")


# ----------------------------------------------------------------------
# Split brain: the deposed master cannot ack
# ----------------------------------------------------------------------
def test_split_brain_old_master_cannot_ack_after_heal():
    """Partition the master, promote the standby mid-partition, heal: the
    old master's next allocation attempt dies on the journal's stale-term
    rejection — it never acks, even though it is still running."""
    sim, pool = build_pool(num_servers=2, num_clients=2,
                           config=partition_config(), standby_master=True)
    old = pool.master
    client = pool.clients[0]
    others = ("master1", "server0", "server1", "client0", "client1")

    def drive(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.glock(gaddr)
        yield from client.gwrite(gaddr, b"A" * 64)
        yield from client.gunlock(gaddr)
        start = sim.now + 1_000
        inj = pool.inject_faults(FaultPlan.of(Partition(
            start_ns=start, end_ns=start + 4 * LEASE,
            group_a=("master",), group_b=others)))
        yield sim.timeout(1_000 + LEASE)       # mid-partition
        yield from wait_promoted(sim, pool)
        yield sim.timeout(4 * LEASE)           # past the heal
        inj.uninstall()
        try:
            yield from old._handle_gmalloc({"client": "client0", "size": 64})
        except MasterError as exc:
            caught = exc
        else:
            caught = None
        data = yield from client.gread(gaddr)  # survivors keep serving
        return caught, data

    ((caught, data),) = pool.run(drive(sim))
    assert caught is not None and "deposed" in str(caught)
    assert old._deposed
    assert pool.master is not old
    assert pool.master.term > old.term
    assert data == b"A" * 64
    assert sim.metrics.counter("master.depositions").count >= 1


def test_validate_term_deposes_a_superseded_master():
    """The periodic authority check (no-op TERM append) is how a healed
    stale master learns of its successor even when nothing else touches
    the journal."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=partition_config(), standby_master=True)
    old = pool.master

    def drive(sim):
        yield from pool.clients[0].gmalloc(64)
        yield from wait_promoted(sim, pool)
        try:
            yield from old._validate_term()
        except MasterError as exc:
            return str(exc)
        return None

    (msg,) = pool.run(drive(sim))
    assert msg is not None and "deposed" in msg
    assert old._deposed
    assert pool.master.term == old.term + 1


def test_deposed_master_refuses_every_rpc_including_attach():
    """An attach served by a deposed master would park the client on a
    dead control plane forever; all three RPC classes must bounce."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=partition_config())
    master = pool.master
    master._deposed = True

    def drive(sim):
        msgs = []
        for gen in (master._handle_attach({"client": "c9"}),
                    master._handle_gmalloc({"client": "c9", "size": 64}),
                    master._handle_renew({"client": "client0", "epoch": 0})):
            try:
                yield from gen
            except MasterError as exc:
                msgs.append(str(exc))
        return msgs

    (msgs,) = pool.run(drive(sim))
    assert len(msgs) == 3
    assert all("deposed" in m for m in msgs)


def test_promotion_keeps_the_pool_serving():
    """Uncontested promotion: clients chase the stale-term rejection to
    the new master and both old data and new allocations keep working."""
    sim, pool = build_pool(num_servers=2, num_clients=2,
                           config=partition_config(), standby_master=True)
    old = pool.master
    client = pool.clients[0]

    def drive(sim):
        gaddr = yield from client.gmalloc(128)
        yield from client.glock(gaddr)
        yield from client.gwrite(gaddr, b"B" * 128)
        yield from client.gunlock(gaddr)
        yield from wait_promoted(sim, pool)
        g2 = yield from client.gmalloc(64)     # forces the failover
        data = yield from client.gread(gaddr)
        return g2, data

    ((g2, data),) = pool.run(drive(sim))
    assert data == b"B" * 128 and g2 is not None
    parts = pool.describe()["partitions"]
    assert parts["master_term"] == 2
    assert parts["master_deposed"] is False          # the *current* master
    assert parts["standby"] == "master"              # the demoted incumbent
    assert parts["depositions"] >= 1
    assert parts["stale_term_rejections"] >= 1
    assert parts["term_claims"] == 1  # one recovery, one claim


# ----------------------------------------------------------------------
# Degraded mode under an asymmetric partition
# ----------------------------------------------------------------------
def test_asymmetric_split_fails_typed_and_bounded():
    """Clients lose the master but keep the data plane: reads and staged
    writes keep working, control ops fail *typed* well within the window
    (never a hang), and the master only *suspects* the silent clients —
    after the heal everything resumes under the same epoch."""
    sim, pool = build_pool(num_servers=2, num_clients=2,
                           config=partition_config(retry_max_attempts=4,
                                                   op_deadline_ns=60_000))
    client = pool.clients[0]

    def drive(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, b"C" * 64)
        yield from client.gsync()
        start = sim.now + 1_000
        inj = pool.inject_faults(FaultPlan.control_plane_split(
            at_ns=start, clients=("client0", "client1"),
            duration_ns=3 * LEASE))
        yield sim.timeout(2_000)               # inside the window
        data = yield from client.gread(gaddr)  # data plane unaffected
        yield from client.gwrite(gaddr, b"D" * 64)
        t0 = sim.now
        try:
            yield from client.gmalloc(64)
            caught = None
        except (MasterUnavailableError, PartitionSuspected,
                StaleTermError, DeadlineExceededError) as exc:
            caught = exc
        elapsed = sim.now - t0
        yield sim.timeout(start + 3 * LEASE + LEASE - sim.now)  # heal + slack
        inj.uninstall()
        g2 = yield from client.gmalloc(64)     # control plane is back
        yield from client.glock(gaddr)         # and we were never fenced
        yield from client.gunlock(gaddr)
        return data, caught, elapsed, g2

    ((data, caught, elapsed, g2),) = pool.run(drive(sim))
    assert data == b"C" * 64
    assert caught is not None, "control op silently succeeded mid-split"
    assert elapsed < 3 * LEASE, "control op hung past its deadline"
    assert g2 is not None
    assert not client._fenced and client.fence_epoch == 0
    # The silent clients crossed their lease deadline but stayed merely
    # suspected: the phi threshold needs far more silence than 3 leases.
    assert sim.metrics.counter("master.suspected_clients").count >= 1
    assert sim.metrics.counter("master.lease_expiries").count == 0


def test_master_recovery_mid_partition_spares_absent_clients():
    """MasterRecover while a client is unreachable: the orphan sweep must
    defer (suspected, not ring-retired) so the healed client resumes on
    its old rings instead of greeting StaleRingError."""
    sim, pool = build_pool(num_servers=1, num_clients=2,
                           config=partition_config())
    c0 = pool.clients[0]

    def drive(sim):
        gaddr = yield from c0.gmalloc(64)
        yield from c0.gwrite(gaddr, b"E" * 64)
        yield from c0.gsync()
        start = sim.now + 1_000
        # Heal at +2 leases: inside the detector's deferred-grace window
        # (sweep decides at recovery + 2 leases), so the re-attaching
        # client must keep its rings and locks.
        inj = pool.inject_faults(FaultPlan.of(
            Partition(start_ns=start, end_ns=start + 2 * LEASE,
                      group_a=("client0",), group_b=("master",)),
            MasterCrash(at_ns=start + LEASE // 2),
            MasterRecover(at_ns=start + LEASE, rebuild=True)))
        yield sim.timeout(1_000 + 5 * LEASE)   # heal + sweep + slack
        inj.uninstall()
        yield from c0.gwrite(gaddr, b"F" * 64)  # old ring must still work
        yield from c0.gsync()
        data = yield from c0.gread(gaddr)
        return data

    (data,) = pool.run(drive(sim))
    assert data == b"F" * 64
    assert not c0._fenced


# ----------------------------------------------------------------------
# Lease lapse: probe, don't self-fence
# ----------------------------------------------------------------------
def test_backoff_outlasting_the_lease_probes_instead_of_self_fencing():
    """Regression: an op whose retry backoff outlasts the lease deadline
    must resolve the lapse with a renew probe (recoverable) rather than
    terminally self-fencing — the master never said "fenced"."""
    cfg = partition_config(retry_base_backoff_ns=150_000,
                           retry_max_backoff_ns=300_000)
    sim, pool = build_pool(num_servers=1, num_clients=1, config=cfg)
    client = pool.clients[0]

    def drive(sim):
        gaddr = yield from client.gmalloc(64)
        pool.master.crash()

        def revive(sim):
            yield sim.timeout(3 * LEASE)
            pool.master.recover()
            yield from pool.master.recovery_process(rebuild=True)

        sim.spawn(revive(sim))
        yield sim.timeout(LEASE + LEASE // 2)  # lease lapses locally
        yield from client.glock(gaddr)         # lapse -> probe -> retry -> ok
        yield from client.gwrite(gaddr, b"G" * 64)
        yield from client.gunlock(gaddr)
        data = yield from client.gread(gaddr)
        return data

    (data,) = pool.run(drive(sim))
    assert data == b"G" * 64
    assert not client._fenced
    assert client.fence_epoch == 0
    assert sim.metrics.counter("pool.lease_lapses").count >= 1


def test_lease_lapse_probe_verdicts():
    """The probe's three verdicts: a reachable master renews (same epoch),
    and only an explicit "fenced" verdict raises the terminal error."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=partition_config())
    client = pool.clients[0]
    master = pool.master

    def drive(sim):
        yield from client.gmalloc(64)
        client.lease_deadline = sim.now        # force a local lapse
        yield from client._lease_lapse_probe("glock")
        renewed = client.lease_deadline > sim.now
        yield from master._fence_and_recover("client0")
        try:
            yield from client._lease_lapse_probe("glock")
        except FencedError as exc:
            return renewed, exc
        return renewed, None

    ((renewed, exc),) = pool.run(drive(sim))
    assert renewed, "probe against a live master must renew in place"
    assert isinstance(exc, FencedError), "a fenced verdict must be terminal"
    assert client._fenced
