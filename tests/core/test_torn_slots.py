"""Torn-slot detection: the per-slot commit word.

The contract under test: with ``proxy_commit=True`` each staged write
carries a trailing commit word binding (seq, frame); the drain loop applies
a slot only when the word checks out, so a client that died mid-RDMA_WRITE
can never smear half a payload into NVM.  The fault-free path is unchanged
except for 8 bytes of slot capacity.
"""

import pytest

from repro.core.protocol import (
    PROXY_COMMIT_BYTES,
    PROXY_HEADER_BYTES,
    pack_proxy_commit,
    pack_proxy_slot,
    proxy_commit_ok,
    proxy_payload_capacity,
)
from repro.faults import ClientCrash, FaultPlan

from tests.core.conftest import build_pool, fast_config

LEASE = 100_000


def commit_config(**overrides):
    defaults = dict(proxy_commit=True, client_lease_ns=LEASE,
                    auto_reattach=True, retry_max_attempts=3)
    defaults.update(overrides)
    return fast_config(**defaults)


# ----------------------------------------------------------------------
# The commit word itself
# ----------------------------------------------------------------------
def test_commit_word_round_trip():
    frame = pack_proxy_slot(0x1000, 4, b"hello world")
    word = pack_proxy_commit(7, frame)
    assert len(word) == PROXY_COMMIT_BYTES
    assert proxy_commit_ok(word, 7, frame)


def test_commit_word_binds_the_sequence_number():
    frame = pack_proxy_slot(0x1000, 0, b"payload")
    word = pack_proxy_commit(3, frame)
    assert not proxy_commit_ok(word, 4, frame)  # a stale slot from last lap


def test_commit_word_binds_the_frame_bytes():
    frame = pack_proxy_slot(0x1000, 0, b"payload")
    word = pack_proxy_commit(3, frame)
    torn = frame[:-2] + b"\x00\x00"
    assert not proxy_commit_ok(word, 3, torn)
    assert not proxy_commit_ok(word[:4], 3, frame)  # truncated word


def test_commit_word_costs_eight_bytes_of_capacity():
    assert (proxy_payload_capacity(4096, commit=True)
            == proxy_payload_capacity(4096) - PROXY_COMMIT_BYTES)


# ----------------------------------------------------------------------
# End-to-end
# ----------------------------------------------------------------------
def test_fault_free_commit_path_drains_correctly():
    sim, pool = build_pool(num_servers=2, num_clients=2,
                           config=commit_config())
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for i in range(8):
            g = yield from client.gmalloc(512)
            yield from client.gwrite(g, bytes([i + 1]) * 512)
            addrs.append(g)
        yield from client.gsync()
        out = []
        for i, g in enumerate(addrs):
            data = yield from client.gread(g)
            out.append(data == bytes([i + 1]) * 512)
        return out

    (checks,) = pool.run(app(sim))
    assert all(checks)
    assert sum(s.torn_skipped.count for s in pool.servers.values()) == 0


def test_torn_slot_is_skipped_never_applied():
    """A client killed mid-RDMA_WRITE leaves a half-written slot; the drain
    loop must skip it (NVM keeps the last committed value) instead of
    applying the truncated frame."""
    sim, pool = build_pool(num_servers=1, num_clients=2,
                           config=commit_config())
    c0, c1 = pool.clients
    payload = bytes(range(1, 129))  # distinctive, non-zero everywhere

    def setup(sim):
        g = yield from c0.gmalloc(128)
        yield from c0.gwrite(g, payload)
        yield from c0.gsync()
        return g

    (gaddr,) = pool.run(setup(sim))
    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=sim.now + 1_000, client="client0",
                    tear_inflight=True),
    ))

    def observe(sim):
        yield sim.timeout(3 * LEASE)  # lease expiry + ring retirement too
        data = yield from c1.gread(gaddr)
        return data

    (data,) = pool.run(observe(sim))
    # The torn re-stage of the same payload was cut mid-frame; had it been
    # applied, NVM would now hold half the payload followed by zeros.
    assert data == payload
    server = pool.servers[0]
    assert server.torn_skipped.count == 1
    m = sim.metrics
    assert m.counter("faults.torn_injected").count == 1


def test_torn_writes_without_commit_word_go_undetected():
    """The negative control: with ``proxy_commit=False`` the same tear is
    applied as-is — exactly the corruption the commit word prevents."""
    sim, pool = build_pool(num_servers=1, num_clients=2,
                           config=commit_config(proxy_commit=False))
    c0, c1 = pool.clients
    payload = bytes(range(1, 129))

    def setup(sim):
        g = yield from c0.gmalloc(128)
        yield from c0.gwrite(g, payload)
        yield from c0.gsync()
        return g

    (gaddr,) = pool.run(setup(sim))
    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=sim.now + 1_000, client="client0",
                    tear_inflight=True),
    ))

    def observe(sim):
        yield sim.timeout(3 * LEASE)
        data = yield from c1.gread(gaddr)
        return data

    (data,) = pool.run(observe(sim))
    assert data != payload  # the half-written frame landed in NVM
    assert data[: len(payload) // 2] == payload[: len(payload) // 2]
    assert pool.servers[0].torn_skipped.count == 0
