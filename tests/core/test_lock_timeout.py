"""Bounded lock acquisition (``lock_acquire_timeout_ns``).

The contract: with the knob unset (0, the default) a contended acquire
spins exactly as it always has; with it set, a word held past the budget
raises a *typed* :class:`LockTimeoutError` — a clean verdict (no lock
state changed) that callers turn into policy (the txn layer consults
wait-die stamps; plain callers give up instead of convoying).  A per-call
``timeout_ns`` overrides the config either way.
"""

from repro.core.errors import LockTimeoutError
from tests.core.conftest import build_pool, fast_config

HOLD_NS = 500_000


def _alloc(pool, client):
    def setup(sim):
        return (yield from client.gmalloc(128))

    (gaddr,) = pool.run(setup(pool.sim))
    return gaddr


def _hold(client, gaddr, hold_ns=HOLD_NS):
    def holder(sim):
        yield from client.glock(gaddr)
        yield sim.timeout(hold_ns)
        yield from client.gunlock(gaddr)

    return holder


def test_config_timeout_raises_typed_error():
    sim, pool = build_pool(seed=1, num_servers=1, num_clients=2,
                           config=fast_config(lock_acquire_timeout_ns=80_000))
    c0, c1 = pool.clients
    g = _alloc(pool, c0)

    def contender(sim):
        yield sim.timeout(20_000)
        t0 = sim.now
        try:
            yield from c1.glock(g)
        except LockTimeoutError:
            return sim.now - t0
        return None

    _, waited = pool.run(_hold(c0, g)(sim), contender(sim))
    assert waited is not None and waited >= 80_000
    assert sim.metrics.counter("pool.lock_timeouts").count == 1
    # The verdict was clean: once the holder released, the word is free.
    def after(sim):
        yield from c1.glock(g)
        yield from c1.gunlock(g)
        return True

    (ok,) = pool.run(after(sim))
    assert ok


def test_default_spins_legacy_style():
    sim, pool = build_pool(seed=2, num_servers=1, num_clients=2,
                           config=fast_config())
    c0, c1 = pool.clients
    g = _alloc(pool, c0)

    def contender(sim):
        yield sim.timeout(20_000)
        yield from c1.glock(g)
        acquired_at = sim.now
        yield from c1.gunlock(g)
        return acquired_at

    _, acquired_at = pool.run(_hold(c0, g)(sim), contender(sim))
    # No typed failure, no timeout counter — it just waited the holder out.
    assert acquired_at >= HOLD_NS
    assert sim.metrics.counter("pool.lock_timeouts").count == 0


def test_per_call_override_beats_config():
    sim, pool = build_pool(seed=3, num_servers=1, num_clients=2,
                           config=fast_config())  # config knob unset
    c0, c1 = pool.clients
    g = _alloc(pool, c0)
    outcome = {}

    def contender(sim):
        yield sim.timeout(20_000)
        try:
            yield from c1.locks.acquire_write(g, timeout_ns=60_000)
        except LockTimeoutError as exc:
            outcome["err"] = str(exc)

    pool.run(_hold(c0, g)(sim), contender(sim))
    assert "acquire timeout 60000 ns" in outcome["err"]
    assert sim.metrics.counter("pool.lock_timeouts").count == 1


def test_backoff_schedule_is_deterministic_per_seed():
    def run_once():
        sim, pool = build_pool(
            seed=7, num_servers=1, num_clients=2,
            config=fast_config(lock_acquire_timeout_ns=90_000))
        c0, c1 = pool.clients
        g = _alloc(pool, c0)

        def contender(sim):
            yield sim.timeout(20_000)
            try:
                yield from c1.glock(g)
            except LockTimeoutError:
                pass
            return sim.now

        _, t = pool.run(_hold(c0, g)(sim), contender(sim))
        return t, sim.metrics.counter("pool.lock_retries").count

    assert run_once() == run_once()  # seeded jitter, not wall-clock noise
