"""Integration tests for the proxy write path."""

from tests.core.conftest import build_pool, fast_config


def test_proxy_write_faster_than_direct_nvm_write():
    """The headline claim: staging in server DRAM beats writing NVM inline."""
    size = 2048

    def measure(config):
        sim, pool = build_pool(num_servers=1, num_clients=1, config=config)
        client = pool.clients[0]

        def app(sim):
            gaddr = yield from client.gmalloc(size)
            times = []
            for i in range(30):
                t0 = sim.now
                yield from client.gwrite(gaddr, bytes([i % 256]) * size)
                times.append(sim.now - t0)
            return sum(times) / len(times)

        (avg,) = pool.run(app(sim))
        return avg

    proxy_avg = measure(fast_config(enable_cache=False, enable_proxy=True))
    direct_avg = measure(fast_config(enable_cache=False, enable_proxy=False))
    assert proxy_avg < direct_avg, (
        f"proxy writes ({proxy_avg:.0f} ns) must beat direct NVM writes "
        f"({direct_avg:.0f} ns)"
    )


def test_proxy_drain_reaches_nvm():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(256)
        yield from client.gwrite(gaddr, b"drained!" + bytes(248))
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(app(sim))
    server = pool.servers[0]
    from repro.core.addressing import offset_of

    assert server.data_device.peek(offset_of(gaddr), 8) == b"drained!"
    assert server.drained_writes.count == 1


def test_read_your_writes_before_drain():
    """A read immediately after an (unsynced) write returns the new data."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, b"fresh" + bytes(59))
        data = yield from client.gread(gaddr, length=5)  # no gsync!
        return data

    (data,) = pool.run(app(sim))
    assert data == b"fresh"
    assert pool.clients[0].m_overlay_hits.count == 1


def test_writes_drain_in_order():
    """Back-to-back proxy writes to one object apply in program order."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        for i in range(10):
            yield from client.gwrite(gaddr, bytes([i]) * 64)
        yield from client.gsync()
        data = yield from client.gread(gaddr, length=64)
        return data

    (data,) = pool.run(app(sim))
    assert data == bytes([9]) * 64  # the last write wins


def test_ring_backpressure_throttles_but_never_loses_writes():
    """More writes than ring slots: flow control kicks in, all writes land."""
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(proxy_ring_slots=4, enable_cache=False),
    )
    client = pool.clients[0]
    n = 40

    def app(sim):
        addrs = []
        for _ in range(n):
            g = yield from client.gmalloc(1024)
            addrs.append(g)
        for i, g in enumerate(addrs):
            yield from client.gwrite(g, bytes([i % 256]) * 1024)
        yield from client.gsync()
        return addrs

    (addrs,) = pool.run(app(sim))
    server = pool.servers[0]
    assert server.drained_writes.count == n
    from repro.core.addressing import offset_of

    for i, g in enumerate(addrs):
        assert server.data_device.peek(offset_of(g), 4) == bytes([i % 256]) * 4


def test_large_writes_bypass_proxy():
    """Writes bigger than a ring slot go straight to NVM."""
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(proxy_slot_size=1024),
    )
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(8192)
        yield from client.gwrite(gaddr, b"L" * 8192)  # 8 KiB > 1 KiB slots
        data = yield from client.gread(gaddr, length=4)
        return data

    (data,) = pool.run(app(sim))
    assert data == b"LLLL"
    assert pool.clients[0].m_direct_writes.count == 1
    assert pool.clients[0].m_proxy_writes.count == 0


def test_gsync_waits_for_all_pending_writes():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        # Objects on both servers, written without syncing.
        addrs = []
        for _ in range(8):
            g = yield from client.gmalloc(512)
            addrs.append(g)
            yield from client.gwrite(g, b"sync-me!" + bytes(504))
        yield from client.gsync()
        # After gsync, nothing is pending anywhere.
        for conn in client._conns.values():
            assert conn.drained_known >= conn.written
        assert not client._overlay
        return addrs

    (addrs,) = pool.run(app(sim))
    from repro.core.addressing import offset_of, server_of

    for g in addrs:
        server = pool.servers[server_of(g)]
        assert server.data_device.peek(offset_of(g), 8) == b"sync-me!"


def test_proxy_ack_latency_independent_of_nvm_speed():
    """With a much slower NVM, proxy write latency barely changes (the NVM
    cost is off the critical path), while direct writes get slower."""
    from repro.hardware.specs import SLOW_NVM, TEST_NVM

    def measure(nvm_spec, proxy):
        config = fast_config(enable_cache=False, enable_proxy=proxy,
                             proxy_ring_slots=64)
        from repro.core import GengarPool
        from repro.hardware.specs import TEST_DRAM
        from repro.sim import Simulator

        sim = Simulator(seed=3)
        pool = GengarPool.build(
            sim, num_servers=1, num_clients=1, config=config,
            dram=TEST_DRAM, nvm=nvm_spec.with_capacity(TEST_NVM.capacity_bytes),
        )
        client = pool.clients[0]

        def app(sim):
            gaddr = yield from client.gmalloc(2048)
            times = []
            for i in range(20):
                t0 = sim.now
                yield from client.gwrite(gaddr, bytes([i]) * 2048)
                times.append(sim.now - t0)
                yield sim.timeout(50_000)  # paced: ring never fills
            return sum(times) / len(times)

        (avg,) = pool.run(app(sim))
        return avg

    proxy_fast = measure(TEST_NVM, proxy=True)
    proxy_slow = measure(SLOW_NVM, proxy=True)
    direct_fast = measure(TEST_NVM, proxy=False)
    direct_slow = measure(SLOW_NVM, proxy=False)
    # Paced proxy writes barely notice NVM speed...
    proxy_delta = proxy_slow - proxy_fast
    direct_delta = direct_slow - direct_fast
    assert proxy_slow < proxy_fast * 1.25
    # ...while direct writes absorb the full extra NVM cost on their
    # critical path (at least ~3x the proxy's degradation).
    assert direct_delta > 300
    assert direct_delta > 3 * max(proxy_delta, 1)
