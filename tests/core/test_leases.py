"""Client leases and fenced lock recovery.

The contract under test: with ``client_lease_ns`` set, live clients renew
transparently (piggybacked on reports or standalone heartbeats) and notice
nothing; a client that stops heartbeating has its write locks recovered,
its pins released, and its proxy rings retired within one lease interval;
and the revived zombie is *fenced* — every lock op fails typed until it
re-attaches under a fresh epoch.  With leases off nothing changes at all.
"""

import pytest

from repro.core import FencedError, GengarConfig
from repro.core.protocol import (
    MAX_FENCE_EPOCH,
    WRITER_BIT,
    lock_epoch,
    lock_owner,
    write_lock_word,
)
from repro.faults import ClientCrash, ClientRecover, FaultPlan

from tests.core.conftest import build_pool, fast_config

LEASE = 100_000


def lease_config(**overrides):
    defaults = dict(client_lease_ns=LEASE, auto_reattach=True,
                    retry_max_attempts=3)
    defaults.update(overrides)
    return fast_config(**defaults)


# ----------------------------------------------------------------------
# Lock word epoch layout
# ----------------------------------------------------------------------
def test_lock_word_carries_owner_and_epoch():
    word = write_lock_word(7, epoch=3)
    assert word & WRITER_BIT
    assert lock_owner(word) == 7
    assert lock_epoch(word) == 3


def test_epoch_zero_word_is_bit_identical_to_legacy():
    assert write_lock_word(42) == write_lock_word(42, epoch=0)
    assert lock_epoch(write_lock_word(42)) == 0


def test_lock_word_validation():
    with pytest.raises(ValueError):
        write_lock_word(1, epoch=-1)
    with pytest.raises(ValueError):
        write_lock_word(1, epoch=MAX_FENCE_EPOCH + 1)
    assert lock_epoch(write_lock_word(1, epoch=MAX_FENCE_EPOCH)) == MAX_FENCE_EPOCH


# ----------------------------------------------------------------------
# Renewal keeps live clients alive
# ----------------------------------------------------------------------
def test_heartbeats_keep_an_idle_client_alive():
    sim, pool = build_pool(num_servers=1, num_clients=1, config=lease_config())
    client = pool.clients[0]
    assert client.lease_ns == LEASE

    def idle(sim):
        yield sim.timeout(6 * LEASE)

    pool.run(idle(sim))
    assert pool.master.lease_expiries.count == 0
    assert client.m_lease_renewals.count > 0
    assert not client.fenced


def test_reports_piggyback_renewals():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=lease_config(report_every_ops=4))
    client = pool.clients[0]

    def busy(sim):
        gaddr = yield from client.gmalloc(256)
        for _ in range(200):
            yield from client.gwrite(gaddr, b"x" * 32)
            yield sim.timeout(2_000)
        yield from client.gsync()

    pool.run(busy(sim))
    assert pool.master.lease_expiries.count == 0
    assert pool.master.lease_renewals.count > 0


def test_leases_off_means_no_heartbeat_machinery():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    assert client.lease_ns == 0
    assert client._heartbeat_proc is None
    assert pool.master.lease_renewals.count == 0


# ----------------------------------------------------------------------
# Expiry: locks recovered, pins released, rings retired, zombie fenced
# ----------------------------------------------------------------------
def _locked_victim_pool():
    """client0 takes a lock then dies; returns after its lease expired."""
    sim, pool = build_pool(num_servers=1, num_clients=2, config=lease_config())
    c0, c1 = pool.clients

    def setup(sim):
        gaddr = yield from c0.gmalloc(256)
        yield from c0.gwrite(gaddr, b"A" * 256)
        yield from c0.glock(gaddr)
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    pool.inject_faults(FaultPlan.of(ClientCrash(at_ns=sim.now + 1, client="client0")))

    def wait(sim):
        yield sim.timeout(3 * LEASE)

    pool.run(wait(sim))
    return sim, pool, gaddr


def test_dead_clients_locks_are_recovered_within_a_lease():
    sim, pool, gaddr = _locked_victim_pool()
    c1 = pool.clients[1]
    assert pool.master.lease_expiries.count == 1
    assert pool.master.lock_recoveries.total >= 1

    t0 = sim.now

    def contend(sim):
        yield from c1.glock(gaddr)
        yield from c1.gunlock(gaddr)
        return sim.now - t0

    (took,) = pool.run(contend(sim))
    assert took < LEASE  # no waiting on the dead holder


def test_dead_clients_ring_is_retired():
    sim, pool, _ = _locked_victim_pool()
    server = pool.servers[0]
    assert "client0" not in server._rings
    assert "client1" in server._rings
    assert len(server._drain_loops) == 1


def test_zombie_is_fenced_until_reattach():
    sim, pool, gaddr = _locked_victim_pool()
    c0 = pool.clients[0]
    pool.inject_faults(
        FaultPlan.of(ClientRecover(at_ns=sim.now + 1, client="client0")),
        rng_name="faults2")

    def zombie(sim):
        yield sim.timeout(10)
        with pytest.raises(FencedError):
            yield from c0.gunlock(gaddr)
        with pytest.raises(FencedError):
            yield from c0.glock(gaddr)
        old_epoch = c0.fence_epoch
        yield from c0.reattach_master()
        assert c0.fence_epoch == old_epoch + 1
        # Fully rejoined: lock/write/unlock all work under the new epoch.
        yield from c0.glock(gaddr)
        yield from c0.gwrite(gaddr, b"B" * 256)
        yield from c0.gunlock(gaddr)
        data = yield from c0.gread(gaddr)
        return data

    (data,) = pool.run(zombie(sim))
    assert data == b"B" * 256
    assert c0.m_fence_rejections.count >= 2


def test_word_level_release_fencing_protects_a_reassigned_lock():
    """A fenced release must fail typed even if the zombie's *local* lease
    state looks fresh — the word no longer carries its uid/epoch."""
    sim, pool = build_pool(num_servers=1, num_clients=2, config=lease_config())
    c0, c1 = pool.clients

    def scenario(sim):
        gaddr = yield from c0.gmalloc(128)
        yield from c0.glock(gaddr)
        # Admin eviction recovers the lock while c0's local lease is still
        # fresh (the heartbeat has not been answered "fenced" yet).
        yield from pool.master.evict_client("client0")
        with pytest.raises(FencedError):
            yield from c0.gunlock(gaddr)
        # The lock really is free: the other client takes it immediately.
        yield from c1.glock(gaddr)
        yield from c1.gunlock(gaddr)

    pool.run(scenario(sim))


def test_sweep_honors_a_lease_refreshed_mid_sweep():
    """Regression: the sweeper snapshots expired names, then yields inside
    each victim's recovery RPCs.  A client that renews or re-attaches in
    that window holds a fresh lease at the SAME epoch; processing the stale
    snapshot entry anyway would fence it and clear locks it legitimately
    holds — handing them to a second writer mid-critical-section."""
    sim, pool = build_pool(num_servers=1, num_clients=2, config=lease_config())
    c1 = pool.clients[1]
    master = pool.master

    def scenario(sim):
        gaddr = yield from c1.gmalloc(128)
        yield from c1.glock(gaddr)
        epoch = master._epochs["client1"]
        # The sweeper decided client1 was expired, but before _expire_lease
        # got to it, client1 re-attached / renewed: fresh lease, same epoch.
        master._leases["client1"] = sim.now + LEASE
        yield from master._expire_lease("client1")
        assert master._epochs["client1"] == epoch  # not fenced
        assert "client1" in master._leases  # lease intact
        # The lock is still client1's: write + release work, no FencedError.
        yield from c1.gwrite(gaddr, b"y" * 128)
        yield from c1.gunlock(gaddr)

    pool.run(scenario(sim))
    assert pool.master.lease_expiries.count == 0
    assert pool.master.lock_recoveries.total == 0


def test_zombie_data_plane_ops_are_fenced():
    """Regression: fencing must cover the data plane, not just lock ops —
    a zombie whose locks were recovered must not land one-sided RDMA
    reads/writes (or staged proxy writes) on objects a new holder owns."""
    sim, pool, gaddr = _locked_victim_pool()
    c0 = pool.clients[0]
    pool.inject_faults(
        FaultPlan.of(ClientRecover(at_ns=sim.now + 1, client="client0")),
        rng_name="faults2")

    def zombie(sim):
        yield sim.timeout(10)
        with pytest.raises(FencedError):
            yield from c0.gwrite(gaddr, b"Z" * 256)
        with pytest.raises(FencedError):
            yield from c0.gread(gaddr)
        with pytest.raises(FencedError):
            yield from c0.gsync()
        # Re-attaching under a fresh epoch restores the data plane.
        yield from c0.reattach_master()
        yield from c0.glock(gaddr)
        yield from c0.gwrite(gaddr, b"W" * 256)
        yield from c0.gunlock(gaddr)
        data = yield from c0.gread(gaddr)
        return data

    (data,) = pool.run(zombie(sim))
    assert data == b"W" * 256
    assert c0.m_fence_rejections.count >= 3


def test_lease_expiry_releases_the_dead_clients_pins():
    sim, pool = build_pool(num_servers=1, num_clients=2, config=lease_config())
    master = pool.master

    def scenario(sim):
        gaddr = yield from pool.clients[0].gmalloc(256)
        yield from master.pin(gaddr, client="client0")
        record = master.directory.get(gaddr)
        assert record.pinned and record.pinned_by == "client0"
        yield from master.evict_client("client0")
        assert not record.pinned and record.pinned_by is None

    pool.run(scenario(sim))


def test_fenced_error_is_not_retryable():
    from repro.core import ClientError, RetryableError
    assert issubclass(FencedError, ClientError)
    assert not issubclass(FencedError, RetryableError)
