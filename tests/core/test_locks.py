"""Integration tests for one-sided locks and multi-user consistency."""

from repro.core.consistency import LockError

from tests.core.conftest import build_pool, fast_config


def test_write_lock_mutual_exclusion():
    """Concurrent locked increments never lose an update."""
    sim, pool = build_pool(num_servers=1, num_clients=2)
    a, b = pool.clients
    n_each = 15

    def setup(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.gwrite(gaddr, (0).to_bytes(8, "little") + bytes(56))
        yield from a.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))

    def incrementer(sim, client):
        for _ in range(n_each):
            yield from client.glock(gaddr, write=True)
            raw = yield from client.gread(gaddr, length=8)
            value = int.from_bytes(raw, "little")
            yield from client.gwrite(gaddr, (value + 1).to_bytes(8, "little"))
            yield from client.gunlock(gaddr, write=True)

    pool.run(incrementer(sim, a), incrementer(sim, b))

    def check(sim):
        raw = yield from a.gread(gaddr, length=8)
        return int.from_bytes(raw, "little")

    (total,) = pool.run(check(sim))
    assert total == 2 * n_each, f"lost updates: {total} != {2 * n_each}"


def test_release_consistency_reader_sees_writer_data():
    """Writer updates under lock; reader locking afterwards sees the data."""
    sim, pool = build_pool(num_servers=1, num_clients=2)
    writer, reader = pool.clients

    def setup(sim):
        gaddr = yield from writer.gmalloc(128)
        yield from writer.gwrite(gaddr, b"old" + bytes(125))
        yield from writer.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    observed = []

    def writer_proc(sim):
        yield from writer.glock(gaddr, write=True)
        yield from writer.gwrite(gaddr, b"new" + bytes(125))
        # No explicit gsync: the unlock must sync (release consistency).
        yield from writer.gunlock(gaddr, write=True)

    def reader_proc(sim):
        yield sim.timeout(1_000)  # let the writer get the lock first
        yield from reader.glock(gaddr, write=False)
        data = yield from reader.gread(gaddr, length=3)
        yield from reader.gunlock(gaddr, write=False)
        observed.append(bytes(data))

    pool.run(writer_proc(sim), reader_proc(sim))
    assert observed == [b"new"]


def test_multiple_readers_share_the_lock():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    a, b = pool.clients

    def setup(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.gwrite(gaddr, bytes(64))
        yield from a.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    concurrency = {"now": 0, "peak": 0}

    def reader_proc(sim, client):
        yield from client.glock(gaddr, write=False)
        concurrency["now"] += 1
        concurrency["peak"] = max(concurrency["peak"], concurrency["now"])
        yield sim.timeout(10_000)
        concurrency["now"] -= 1
        yield from client.gunlock(gaddr, write=False)

    pool.run(reader_proc(sim, a), reader_proc(sim, b))
    assert concurrency["peak"] == 2  # both held the shared lock together


def test_writer_excludes_readers():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    w, r = pool.clients

    def setup(sim):
        gaddr = yield from w.gmalloc(64)
        yield from w.gwrite(gaddr, bytes(64))
        yield from w.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    events = []

    def writer_proc(sim):
        yield from w.glock(gaddr, write=True)
        events.append(("w-acquired", sim.now))
        yield sim.timeout(50_000)
        events.append(("w-releasing", sim.now))
        yield from w.gunlock(gaddr, write=True)

    def reader_proc(sim):
        yield sim.timeout(5_000)  # writer already holds the lock
        yield from r.glock(gaddr, write=False)
        events.append(("r-acquired", sim.now))
        yield from r.gunlock(gaddr, write=False)

    pool.run(writer_proc(sim), reader_proc(sim))
    order = [name for name, _ in sorted(events, key=lambda e: e[1])]
    assert order == ["w-acquired", "w-releasing", "r-acquired"]


def test_reader_excludes_writer():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    r, w = pool.clients

    def setup(sim):
        gaddr = yield from r.gmalloc(64)
        yield from r.gwrite(gaddr, bytes(64))
        yield from r.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    events = []

    def reader_proc(sim):
        yield from r.glock(gaddr, write=False)
        events.append(("r-acquired", sim.now))
        yield sim.timeout(50_000)
        events.append(("r-releasing", sim.now))
        yield from r.gunlock(gaddr, write=False)

    def writer_proc(sim):
        yield sim.timeout(5_000)
        yield from w.glock(gaddr, write=True)
        events.append(("w-acquired", sim.now))
        yield from w.gunlock(gaddr, write=True)

    pool.run(reader_proc(sim), writer_proc(sim))
    order = [name for name, _ in sorted(events, key=lambda e: e[1])]
    assert order == ["r-acquired", "r-releasing", "w-acquired"]


def test_unlock_without_lock_raises():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        try:
            yield from client.gunlock(gaddr, write=True)
        except LockError:
            return "ok"

    (outcome,) = pool.run(app(sim))
    assert outcome == "ok"


def test_read_unlock_without_readers_raises():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        try:
            yield from client.gunlock(gaddr, write=False)
        except LockError:
            return "ok"

    (outcome,) = pool.run(app(sim))
    assert outcome == "ok"


def test_lock_retries_are_counted():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    a, b = pool.clients

    def setup(sim):
        gaddr = yield from a.gmalloc(64)
        yield from a.gwrite(gaddr, bytes(64))
        yield from a.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))

    def holder(sim):
        yield from a.glock(gaddr, write=True)
        yield sim.timeout(100_000)
        yield from a.gunlock(gaddr, write=True)

    def contender(sim):
        yield sim.timeout(2_000)
        yield from b.glock(gaddr, write=True)
        yield from b.gunlock(gaddr, write=True)

    pool.run(holder(sim), contender(sim))
    assert sim.metrics.counter("pool.lock_retries").count > 0
    assert sim.metrics.counter("pool.lock_acquires").count == 2


def test_unsafe_release_skips_the_drain_wait():
    """With sync_on_release=False, unlocking does not wait for drains (the
    pending counter may still trail), but read-your-writes still holds."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(sync_on_release=False))
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.glock(gaddr, write=True)
        t0 = sim.now
        yield from client.gwrite(gaddr, b"fast" + bytes(1020))
        yield from client.gunlock(gaddr, write=True)
        unlock_time = sim.now - t0
        data = yield from client.gread(gaddr, length=4)  # overlay serves it
        return unlock_time, data

    (result,) = pool.run(app(sim))
    unlock_time, data = result
    assert data == b"fast"

    sim2, pool2 = build_pool(num_servers=1, num_clients=1,
                             config=fast_config(sync_on_release=True))
    client2 = pool2.clients[0]

    def app2(sim):
        gaddr = yield from client2.gmalloc(1024)
        yield from client2.glock(gaddr, write=True)
        t0 = sim.now
        yield from client2.gwrite(gaddr, b"safe" + bytes(1020))
        yield from client2.gunlock(gaddr, write=True)
        return sim.now - t0

    (safe_time,) = pool2.run(app2(sim2))
    assert unlock_time < safe_time  # the drain wait is gone
