"""Unit tests for the directory, wire protocol, config, and layout carver."""

import pytest

from repro.core.addressing import make_gaddr
from repro.core.config import (
    CACHE_ONLY,
    DRAM_ONLY,
    FULL,
    NVM_DIRECT,
    PROXY_ONLY,
    GengarConfig,
)
from repro.core.directory import Directory, DirectoryError
from repro.core.layout import DramCarver, LayoutError
from repro.core.protocol import (
    CACHE_TAG_BYTES,
    PROXY_HEADER_BYTES,
    lock_is_free,
    lock_is_write_locked,
    lock_reader_count,
    pack_cache_tag,
    pack_proxy_slot,
    proxy_payload_capacity,
    tag_matches,
    unpack_cache_tag,
    unpack_proxy_header,
)


# ---------------------------------------------------------------------------
# Directory
# ---------------------------------------------------------------------------
def test_directory_add_get_remove():
    d = Directory()
    rec = d.add(server_id=1, nvm_offset=4096, size=256, lock_idx=7)
    assert rec.gaddr == make_gaddr(1, 4096)
    assert d.get(rec.gaddr).size == 256
    assert rec.gaddr in d
    assert len(d) == 1
    removed = d.remove(rec.gaddr)
    assert removed.lock_idx == 7
    assert rec.gaddr not in d


def test_directory_duplicate_add_rejected():
    d = Directory()
    d.add(0, 0, 64, 0)
    with pytest.raises(DirectoryError):
        d.add(0, 0, 64, 1)


def test_directory_unknown_lookups():
    d = Directory()
    with pytest.raises(DirectoryError):
        d.get(123)
    with pytest.raises(DirectoryError):
        d.remove(123)
    assert d.lookup(123) is None


def test_directory_cache_state_machine():
    d = Directory()
    rec = d.add(0, 0, 512, 0)
    assert d.cached_bytes(0) == 0
    d.mark_cached(rec.gaddr, cache_offset=2048)
    assert d.get(rec.gaddr).cached
    assert d.get(rec.gaddr).cache_offset == 2048
    assert d.cached_bytes(0) == 512
    with pytest.raises(DirectoryError):
        d.mark_cached(rec.gaddr, 0)  # double promote
    d.mark_uncached(rec.gaddr)
    assert d.cached_bytes(0) == 0
    with pytest.raises(DirectoryError):
        d.mark_uncached(rec.gaddr)  # double demote


def test_directory_remove_cached_object_releases_accounting():
    d = Directory()
    rec = d.add(2, 64, 1024, 3)
    d.mark_cached(rec.gaddr, 0)
    d.remove(rec.gaddr)
    assert d.cached_bytes(2) == 0


def test_record_to_meta_roundtrip():
    d = Directory()
    rec = d.add(1, 128, 99, 5)
    meta = rec.to_meta()
    assert meta.gaddr == rec.gaddr
    assert meta.size == 99
    assert meta.server_id == 1
    assert meta.nvm_offset == 128
    assert meta.lock_idx == 5
    assert not meta.cached
    cached = meta.with_cache(True, 4096)
    assert cached.cached and cached.cache_offset == 4096
    assert cached.gaddr == meta.gaddr


# ---------------------------------------------------------------------------
# Protocol encodings
# ---------------------------------------------------------------------------
def test_proxy_slot_roundtrip():
    payload = b"payload-bytes"
    raw = pack_proxy_slot(0xABCDEF, 32, payload)
    assert len(raw) == PROXY_HEADER_BYTES + len(payload)
    gaddr, offset, length = unpack_proxy_header(raw)
    assert (gaddr, offset, length) == (0xABCDEF, 32, len(payload))
    assert raw[PROXY_HEADER_BYTES:] == payload


def test_proxy_payload_capacity():
    assert proxy_payload_capacity(4096) == 4096 - PROXY_HEADER_BYTES


def test_cache_tag_roundtrip():
    raw = pack_cache_tag(make_gaddr(1, 64))
    assert len(raw) == CACHE_TAG_BYTES
    gaddr, flags = unpack_cache_tag(raw)
    assert gaddr == make_gaddr(1, 64)
    assert flags == 1


def test_tag_matching():
    g = make_gaddr(0, 4096)
    assert tag_matches(pack_cache_tag(g), g)
    assert not tag_matches(pack_cache_tag(g), g + 64)
    assert not tag_matches(pack_cache_tag(g, flags=0), g)  # dead slot
    assert not tag_matches(bytes(16), g)  # zeroed slot


def test_lock_word_helpers():
    assert lock_is_free(0)
    assert lock_is_write_locked(1)
    assert not lock_is_write_locked(4)
    assert lock_reader_count(4) == 2
    assert lock_reader_count(5) == 2  # writer bit + 2 readers in flight


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------
def test_config_presets_encode_the_ablation_matrix():
    assert FULL.enable_cache and FULL.enable_proxy
    assert CACHE_ONLY.enable_cache and not CACHE_ONLY.enable_proxy
    assert PROXY_ONLY.enable_proxy and not PROXY_ONLY.enable_cache
    assert not NVM_DIRECT.enable_cache and not NVM_DIRECT.enable_proxy
    assert DRAM_ONLY.data_in_dram


def test_config_validation():
    with pytest.raises(ValueError):
        GengarConfig(cache_capacity=-1)
    with pytest.raises(ValueError):
        GengarConfig(proxy_ring_slots=0)
    with pytest.raises(ValueError):
        GengarConfig(proxy_slot_size=10)
    with pytest.raises(ValueError):
        GengarConfig(hotness_decay=2.0)
    with pytest.raises(ValueError):
        GengarConfig(promote_threshold=1.0, demote_threshold=2.0)
    with pytest.raises(ValueError):
        GengarConfig(report_every_ops=0)


def test_config_ablate_helper():
    cfg = FULL.ablate(proxy=False)
    assert cfg.enable_cache and not cfg.enable_proxy
    cfg = cfg.ablate(cache=False)
    assert not cfg.enable_cache and not cfg.enable_proxy
    assert cfg.ablate() == cfg


# ---------------------------------------------------------------------------
# Layout carver
# ---------------------------------------------------------------------------
class _FakeDevice:
    name = "fake"
    capacity = 4096


def test_carver_hands_out_disjoint_aligned_windows():
    carver = DramCarver(_FakeDevice(), alignment=64)
    a = carver.carve(100, "a")
    b = carver.carve(100, "b")
    assert a % 64 == 0 and b % 64 == 0
    assert b >= a + 100
    assert carver.used >= 200


def test_carver_overflow_raises():
    carver = DramCarver(_FakeDevice())
    carver.carve(4000)
    with pytest.raises(LayoutError):
        carver.carve(200)


def test_carver_rejects_bad_args():
    with pytest.raises(ValueError):
        DramCarver(_FakeDevice(), alignment=3)
    with pytest.raises(ValueError):
        DramCarver(_FakeDevice()).carve(0)
