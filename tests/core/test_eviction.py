"""Tests for owner-tagged locks and dead-client eviction."""

import pytest

from repro.core.master import MasterError
from repro.core.protocol import (
    lock_is_free,
    lock_is_write_locked,
    lock_owner,
    lock_reader_count,
    write_lock_word,
)

from tests.core.conftest import build_pool


# ---------------------------------------------------------------------------
# Lock-word layout
# ---------------------------------------------------------------------------
def test_write_lock_word_layout():
    word = write_lock_word(7)
    assert lock_is_write_locked(word)
    assert lock_owner(word) == 7
    assert lock_reader_count(word) == 0


def test_reader_increments_do_not_disturb_owner():
    word = write_lock_word(42) + 3 * 2  # three in-flight reader increments
    assert lock_owner(word) == 42
    assert lock_reader_count(word) == 3
    assert lock_is_write_locked(word)


def test_write_lock_word_validates_uid():
    with pytest.raises(ValueError):
        write_lock_word(0)
    with pytest.raises(ValueError):
        write_lock_word(1 << 32)


def test_free_word():
    assert lock_is_free(0)
    assert not lock_is_free(write_lock_word(1))


# ---------------------------------------------------------------------------
# Client uids
# ---------------------------------------------------------------------------
def test_clients_get_distinct_uids():
    sim, pool = build_pool(num_servers=1, num_clients=3)
    uids = [c.uid for c in pool.clients]
    assert len(set(uids)) == 3
    assert all(u > 0 for u in uids)


def test_lock_word_carries_holder_uid():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.glock(gaddr, write=True)
        record = pool.master.directory.get(gaddr)
        word = pool.servers[0].lock_mr.read_u64(record.lock_idx * 8)
        yield from client.gunlock(gaddr, write=True)
        after = pool.servers[0].lock_mr.read_u64(record.lock_idx * 8)
        return word, after

    (result,) = pool.run(app(sim))
    word, after = result
    assert lock_owner(word) == client.uid
    assert lock_is_write_locked(word)
    assert after == 0


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------
def test_evict_client_releases_only_its_locks():
    sim, pool = build_pool(num_servers=2, num_clients=2)
    dead, alive = pool.clients

    def setup(sim):
        abandoned = []
        for _ in range(3):
            g = yield from dead.gmalloc(64)
            yield from dead.glock(g, write=True)
            abandoned.append(g)
        held = yield from alive.gmalloc(64)
        yield from alive.glock(held, write=True)
        return abandoned, held

    (result,) = pool.run(setup(sim))
    abandoned, held = result

    def evict(sim):
        recovered = yield from pool.master.evict_client(dead.name)
        return recovered

    (recovered,) = pool.run(evict(sim))
    assert recovered == 3

    # The abandoned locks are acquirable again; the live one still held.
    for g in abandoned:
        record = pool.master.directory.get(g)
        server = pool.servers[record.server_id]
        assert server.lock_mr.read_u64(record.lock_idx * 8) == 0
    live_record = pool.master.directory.get(held)
    live_word = pool.servers[live_record.server_id].lock_mr.read_u64(
        live_record.lock_idx * 8)
    assert lock_owner(live_word) == alive.uid


def test_eviction_preserves_inflight_reader_counts():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    dead, reader = pool.clients

    def setup(sim):
        g = yield from dead.gmalloc(64)
        yield from dead.gwrite(g, bytes(64))
        yield from dead.gsync()
        yield from dead.glock(g, write=True)
        return g

    (gaddr,) = pool.run(setup(sim))
    got = []

    def blocked_reader(sim):
        yield from reader.glock(gaddr, write=False)  # spins on writer bit
        got.append(sim.now)
        yield from reader.gunlock(gaddr, write=False)

    def evictor(sim):
        yield sim.timeout(30_000)
        yield from pool.master.evict_client(dead.name)

    r = sim.spawn(blocked_reader(sim))
    e = sim.spawn(evictor(sim))
    sim.run_until_complete(sim.all_of([r, e]))
    assert got and got[0] >= 30_000  # reader proceeded only after eviction


def test_evict_unknown_client_rejected():
    sim, pool = build_pool(num_servers=1, num_clients=1)

    def app(sim):
        try:
            yield from pool.master.evict_client("ghost")
        except MasterError:
            return "rejected"

    (outcome,) = pool.run(app(sim))
    assert outcome == "rejected"


def test_evict_client_holding_nothing_is_noop():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    idle, worker = pool.clients

    def setup(sim):
        g = yield from worker.gmalloc(64)
        yield from worker.glock(g, write=True)
        return g

    (gaddr,) = pool.run(setup(sim))

    def evict(sim):
        recovered = yield from pool.master.evict_client(idle.name)
        return recovered

    (recovered,) = pool.run(evict(sim))
    assert recovered == 0
    record = pool.master.directory.get(gaddr)
    word = pool.servers[record.server_id].lock_mr.read_u64(record.lock_idx * 8)
    assert lock_owner(word) == worker.uid  # untouched
