"""Same-seed determinism: the safety net for every fast-path optimisation.

Wall-clock work (object pooling, batch dispatch, cached lookups, doorbell
batching) must never move *virtual* results: two runs with the same seed have
to produce bit-for-bit identical final virtual time, throughput, and metric
values.  If one of these tests starts failing after a perf change, that
change altered simulation semantics, not just speed.
"""

from repro.baselines.common import build_system
from repro.bench.runner import YcsbRunner
from repro.sim.kernel import Simulator
from repro.workloads.ycsb import WORKLOAD_B

from tests.core.conftest import build_pool


def _metric_fingerprint(sim):
    """Every counter total/count and histogram snapshot, by name."""
    m = sim.metrics
    fp = {}
    for name in sorted(m._counters):
        c = m._counters[name]
        fp[f"counter:{name}"] = (c.count, c.total)
    for name in sorted(m._histograms):
        fp[f"hist:{name}"] = tuple(sorted(m._histograms[name].snapshot().items()))
    return fp


def _run_ycsb(seed):
    sim = Simulator(seed=seed)
    system = build_system("gengar", sim, num_servers=2, num_clients=2)
    spec = WORKLOAD_B.scaled(record_count=96, value_size=64)
    runner = YcsbRunner(system, spec, num_workers=4, ops_per_worker=60)
    runner.load()
    result = runner.run()
    return {
        "virtual_time_ns": sim.now,
        "total_ops": result.total_ops,
        "throughput_ops_s": result.throughput_ops_s,
        "cache_hit_ratio": result.cache_hit_ratio,
        "total_dispatched": sim.total_dispatched,
        "metrics": _metric_fingerprint(sim),
    }


def test_ycsb_b_same_seed_is_bit_identical():
    first = _run_ycsb(seed=42)
    second = _run_ycsb(seed=42)
    assert first == second


def test_ycsb_b_different_seeds_diverge():
    # Sanity check that the fingerprint is actually sensitive to the seed —
    # otherwise the identity test above would be vacuous.
    assert _run_ycsb(seed=42) != _run_ycsb(seed=43)


def test_mixed_batch_workload_same_seed_is_bit_identical():
    """Determinism holds through the doorbell-batched write path too."""

    def drive():
        sim, pool = build_pool(seed=11, num_servers=2, num_clients=2)
        client = pool.clients[0]

        def app(sim):
            gaddrs = []
            for _ in range(12):
                gaddrs.append((yield from client.gmalloc(128)))
            yield from client.gwrite_batch(
                [(g, bytes([i + 1]) * 128) for i, g in enumerate(gaddrs)]
            )
            out = []
            for g in gaddrs:
                out.append((yield from client.gread(g)))
            yield from client.gsync()
            return out

        (out,) = pool.run(app(sim))
        return sim.now, sim.total_dispatched, out, _metric_fingerprint(sim)

    assert drive() == drive()
