"""Tests for batched operations, huge-object chunking, and lock recovery."""

import pytest

from repro.core import ClientError

from tests.core.conftest import build_pool, fast_config


def test_gread_many_returns_in_argument_order():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for i in range(6):
            g = yield from client.gmalloc(128)
            yield from client.gwrite(g, bytes([i]) * 128)
            addrs.append(g)
        yield from client.gsync()
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([i]) * 128 for i in range(6)]


def test_batched_reads_overlap_in_time():
    """N concurrent reads finish much faster than N sequential ones."""
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]
    n = 8

    def app(sim):
        addrs = []
        for i in range(n):
            g = yield from client.gmalloc(1024)
            yield from client.gwrite(g, bytes([i]) * 1024)
            addrs.append(g)
        yield from client.gsync()
        t0 = sim.now
        for g in addrs:
            yield from client.gread(g)
        sequential = sim.now - t0
        t0 = sim.now
        yield from client.gread_many(addrs)
        batched = sim.now - t0
        return sequential, batched

    (result,) = pool.run(app(sim))
    sequential, batched = result
    assert batched < sequential * 0.7


def test_gwrite_many_all_writes_land():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(proxy_ring_slots=4))
    client = pool.clients[0]
    n = 12  # more concurrent writes than ring slots: exercises flow control

    def app(sim):
        addrs = []
        for _ in range(n):
            addrs.append((yield from client.gmalloc(512)))
        yield from client.gwrite_many(
            [(g, bytes([i]) * 512) for i, g in enumerate(addrs)]
        )
        yield from client.gsync()
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([i]) * 512 for i in range(n)]


def test_concurrent_proxy_writes_use_distinct_ring_slots():
    """The slot-reservation fix: concurrent writers never collide."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(proxy_ring_slots=16))
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(8):
            addrs.append((yield from client.gmalloc(256)))
        yield from client.gwrite_many(
            [(g, bytes([i + 1]) * 256) for i, g in enumerate(addrs)]
        )
        yield from client.gsync()
        out = yield from client.gread_many(addrs)
        return out

    (values,) = pool.run(app(sim))
    assert values == [bytes([i + 1]) * 256 for i in range(8)]
    assert pool.servers[0].drained_writes.count == 8


def test_huge_object_read_write_chunked():
    """Objects larger than a scratch slot (256 KiB) work transparently."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    size = 600 * 1024  # 2.3 scratch slots
    payload = bytes(range(256)) * (size // 256)

    def app(sim):
        gaddr = yield from client.gmalloc(size)
        yield from client.gwrite(gaddr, payload)
        yield from client.gsync()
        data = yield from client.gread(gaddr)
        return gaddr, data

    (result,) = pool.run(app(sim))
    _gaddr, data = result
    assert data == payload


def test_force_unlock_recovers_abandoned_lock():
    sim, pool = build_pool(num_servers=1, num_clients=2)
    dead, survivor = pool.clients

    def setup(sim):
        gaddr = yield from dead.gmalloc(64)
        yield from dead.gwrite(gaddr, bytes(64))
        yield from dead.gsync()
        yield from dead.glock(gaddr, write=True)
        # ... the client "crashes" here, never releasing.
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    acquired = []

    def contender(sim):
        yield from survivor.glock(gaddr, write=True)
        acquired.append(sim.now)
        yield from survivor.gunlock(gaddr, write=True)

    def admin(sim):
        yield sim.timeout(50_000)  # operator notices the stuck lock
        prior = yield from pool.master.force_unlock(gaddr)
        return prior

    contender_proc = sim.spawn(contender(sim))
    admin_proc = sim.spawn(admin(sim))
    sim.run_until_complete(sim.all_of([contender_proc, admin_proc]))
    from repro.core.protocol import lock_is_write_locked, lock_owner

    assert lock_is_write_locked(admin_proc.value)  # abandoned writer seen
    assert lock_owner(admin_proc.value) == dead.uid  # ...attributed to it
    assert acquired and acquired[0] >= 50_000  # only after recovery


def test_force_unlock_on_free_lock_returns_zero():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        prior = yield from pool.master.force_unlock(gaddr)
        return prior

    (prior,) = pool.run(app(sim))
    assert prior == 0


def test_pin_survives_planner_epochs():
    """Pinned objects stay cached even with zero traffic (E1's guarantee)."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(256)
        yield from client.gwrite(gaddr, b"p" * 256)
        yield from client.gsync()
        yield from pool.master.pin(gaddr)
        yield sim.timeout(500_000)  # many idle epochs
        return gaddr

    (gaddr,) = pool.run(app(sim))
    assert pool.master.directory.get(gaddr).cached

    def unpin(sim):
        yield from pool.master.unpin(gaddr)

    pool.run(unpin(sim))
    assert not pool.master.directory.get(gaddr).cached


def test_batch_read_failure_propagates():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        good = yield from client.gmalloc(64)
        yield from client.gwrite(good, bytes(64))
        try:
            yield from client.gread_many([good, 0xDEAD0000])
        except Exception:
            return "failed"

    (outcome,) = pool.run(app(sim))
    assert outcome == "failed"
