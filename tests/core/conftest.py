"""Shared fixtures: small, fast Gengar deployments."""

import pytest

from repro.core import GengarConfig, GengarPool
from repro.hardware.specs import TEST_DRAM, TEST_NVM
from repro.sim import Simulator
from repro.sim.units import KIB, MIB


def fast_config(**overrides):
    """A config tuned for unit tests: short epochs, eager promotion."""
    defaults = dict(
        cache_capacity=256 * KIB,
        epoch_ns=50_000,
        report_every_ops=8,
        promote_threshold=4.0,
        demote_threshold=1.0,
        hotness_decay=0.5,
        proxy_ring_slots=8,
        proxy_slot_size=4 * KIB,
        lock_table_entries=1024,
    )
    defaults.update(overrides)
    return GengarConfig(**defaults)


def build_pool(seed=1, num_servers=2, num_clients=2, config=None, **kw):
    sim = Simulator(seed=seed)
    pool = GengarPool.build(
        sim,
        num_servers=num_servers,
        num_clients=num_clients,
        config=config or fast_config(),
        dram=TEST_DRAM,
        nvm=TEST_NVM,
        **kw,
    )
    return sim, pool


@pytest.fixture
def pool2x2():
    """Two servers, two clients, fast config."""
    return build_pool()
