"""Integration tests for hot-data identification and DRAM caching."""

from repro.core import server_of

from tests.core.conftest import build_pool, fast_config


def hammer(client, gaddr, n, length=None):
    """Read an object ``n`` times."""
    for _ in range(n):
        yield from client.gread(gaddr, length=length)


def test_hot_object_gets_promoted_to_dram():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.gwrite(gaddr, b"h" * 1024)
        yield from client.gsync()
        # Hammer it long enough to cross a few epochs.
        for _ in range(10):
            yield from hammer(client, gaddr, 20)
            yield sim.timeout(20_000)
        return gaddr

    (gaddr,) = pool.run(app(sim))
    record = pool.master.directory.get(gaddr)
    assert record.cached, "a hammered object must be promoted"
    server = pool.servers[server_of(gaddr)]
    assert gaddr in server.cached
    # The cached copy carries the data (after the tag).
    entry = server.cached[gaddr]
    raw = server.cache_mr.peek(entry.cache_offset + 16, 16)
    assert raw == b"h" * 16


def test_promoted_reads_hit_cache_and_get_faster():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        # 2 KiB: large enough that the DRAM/NVM latency gap is measurable,
        # small enough to fit a proxy slot — objects whose writes could
        # bypass the proxy ring are not promotable (drain coherence).
        gaddr = yield from client.gmalloc(2048)
        yield from client.gwrite(gaddr, b"x" * 2048)
        yield from client.gsync()

        cold = []
        for _ in range(10):
            t0 = sim.now
            yield from client.gread(gaddr)
            cold.append(sim.now - t0)

        # Cross epochs so the planner promotes and the client learns of it
        # via its piggybacked report responses.
        for _ in range(12):
            yield from hammer(client, gaddr, 10)
            yield sim.timeout(20_000)

        hot = []
        for _ in range(10):
            t0 = sim.now
            yield from client.gread(gaddr)
            hot.append(sim.now - t0)
        return sum(cold) / len(cold), sum(hot) / len(hot)

    (result,) = pool.run(app(sim))
    cold_avg, hot_avg = result
    assert hot_avg < cold_avg, (
        f"cached reads ({hot_avg:.0f} ns) must beat NVM reads ({cold_avg:.0f} ns)"
    )
    assert pool.clients[0].m_cache_hits.count > 0


def test_cold_objects_stay_in_nvm():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(10):
            g = yield from client.gmalloc(512)
            addrs.append(g)
        # Touch each object once — far below the promotion threshold.
        for g in addrs:
            yield from client.gread(g)
        yield sim.timeout(200_000)  # several epochs
        return addrs

    (addrs,) = pool.run(app(sim))
    for g in addrs:
        assert not pool.master.directory.get(g).cached


def test_cooled_object_demoted_and_slot_reusable():
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(hotness_decay=0.25, epoch_ns=30_000),
    )
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.gwrite(gaddr, b"c" * 1024)
        for _ in range(8):
            yield from hammer(client, gaddr, 15)
            yield sim.timeout(15_000)
        assert pool.master.directory.get(gaddr).cached
        # Go silent: the score decays below the demote threshold.
        yield sim.timeout(400_000)
        return gaddr

    (gaddr,) = pool.run(app(sim))
    assert not pool.master.directory.get(gaddr).cached
    server = pool.servers[0]
    assert gaddr not in server.cached
    assert server.cache_alloc.allocated_bytes == 0  # slot returned


def test_stale_client_metadata_self_heals_after_demotion():
    """A client that still believes an object is cached must detect the dead
    tag, refresh its metadata, and read NVM correctly."""
    sim, pool = build_pool(num_servers=1, num_clients=2)
    hot_client, stale_client = pool.clients

    def phase1(sim):
        gaddr = yield from hot_client.gmalloc(256)
        yield from hot_client.gwrite(gaddr, b"v1" + bytes(254))
        yield from hot_client.gsync()
        for _ in range(10):
            yield from hammer(hot_client, gaddr, 15)
            yield sim.timeout(20_000)
        # Let the stale client learn the cached location.
        for _ in range(10):
            yield from hammer(stale_client, gaddr, 15)
            yield sim.timeout(20_000)
        return gaddr

    (gaddr,) = pool.run(phase1(sim))
    assert pool.master.directory.get(gaddr).cached
    stale_meta = stale_client._meta_cache.get(gaddr)
    assert stale_meta is not None and stale_meta.cached

    # Force the demotion server-side (simulating cooling elsewhere).
    def force_demote(sim):
        handle = pool.master._servers[0]
        yield from pool.master._demote(handle, pool.master._policies[0], gaddr)

    pool.run(force_demote(sim))
    assert not pool.master.directory.get(gaddr).cached

    # The stale client still believes it's cached; the read must self-heal.
    def stale_read(sim):
        data = yield from stale_client.gread(gaddr, length=2)
        return data

    (data,) = pool.run(stale_read(sim))
    assert data == b"v1"
    assert stale_client.m_tag_misses.count >= 1


def test_cache_respects_capacity():
    """More hot bytes than cache capacity: the cache never overcommits."""
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(cache_capacity=8 * 1024,
                           promote_threshold=3.0, demote_threshold=0.5),
    )
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(8):  # 8 x 2 KiB = 16 KiB of hot data, 8 KiB cache
            g = yield from client.gmalloc(2048)
            addrs.append(g)
        for _ in range(10):
            for g in addrs:
                yield from hammer(client, g, 3)
            yield sim.timeout(20_000)
        return addrs

    pool.run(app(sim))
    server = pool.servers[0]
    assert server.cache_used_bytes <= 8 * 1024
    cached_count = sum(1 for r in pool.master.directory.objects() if r.cached)
    assert 0 < cached_count < 8


def test_promotion_preserves_latest_synced_data():
    """Writes that drained before promotion are visible in the cached copy."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(128)
        yield from client.gwrite(gaddr, b"OLD" + bytes(125))
        yield from client.gwrite(gaddr, b"NEW" + bytes(125))
        yield from client.gsync()
        for _ in range(10):
            yield from hammer(client, gaddr, 15)
            yield sim.timeout(20_000)
        data = yield from client.gread(gaddr, length=3)
        return gaddr, data

    (result,) = pool.run(app(sim))
    gaddr, data = result
    assert pool.master.directory.get(gaddr).cached
    assert data == b"NEW"


def test_writes_to_cached_object_update_cache_via_drain():
    """Proxy drains freshen the DRAM copy: later cached reads see new data."""
    sim, pool = build_pool(num_servers=1, num_clients=2)
    writer, reader = pool.clients

    def app(sim):
        gaddr = yield from writer.gmalloc(128)
        yield from writer.gwrite(gaddr, b"AAA" + bytes(125))
        yield from writer.gsync()
        # Promote via reader traffic.
        for _ in range(10):
            yield from hammer(reader, gaddr, 15)
            yield sim.timeout(20_000)
        assert pool.master.directory.get(gaddr).cached
        # Writer updates through the proxy and syncs.
        yield from writer.gwrite(gaddr, b"BBB" + bytes(125))
        yield from writer.gsync()
        data = yield from reader.gread(gaddr, length=3)
        return data

    (data,) = pool.run(app(sim))
    assert data == b"BBB"
