"""Tests for rack-local allocation placement."""

import pytest

from repro.core import GengarPool, server_of
from repro.core.allocator import ExtentAllocator, PoolAllocationPolicy
from repro.core.config import GengarConfig
from repro.hardware.specs import DEFAULT_LINK, LinkSpec, TEST_DRAM, TEST_NVM
from repro.sim import Simulator

from tests.core.conftest import fast_config


def racked_pool(placement="rack-local", seed=9):
    sim = Simulator(seed=seed)
    link = LinkSpec(bandwidth=DEFAULT_LINK.bandwidth,
                    propagation_ns=DEFAULT_LINK.propagation_ns,
                    core_bandwidth=DEFAULT_LINK.bandwidth / 4)
    pool = GengarPool.build(
        sim, num_servers=2, num_clients=2,
        config=fast_config(placement=placement),
        dram=TEST_DRAM, nvm=TEST_NVM, link=link,
        rack_plan={"server0": "r0", "server1": "r1",
                   "client0": "r0", "client1": "r1", "master": "r0"},
    )
    return sim, pool


# ---------------------------------------------------------------------------
# Policy preference mechanics
# ---------------------------------------------------------------------------
def test_choose_honours_preference():
    allocs = {i: ExtentAllocator(4096) for i in range(3)}
    policy = PoolAllocationPolicy(allocs)
    assert all(policy.choose(64, preferred=[2]) == 2 for _ in range(4))


def test_choose_falls_back_when_preferred_full():
    allocs = {0: ExtentAllocator(128), 1: ExtentAllocator(4096)}
    policy = PoolAllocationPolicy(allocs)
    allocs[0].alloc(128)  # preferred server now full
    assert policy.choose(128, preferred=[0]) == 1


def test_choose_ignores_unknown_preferred_ids():
    allocs = {0: ExtentAllocator(4096)}
    policy = PoolAllocationPolicy(allocs)
    assert policy.choose(64, preferred=[99]) == 0


# ---------------------------------------------------------------------------
# End to end
# ---------------------------------------------------------------------------
def test_rack_local_allocations_land_in_client_rack():
    sim, pool = racked_pool("rack-local")
    c0, c1 = pool.clients  # c0 in r0 (server0's rack), c1 in r1 (server1's)

    def app(sim):
        mine, theirs = [], []
        for _ in range(5):
            mine.append((yield from c0.gmalloc(256)))
            theirs.append((yield from c1.gmalloc(256)))
        return mine, theirs

    (result,) = pool.run(app(sim))
    mine, theirs = result
    assert all(server_of(g) == 0 for g in mine)  # co-racked with server0
    assert all(server_of(g) == 1 for g in theirs)


def test_round_robin_ignores_racks():
    sim, pool = racked_pool("round-robin")
    c0 = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(6):
            addrs.append((yield from c0.gmalloc(256)))
        return addrs

    (addrs,) = pool.run(app(sim))
    assert {server_of(g) for g in addrs} == {0, 1}


def test_rack_local_reduces_inter_rack_traffic():
    def traffic(placement):
        sim, pool = racked_pool(placement)
        client = pool.clients[0]

        def app(sim):
            addrs = []
            for _ in range(8):
                g = yield from client.gmalloc(1024)
                yield from client.gwrite(g, b"L" * 1024)
                addrs.append(g)
            yield from client.gsync()
            for g in addrs:
                yield from client.gread(g)

        pool.run(app(sim))
        return pool.cluster.fabric.inter_rack_messages.count

    assert traffic("rack-local") < traffic("round-robin") / 2


def test_rack_local_on_flat_fabric_degenerates_to_round_robin():
    sim = Simulator(seed=10)
    pool = GengarPool.build(
        sim, num_servers=2, num_clients=1,
        config=fast_config(placement="rack-local"),
        dram=TEST_DRAM, nvm=TEST_NVM,
    )
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(6):
            addrs.append((yield from client.gmalloc(256)))
        return addrs

    (addrs,) = pool.run(app(sim))
    assert {server_of(g) for g in addrs} == {0, 1}


def test_placement_config_validated():
    with pytest.raises(ValueError):
        GengarConfig(placement="nearest-neighbour")
