"""Hot-path read pipelining: doorbell batching, async ops, prefetch,
read combining, and the consistency contract under out-of-order completion.
"""

import pytest

from repro.core import BatchError, FatalError
from repro.core.hotness import AccessPredictor

from tests.core.conftest import build_pool, fast_config


def _load_objects(client, count, size=128):
    """Process helper: allocate + write ``count`` objects, gsync, return
    their addresses (payload byte i repeated)."""
    addrs = []
    for i in range(count):
        g = yield from client.gmalloc(size)
        yield from client.gwrite(g, bytes([i % 251]) * size)
        addrs.append(g)
    yield from client.gsync()
    return addrs


# ----------------------------------------------------------------------
# Doorbell batching (the gread_many docstring is now the truth)
# ----------------------------------------------------------------------
def test_gread_many_one_doorbell_per_server():
    """A batch of reads rings exactly one post_send_many doorbell per home
    server — the regression guard for the old one-spawn-per-read shape."""
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]
    calls = []  # (server_id, batch_size)

    def app(sim):
        addrs = yield from _load_objects(client, 8)
        for sid, conn in client._conns.items():
            orig = conn.data_qp.post_send_many

            def counted(wrs, _orig=orig, _sid=sid):
                calls.append((_sid, len(wrs)))
                return _orig(wrs)

            conn.data_qp.post_send_many = counted
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([i % 251]) * 128 for i in range(8)]
    # Every involved server got exactly one doorbell covering its whole
    # share of the batch.
    servers_hit = {sid for sid, _n in calls}
    assert len(calls) == len(servers_hit)
    assert sum(n for _sid, n in calls) == 8


def test_gread_many_larger_than_scratch_pool_completes():
    """More reads than scratch slots must pipeline (recycling completed
    reads' slots), not wedge."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 24)  # > 16 scratch slots
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([i % 251]) * 128 for i in range(24)]


def test_gread_many_observes_overlay_and_partial_overlap():
    """Read-your-writes through the batch path: full-cover overlay entries
    are served locally; a partial overlap falls back (gsync-then-read)."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 3, size=128)
        # Full-object overwrite (staged, not yet drained) on addr 0 and a
        # partial overwrite on addr 1.
        yield from client.gwrite(addrs[0], b"\xaa" * 128)
        yield from client.gwrite(addrs[1], b"\xbb" * 64, offset=32)
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values[0] == b"\xaa" * 128
    assert values[1] == (bytes([1]) * 32 + b"\xbb" * 64 + bytes([1]) * 32)
    assert values[2] == bytes([2]) * 128


# ----------------------------------------------------------------------
# gwrite_many aggregate error contract
# ----------------------------------------------------------------------
def test_gwrite_many_success_path():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 4)
        yield from client.gwrite_many(
            [(g, bytes([0x40 + i]) * 128) for i, g in enumerate(addrs)])
        yield from client.gsync()
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([0x40 + i]) * 128 for i in range(4)]


def test_gwrite_many_collects_failures_with_indices():
    """Failures no longer mask siblings: every item is attempted, and the
    BatchError names exactly the failed indices (argument order)."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 4, size=128)
        writes = [
            (addrs[0], b"\x01" * 128),
            (addrs[1], b"\x02" * 256),   # out of bounds -> FatalError
            (addrs[2], b"\x03" * 128),
            (addrs[3], b"\x04" * 999),   # out of bounds -> FatalError
        ]
        try:
            yield from client.gwrite_many(writes)
        except BatchError as exc:
            err = exc
        else:
            err = None
        yield from client.gsync()
        good = yield from client.gread_many([addrs[0], addrs[2]])
        return err, good

    ((err, good),) = pool.run(app(sim))
    assert err is not None
    assert [idx for idx, _e in err.failures] == [1, 3]
    assert all(isinstance(e, FatalError) for _i, e in err.failures)
    assert "2 of the batch's items failed" in str(err)
    # The non-failing writes landed despite their failed siblings.
    assert good == [b"\x01" * 128, b"\x03" * 128]


# ----------------------------------------------------------------------
# Async ops + the outstanding-op window
# ----------------------------------------------------------------------
def test_async_window_bounds_concurrency():
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(max_outstanding_reads=2))
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 8)
        futs = [client.gread_async(g) for g in addrs]
        values = []
        for fut in futs:
            v = yield from fut.wait()
            values.append(v)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([i % 251]) * 128 for i in range(8)]
    assert 1 <= client._async_peak <= 2


def test_async_futures_poll_and_result():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        (g,) = yield from _load_objects(client, 1)
        fut = client.gwrite_async(g, b"\x77" * 128)
        with pytest.raises(FatalError):
            fut.result()  # not done yet
        yield from fut.wait()
        assert fut.done and fut.result() is None
        rfut = client.gread_async(g)
        data = yield from rfut.wait()
        assert rfut.done
        return data

    (data,) = pool.run(app(sim))
    assert data == b"\x77" * 128


def test_async_completions_respect_gsync_consistency():
    """The ordering contract under out-of-order completion: once async
    writes are acknowledged (futures done) and gsync'd, a lock-protected
    read — from a *different* client — observes every one of them."""
    sim, pool = build_pool(num_servers=2, num_clients=2)
    writer, reader = pool.clients

    def wapp(sim, addrs):
        futs = [client_fut for client_fut in
                (writer.gwrite_async(g, bytes([0x90 + i]) * 128)
                 for i, g in enumerate(addrs))]
        for fut in futs:
            yield from fut.wait()  # acknowledged
        yield from writer.gsync()  # drained to the servers

    def rapp(sim, addrs):
        values = []
        for g in addrs:
            yield from reader.glock(g, write=False)
            try:
                v = yield from reader.gread(g)
            finally:
                yield from reader.gunlock(g, write=False)
            values.append(v)
        return values

    def setup(sim):
        addrs = yield from _load_objects(writer, 6)
        return addrs

    (addrs,) = pool.run(setup(sim))
    pool.run(wapp(sim, addrs))
    (values,) = pool.run(rapp(sim, addrs))
    assert values == [bytes([0x90 + i]) * 128 for i in range(6)]


# ----------------------------------------------------------------------
# Hotness-driven prefetch
# ----------------------------------------------------------------------
def _prefetch_config(**overrides):
    """Prefetch-focused config: the epoch planner is pushed far out so any
    promotion we observe came from the prefetch fast path."""
    defaults = dict(epoch_ns=10_000_000_000, report_every_ops=10_000,
                    admission_threshold=2, prefetch_depth=4)
    defaults.update(overrides)
    return fast_config(**defaults)


def test_prefetch_promotes_after_admission_threshold():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=_prefetch_config())
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 4)
        hot = addrs[0]
        yield from client.gread(hot)  # touch 1: below threshold
        yield from client.gread(hot)  # touch 2: nominates
        yield sim.timeout(1_000_000)  # let the background pump land
        hits_before = client.m_cache_hits.count
        data = yield from client.gread(hot)  # now a DRAM cache hit
        return data, client.m_cache_hits.count - hits_before

    ((data, hit_delta),) = pool.run(app(sim))
    assert data == bytes([0]) * 128
    assert hit_delta == 1
    assert sim.metrics.counter("master.prefetch_promotions").count >= 1


def test_admission_filter_skips_one_touch_objects():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=_prefetch_config())
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 8)
        for g in addrs:  # every object touched exactly once
            yield from client.gread(g)
        yield sim.timeout(1_000_000)

    pool.run(app(sim))
    assert sim.metrics.counter("master.prefetch_requests").count == 0
    assert sim.metrics.counter("pool.prefetches").count == 0


def test_prefetch_disabled_by_zero_depth():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=_prefetch_config(prefetch_depth=0))
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 2)
        for _ in range(5):
            yield from client.gread(addrs[0])
        yield sim.timeout(1_000_000)

    pool.run(app(sim))
    assert client._predictor is None
    assert sim.metrics.counter("master.prefetch_requests").count == 0


def test_prefetch_in_flight_survives_server_crash():
    """A server crash with a prefetch promotion in flight must neither
    wedge the client pipeline nor corrupt the cache: the request is
    dropped on the floor and post-revive reads return correct data."""
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=_prefetch_config(retry_max_attempts=8, auto_reattach=True,
                                degraded_mode=True))
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 4)
        hot = addrs[1]
        yield from client.gread(hot)
        yield from client.gread(hot)  # nominates; pump now racing the crash
        pool.servers[0].crash()
        yield sim.timeout(2_000_000)
        pool.servers[0].recover()
        pool.master.on_server_recovered(0)
        yield sim.timeout(1_000_000)
        data = yield from client.gread(hot)  # retries + reattaches
        return data

    (data,) = pool.run(app(sim))
    assert data == bytes([1]) * 128


# ----------------------------------------------------------------------
# Server-side read combining
# ----------------------------------------------------------------------
def test_adjacent_reads_combine_into_one_device_transfer():
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(prefetch_depth=0))
    client = pool.clients[0]
    node_name = pool.servers[0].node.name

    def app(sim):
        # Consecutive equal-size allocations are NVM-adjacent.
        addrs = yield from _load_objects(client, 4)
        values = yield from client.gread_many(addrs)
        return values

    (values,) = pool.run(app(sim))
    assert values == [bytes([i % 251]) * 128 for i in range(4)]
    transfers = sim.metrics.counter(f"{node_name}.combine.transfers").count
    members = sim.metrics.counter(f"{node_name}.combine.members").total
    assert transfers >= 1
    assert members >= 4  # all four rode combined transfers
    assert members > transfers  # genuinely coalesced, not 1:1


def test_combining_beats_uncombined_adjacent_reads():
    """The Optane per-transfer setup charge is paid once per combined
    group, so a batched read of adjacent objects is cheaper in virtual
    time than the same reads issued serially."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(prefetch_depth=0))
    client = pool.clients[0]

    def app(sim):
        addrs = yield from _load_objects(client, 8)
        t0 = sim.now
        for g in addrs:
            yield from client.gread(g)
        serial = sim.now - t0
        t0 = sim.now
        yield from client.gread_many(addrs)
        batched = sim.now - t0
        return serial, batched

    ((serial, batched),) = pool.run(app(sim))
    assert batched < serial * 0.6


# ----------------------------------------------------------------------
# AccessPredictor unit behaviour
# ----------------------------------------------------------------------
def test_predictor_detects_stride():
    p = AccessPredictor(depth=4)
    for addr in (1000, 1128, 1256):  # two consecutive +128 deltas confirm
        p.observe(addr)
    preds = p.predict()
    assert preds[0] == 1384
    assert preds[:2] == [1384, 1512]


def test_predictor_frequency_ranking():
    p = AccessPredictor(depth=3)
    # Alternating pattern: no two consecutive equal deltas, so no stride
    # is confirmed and predictions come from the frequency table.
    for addr in (7000, 8000, 7000, 8000, 7000, 9000):
        p.observe(addr)
    preds = p.predict()
    # Hottest first, excluding the just-accessed address (9000).
    assert preds[0] == 7000
    assert 8000 in preds
    assert 9000 not in preds


def test_predictor_decay_prunes_cold_entries():
    p = AccessPredictor(depth=4, table_size=8, decay=0.5)
    p.observe(1)  # one touch, then a long hot stream elsewhere
    for i in range(200):
        p.observe(5000 + (i % 16) * 64)
    assert len(p._counts) <= 2 * 8 + 1  # bounded, cold key pruned

    p2 = AccessPredictor(depth=2)
    with pytest.raises(ValueError):
        AccessPredictor(depth=0)
    assert p2.predict() == []
