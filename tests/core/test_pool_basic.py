"""Integration tests: pool boot, allocation, reads/writes, errors."""

import pytest

from repro.core import ClientError, GengarPool, server_of
from repro.core.config import NVM_DIRECT
from repro.rdma.rpc import RpcError

from tests.core.conftest import build_pool, fast_config


def test_boot_attaches_all_clients(pool2x2):
    sim, pool = pool2x2
    assert len(pool.clients) == 2
    assert all(c._attached for c in pool.clients)
    assert len(pool.servers) == 2
    assert sim.now > 0  # the handshake took virtual time


def test_gmalloc_gives_distinct_addresses(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        addrs = []
        for _ in range(8):
            addrs.append((yield from client.gmalloc(1024)))
        return addrs

    (addrs,) = pool.run(app(sim))
    assert len(set(addrs)) == 8
    # Round-robin placement spreads objects across both servers.
    assert {server_of(g) for g in addrs} == {0, 1}


def test_write_then_read_roundtrip(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]
    payload = bytes(range(256)) * 8  # 2 KiB

    def app(sim):
        gaddr = yield from client.gmalloc(len(payload))
        yield from client.gwrite(gaddr, payload)
        data = yield from client.gread(gaddr)
        return data

    (data,) = pool.run(app(sim))
    assert data == payload


def test_read_after_sync_comes_from_nvm(pool2x2):
    """After gsync, the data is durable in NVM and readable remotely."""
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(512)
        yield from client.gwrite(gaddr, b"durable" + bytes(505))
        yield from client.gsync()
        data = yield from client.gread(gaddr, length=7)
        return gaddr, data

    (result,) = pool.run(app(sim))
    gaddr, data = result
    assert data == b"durable"
    # Verify directly against the home server's NVM device.
    server = pool.server_for(gaddr)
    from repro.core.addressing import offset_of

    assert server.data_device.peek(offset_of(gaddr), 7) == b"durable"


def test_partial_reads_and_writes(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.gwrite(gaddr, b"A" * 1024)
        yield from client.gwrite(gaddr, b"BBBB", offset=100)
        yield from client.gsync()
        chunk = yield from client.gread(gaddr, offset=98, length=8)
        return chunk

    (chunk,) = pool.run(app(sim))
    assert chunk == b"AABBBBAA"


def test_cross_client_visibility_after_sync(pool2x2):
    """A second client sees data the first wrote and synced."""
    sim, pool = pool2x2
    writer, reader = pool.clients

    def writer_app(sim):
        gaddr = yield from writer.gmalloc(128)
        yield from writer.gwrite(gaddr, b"shared-data" + bytes(117))
        yield from writer.gsync()
        return gaddr

    (gaddr,) = pool.run(writer_app(sim))

    def reader_app(sim):
        data = yield from reader.gread(gaddr, length=11)
        return data

    (data,) = pool.run(reader_app(sim))
    assert data == b"shared-data"


def test_gfree_releases_space():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    master = pool.master

    def app(sim):
        gaddr = yield from client.gmalloc(4096)
        before = len(master.directory)
        yield from client.gfree(gaddr)
        return gaddr, before

    (result,) = pool.run(app(sim))
    gaddr, before = result
    assert before == 1
    assert len(master.directory) == 0
    assert gaddr not in master.directory


def test_read_of_freed_object_fails(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(128)
        yield from client.gfree(gaddr)
        try:
            yield from client.gread(gaddr)
        except RpcError:
            return "lookup-failed"

    (outcome,) = pool.run(app(sim))
    assert outcome == "lookup-failed"


def test_out_of_bounds_access_rejected(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(128)
        try:
            yield from client.gread(gaddr, offset=100, length=64)
        except ClientError:
            pass
        else:
            return "read should have failed"
        try:
            yield from client.gwrite(gaddr, b"x" * 200)
        except ClientError:
            return "ok"
        return "write should have failed"

    (outcome,) = pool.run(app(sim))
    assert outcome == "ok"


def test_empty_write_rejected(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        try:
            yield from client.gwrite(gaddr, b"")
        except ClientError:
            return "ok"

    (outcome,) = pool.run(app(sim))
    assert outcome == "ok"


def test_unattached_client_rejected():
    sim, pool = build_pool()
    from repro.core.client import GengarClient

    lone = GengarClient(pool.cluster.node("client0"), name="lone")
    with pytest.raises(ClientError):
        next(lone.gread(0))


def test_deterministic_across_runs():
    """Same seed, same workload -> identical virtual-time trace."""

    def run_once():
        sim, pool = build_pool(seed=7)
        client = pool.clients[0]

        def app(sim):
            stamps = []
            gaddr = yield from client.gmalloc(1024)
            for i in range(10):
                yield from client.gwrite(gaddr, bytes([i]) * 100)
                yield from client.gread(gaddr, length=100)
                stamps.append(sim.now)
            return stamps

        (stamps,) = pool.run(app(sim))
        return stamps

    assert run_once() == run_once()


def test_nvm_direct_config_never_uses_cache_or_proxy():
    sim, pool = build_pool(config=fast_config(enable_cache=False, enable_proxy=False))
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        for _ in range(20):
            yield from client.gwrite(gaddr, b"z" * 1024)
            yield from client.gread(gaddr)

    pool.run(app(sim))
    snap = pool.metrics_snapshot()
    assert snap["proxy_writes"] == 0
    assert snap["direct_writes"] == 20
    assert snap["cache_hits"] == 0


def test_metrics_snapshot_counts(pool2x2):
    sim, pool = pool2x2
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(256)
        yield from client.gwrite(gaddr, b"m" * 256)
        yield from client.gread(gaddr)

    pool.run(app(sim))
    snap = pool.metrics_snapshot()
    assert snap["reads"] == 1
    assert snap["writes"] == 1
    assert snap["read_latency_mean_ns"] > 0
    assert snap["write_latency_mean_ns"] > 0
