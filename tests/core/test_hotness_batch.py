"""record() vs record_batch() equivalence for every placement policy.

The master flushes each epoch report through ``record_batch`` (one call per
server) instead of one ``record`` per object.  Batching is purely a
wall-clock optimisation: for every policy the batched fold must leave the
policy in exactly the state the per-entry calls would, so promotion and
demotion decisions cannot change.
"""

import random

from repro.core.hotness import (
    EpochDecayPolicy,
    LfuPolicy,
    LruPolicy,
    NeverCachePolicy,
    RandomPolicy,
)

ENTRIES = [
    (1, 5, 0),
    (2, 0, 3),
    (3, 2, 2),
    (1, 4, 1),   # repeat gaddr: batches must accumulate, not overwrite
    (99, 7, 7),  # untracked gaddr: both paths must ignore it
    (4, 1, 0),
]


def _seed_tracked(policy):
    for g in (1, 2, 3, 4):
        policy.track(g, 256)


def _pair(factory):
    """Two identically-configured policies tracking the same objects."""
    a, b = factory(), factory()
    _seed_tracked(a)
    _seed_tracked(b)
    return a, b


def _plans(policy, rounds=4, capacity=768, used=0):
    """Drive several epochs so decay/eviction behaviour is exercised too."""
    out = []
    for _ in range(rounds):
        plan = policy.plan(capacity=capacity, used=used)
        for g in plan.promotions:
            policy.on_promoted(g)
        for g in plan.demotions:
            policy.on_demoted(g)
        used += sum(256 for _ in plan.promotions)
        used -= sum(256 for _ in plan.demotions)
        out.append((plan.promotions, plan.demotions))
    return out


def _assert_equivalent(factory):
    seq, batched = _pair(factory)
    for entry in ENTRIES:
        seq.record(*entry)
    batched.record_batch(ENTRIES)
    assert _plans(seq) == _plans(batched)


def test_epoch_decay_batch_matches_sequential():
    _assert_equivalent(
        lambda: EpochDecayPolicy(decay=0.5, promote_threshold=4.0,
                                 demote_threshold=1.0)
    )


def test_epoch_decay_batch_accumulates_stats():
    policy = EpochDecayPolicy(decay=0.5, promote_threshold=4.0,
                              demote_threshold=1.0)
    _seed_tracked(policy)
    policy.record_batch(ENTRIES)
    policy.plan(capacity=0, used=0)  # folds epoch counts into stats
    stats = policy.stats_for(1)
    assert stats.reads == 9 and stats.writes == 1  # 5+4 reads, 0+1 writes


def test_lru_batch_matches_sequential():
    _assert_equivalent(LruPolicy)


def test_lru_batch_clock_orders_like_sequential():
    # The victim choice depends on the per-entry clock: the last-touched
    # object in the batch must be the most recent, exactly as sequentially.
    seq, batched = _pair(LruPolicy)
    order = [(1, 1, 0), (2, 1, 0), (3, 1, 0), (4, 1, 0), (1, 1, 0)]
    for entry in order:
        seq.record(*entry)
    batched.record_batch(order)
    assert seq._last_touch == batched._last_touch


def test_lfu_batch_matches_sequential():
    _assert_equivalent(lambda: LfuPolicy(promote_threshold=2))


def test_random_batch_matches_sequential():
    # record() never consumes randomness, so seeding both policies alike
    # keeps their plan() draws aligned.
    _assert_equivalent(lambda: RandomPolicy(random.Random(7), churn=2))


def test_never_cache_batch_is_inert():
    _assert_equivalent(NeverCachePolicy)


def test_batch_ignores_untracked_entries():
    for factory in (
        lambda: EpochDecayPolicy(decay=0.5, promote_threshold=4.0,
                                 demote_threshold=1.0),
        LruPolicy,
        lambda: LfuPolicy(promote_threshold=2),
        lambda: RandomPolicy(random.Random(3), churn=2),
        NeverCachePolicy,
    ):
        policy = factory()
        policy.record_batch([(12345, 10, 10)])  # nothing tracked: no effect
        assert policy.plan(capacity=4096, used=0).is_noop


def test_empty_batch_is_noop():
    policy = EpochDecayPolicy(decay=0.5, promote_threshold=4.0,
                              demote_threshold=1.0)
    _seed_tracked(policy)
    policy.record_batch([])
    assert policy.plan(capacity=4096, used=0).is_noop
