"""Concurrency fuzzing: multiple clients under locks vs a serial oracle.

Each shared object holds a 64-bit sequence-stamped record.  Clients run a
random mix of locked read-modify-writes and shared-lock reads.  Invariants:

* every locked RMW's effect survives (no lost updates),
* every shared-lock read observes a *prefix-consistent* value (a counter
  value some writer actually produced, never a torn or stale-beyond-lock
  value),
* the final counter equals the exact number of RMWs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.conftest import build_pool


def _run_concurrent(seed, schedules, num_objects=3):
    """schedules: per-client list of (op, obj) with op in {rmw, read}."""
    sim, pool = build_pool(seed=seed, num_servers=1,
                           num_clients=max(2, len(schedules)))
    clients = pool.clients
    rmw_counts = {i: 0 for i in range(num_objects)}
    for schedule in schedules:
        for op, obj in schedule:
            if op == "rmw":
                rmw_counts[obj % num_objects] += 1

    def setup(sim):
        addrs = []
        for _ in range(num_objects):
            g = yield from clients[0].gmalloc(64)
            yield from clients[0].gwrite(g, bytes(64))
            addrs.append(g)
        yield from clients[0].gsync()
        return addrs

    (addrs,) = pool.run(setup(sim))
    observed = []

    def worker(idx, schedule):
        client = clients[idx % len(clients)]
        for op, obj in schedule:
            gaddr = addrs[obj % num_objects]
            if op == "rmw":
                yield from client.glock(gaddr, write=True)
                raw = yield from client.gread(gaddr, length=8)
                value = int.from_bytes(raw, "little")
                yield from client.gwrite(gaddr, (value + 1).to_bytes(8, "little"))
                yield from client.gunlock(gaddr, write=True)
            else:
                yield from client.glock(gaddr, write=False)
                raw = yield from client.gread(gaddr, length=8)
                yield from client.gunlock(gaddr, write=False)
                observed.append((obj % num_objects,
                                 int.from_bytes(raw, "little")))

    pool.run(*[worker(i, s) for i, s in enumerate(schedules)])

    def final(sim):
        values = []
        for gaddr in addrs:
            raw = yield from clients[0].gread(gaddr, length=8)
            values.append(int.from_bytes(raw, "little"))
        return values

    (finals,) = pool.run(final(sim))
    return rmw_counts, observed, finals


_op = st.tuples(st.sampled_from(["rmw", "read"]), st.integers(0, 2))


@given(
    schedules=st.lists(st.lists(_op, min_size=1, max_size=8),
                       min_size=2, max_size=4),
    seed=st.integers(0, 30),
)
@settings(max_examples=12, deadline=None)
def test_locked_counters_never_lose_updates(schedules, seed):
    rmw_counts, observed, finals = _run_concurrent(seed, schedules)
    for obj, final in enumerate(finals):
        assert final == rmw_counts[obj], (
            f"object {obj}: {final} != {rmw_counts[obj]} RMWs"
        )
    # Reads under the shared lock observe only values a writer produced.
    for obj, value in observed:
        assert 0 <= value <= rmw_counts[obj]


def test_heavy_contention_single_object():
    """Worst case: everyone hammers one object."""
    schedules = [[("rmw", 0)] * 10 for _ in range(4)]
    rmw_counts, _observed, finals = _run_concurrent(3, schedules, num_objects=1)
    assert finals[0] == 40


def test_fresh_allocations_read_as_zeros_even_after_reuse():
    """Explicit calloc-semantics check (found originally by the fuzzer)."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        first = yield from client.gmalloc(1024)
        yield from client.gwrite(first, b"\xff" * 1024)
        yield from client.gsync()
        yield from client.gfree(first)
        second = yield from client.gmalloc(1024)
        data = yield from client.gread(second)
        return first, second, data

    (result,) = pool.run(app(sim))
    first, second, data = result
    assert first == second  # the extent was actually reused
    assert data == bytes(1024)  # ...and reads as fresh zeros
