"""gwrite_batch: the doorbell-batched proxy write path."""

from repro.core.addressing import offset_of

from tests.core.conftest import build_pool, fast_config


def test_gwrite_batch_writes_land_after_sync():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddrs = []
        for _ in range(6):
            gaddrs.append((yield from client.gmalloc(64)))
        yield from client.gwrite_batch(
            [(g, bytes([i + 1]) * 64) for i, g in enumerate(gaddrs)]
        )
        yield from client.gsync()
        return gaddrs

    (gaddrs,) = pool.run(app(sim))
    server = pool.servers[0]
    for i, g in enumerate(gaddrs):
        assert server.data_device.peek(offset_of(g), 64) == bytes([i + 1]) * 64
    assert client.m_proxy_writes.total == 6 * 64


def test_gwrite_batch_read_your_writes_before_drain():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        g1 = yield from client.gmalloc(32)
        g2 = yield from client.gmalloc(32)
        yield from client.gwrite_batch([(g1, b"a" * 32), (g2, b"b" * 32)])
        d1 = yield from client.gread(g1)  # no gsync!
        d2 = yield from client.gread(g2)
        return d1, d2

    ((d1, d2),) = pool.run(app(sim))
    assert d1 == b"a" * 32
    assert d2 == b"b" * 32
    assert client.m_overlay_hits.count == 2


def test_gwrite_batch_larger_than_ring_chunks():
    """A batch exceeding the ring size drains in chunks, never deadlocks."""
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(proxy_ring_slots=4),
    )
    client = pool.clients[0]
    n = 11  # nearly 3x the ring

    def app(sim):
        gaddrs = []
        for _ in range(n):
            gaddrs.append((yield from client.gmalloc(16)))
        yield from client.gwrite_batch(
            [(g, bytes([i + 1]) * 16) for i, g in enumerate(gaddrs)]
        )
        yield from client.gsync()
        return gaddrs

    (gaddrs,) = pool.run(app(sim))
    server = pool.servers[0]
    for i, g in enumerate(gaddrs):
        assert server.data_device.peek(offset_of(g), 16) == bytes([i + 1]) * 16


def test_gwrite_batch_spans_servers():
    sim, pool = build_pool(num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddrs = []
        for _ in range(8):  # round-robin-ish allocation across two servers
            gaddrs.append((yield from client.gmalloc(48)))
        yield from client.gwrite_batch(
            [(g, bytes([i + 1]) * 48) for i, g in enumerate(gaddrs)]
        )
        yield from client.gsync()
        out = []
        for g in gaddrs:
            out.append((yield from client.gread(g)))
        return gaddrs, out

    ((gaddrs, out),) = pool.run(app(sim))
    servers = {g >> 48 for g in gaddrs}  # upper bits embed the server id
    for i, data in enumerate(out):
        assert data == bytes([i + 1]) * 48


def test_gwrite_batch_falls_back_for_large_payloads():
    """Payloads too big for a ring slot take the direct-write fallback."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    big = 64 * 1024  # far beyond the 4 KiB test ring slot

    def app(sim):
        small = yield from client.gmalloc(64)
        large = yield from client.gmalloc(big)
        yield from client.gwrite_batch(
            [(small, b"s" * 64), (large, b"L" * big)]
        )
        yield from client.gsync()
        ds = yield from client.gread(small)
        dl = yield from client.gread(large, length=16)
        return ds, dl

    ((ds, dl),) = pool.run(app(sim))
    assert ds == b"s" * 64
    assert dl == b"L" * 16
    assert client.m_direct_writes.total == big


def test_gwrite_batch_without_proxy_uses_direct_path():
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(enable_proxy=False),
    )
    client = pool.clients[0]

    def app(sim):
        g = yield from client.gmalloc(64)
        yield from client.gwrite_batch([(g, b"x" * 64)])
        data = yield from client.gread(g)
        return data

    (data,) = pool.run(app(sim))
    assert data == b"x" * 64
    assert client.m_proxy_writes.total == 0
    assert client.m_direct_writes.total == 64
