"""Tests for the memory device model: timing, contention, data integrity."""

import pytest

from repro.hardware.memory import MemoryAccessError, MemoryDevice, SparseBuffer
from repro.hardware.specs import MemorySpec
from repro.sim import Simulator


def tiny_spec(**overrides):
    base = dict(
        name="test",
        kind="dram",
        capacity_bytes=1 << 20,
        read_latency_ns=100,
        write_latency_ns=100,
        read_bw=1.0,  # 1 B/ns aggregate
        write_bw=1.0,
        channels=1,
    )
    base.update(overrides)
    return MemorySpec(**base)


def run_proc(sim, gen):
    p = sim.spawn(gen)
    sim.run()
    assert p.ok, p.exception
    return p.value


# ---------------------------------------------------------------------------
# SparseBuffer
# ---------------------------------------------------------------------------
def test_sparse_buffer_roundtrip():
    buf = SparseBuffer(1 << 30)
    buf.write(12345, b"hello world")
    assert buf.read(12345, 11) == b"hello world"


def test_sparse_buffer_unwritten_reads_zero():
    buf = SparseBuffer(1 << 30)
    assert buf.read(999_999, 8) == b"\x00" * 8


def test_sparse_buffer_cross_page_write():
    buf = SparseBuffer(1 << 30)
    page = SparseBuffer.PAGE_SIZE
    payload = bytes(range(256)) * 2
    buf.write(page - 100, payload)
    assert buf.read(page - 100, len(payload)) == payload


def test_sparse_buffer_lazy_allocation():
    buf = SparseBuffer(128 << 30)  # 128 GiB logical
    assert buf.resident_bytes == 0
    buf.write(0, b"x")
    assert buf.resident_bytes == SparseBuffer.PAGE_SIZE


# ---------------------------------------------------------------------------
# MemoryDevice timing
# ---------------------------------------------------------------------------
def test_read_service_time_is_latency_plus_transfer():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec())
    # 100 ns latency + 1000 B at 1 B/ns = 1100 ns
    assert dev.read_service_time(1000) == 1100
    assert dev.write_service_time(1000) == 1100


def test_asymmetric_bandwidth_shows_in_service_time():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec(kind="nvm", read_bw=2.0, write_bw=0.5))
    assert dev.read_service_time(1000) == 100 + 500
    assert dev.write_service_time(1000) == 100 + 2000


def test_timed_read_returns_data_and_advances_clock():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec())
    dev.poke(64, b"payload!")

    def proc(sim):
        data = yield from dev.read(64, 8)
        return data, sim.now

    data, when = run_proc(sim, proc(sim))
    assert data == b"payload!"
    assert when == dev.read_service_time(8)


def test_timed_write_stores_data():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec())

    def proc(sim):
        yield from dev.write(128, b"abcd")

    run_proc(sim, proc(sim))
    assert dev.peek(128, 4) == b"abcd"
    assert dev.bytes_written.total == 4


def test_channel_contention_queues_requests():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec(channels=1))
    done = []

    def reader(sim, i):
        yield from dev.read(0, 900)  # 100 + 900 = 1000 ns each
        done.append((sim.now, i))

    for i in range(3):
        sim.spawn(reader(sim, i))
    sim.run()
    assert [t for t, _ in done] == [1000, 2000, 3000]


def test_multiple_channels_serve_in_parallel():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec(channels=2, read_bw=2.0))
    done = []

    def reader(sim, i):
        yield from dev.read(0, 900)  # per-channel bw 1 B/ns -> 1000 ns
        done.append(sim.now)

    for i in range(2):
        sim.spawn(reader(sim, i))
    sim.run()
    assert done == [1000, 1000]


def test_out_of_bounds_rejected():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec(capacity_bytes=1024))
    with pytest.raises(MemoryAccessError):
        dev.peek(1020, 8)
    with pytest.raises(MemoryAccessError):
        dev.poke(-1, b"x")

    def bad_read(sim):
        yield from dev.read(1024, 1)

    p = sim.spawn(bad_read(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.exception, MemoryAccessError)


def test_persistence_flag():
    sim = Simulator()
    assert MemoryDevice(sim, tiny_spec(kind="nvm")).is_persistent
    assert not MemoryDevice(sim, tiny_spec(kind="dram", name="d2")).is_persistent


def test_metrics_recorded():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec())

    def proc(sim):
        yield from dev.write(0, b"12345678")
        yield from dev.read(0, 8)

    run_proc(sim, proc(sim))
    assert dev.bytes_read.total == 8
    assert dev.bytes_written.total == 8
    assert dev.read_latency.count == 1
    assert dev.write_latency.count == 1


def test_queue_depth_returns_to_zero():
    sim = Simulator()
    dev = MemoryDevice(sim, tiny_spec(channels=1))
    for _ in range(5):
        sim.spawn(dev.read(0, 100))
    sim.run()
    assert dev.queue_depth.level == 0
    assert dev.queue_depth.peak == 5


def test_nvm_vs_dram_latency_gap_under_same_load():
    """An NVM read must take longer than a DRAM read of the same size —
    the gap Gengar's DRAM cache removes."""
    sim = Simulator()
    dram = MemoryDevice(sim, tiny_spec(name="dram"), name="dram")
    nvm = MemoryDevice(
        sim,
        tiny_spec(name="nvm", kind="nvm", read_latency_ns=300, read_bw=0.5),
        name="nvm",
    )
    times = {}

    def reader(sim, dev, tag):
        start = sim.now
        yield from dev.read(0, 4096)
        times[tag] = sim.now - start

    sim.spawn(reader(sim, dram, "dram"))
    sim.spawn(reader(sim, nvm, "nvm"))
    sim.run()
    assert times["nvm"] > times["dram"]
