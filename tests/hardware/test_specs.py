"""Tests for device spec validation and the testbed presets."""

import pytest

from repro.hardware import (
    CONNECTX5_NIC,
    DDR4_DRAM,
    DEFAULT_LINK,
    OPTANE_NVM,
    SLOW_NVM,
    LinkSpec,
    MemorySpec,
    NicSpec,
)


def test_optane_preset_encodes_read_write_asymmetry():
    """The design-motivating asymmetry: NVM reads ~4x DRAM latency, NVM
    sustained write bandwidth ~3x below its own read bandwidth."""
    assert OPTANE_NVM.read_latency_ns >= 3 * DDR4_DRAM.read_latency_ns
    assert OPTANE_NVM.write_bw < OPTANE_NVM.read_bw / 2
    assert OPTANE_NVM.write_bw < DDR4_DRAM.write_bw / 4


def test_optane_write_latency_is_buffered_fast():
    """Visible write latency (WPQ/ADR) is *lower* than read latency."""
    assert OPTANE_NVM.write_latency_ns < OPTANE_NVM.read_latency_ns


def test_nvm_capacity_exceeds_dram():
    assert OPTANE_NVM.capacity_bytes > DDR4_DRAM.capacity_bytes


def test_slow_nvm_is_strictly_worse():
    assert SLOW_NVM.read_latency_ns > OPTANE_NVM.read_latency_ns
    assert SLOW_NVM.write_bw < OPTANE_NVM.write_bw


def test_memory_spec_validation():
    good = dict(
        name="x", kind="dram", capacity_bytes=1024,
        read_latency_ns=10, write_latency_ns=10, read_bw=1.0, write_bw=1.0,
    )
    MemorySpec(**good)
    with pytest.raises(ValueError):
        MemorySpec(**{**good, "kind": "tape"})
    with pytest.raises(ValueError):
        MemorySpec(**{**good, "capacity_bytes": 0})
    with pytest.raises(ValueError):
        MemorySpec(**{**good, "read_latency_ns": -1})
    with pytest.raises(ValueError):
        MemorySpec(**{**good, "write_bw": 0})
    with pytest.raises(ValueError):
        MemorySpec(**{**good, "channels": 0})


def test_memory_spec_with_capacity():
    small = OPTANE_NVM.with_capacity(4096)
    assert small.capacity_bytes == 4096
    assert small.read_latency_ns == OPTANE_NVM.read_latency_ns
    assert OPTANE_NVM.capacity_bytes != 4096  # original untouched (frozen)


def test_nic_spec_validation():
    NicSpec(name="n", processing_ns=100, message_rate_per_ns=0.1)
    with pytest.raises(ValueError):
        NicSpec(name="n", processing_ns=-1, message_rate_per_ns=0.1)
    with pytest.raises(ValueError):
        NicSpec(name="n", processing_ns=1, message_rate_per_ns=0)


def test_link_spec_validation():
    LinkSpec(bandwidth=12.5, propagation_ns=500)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth=0, propagation_ns=500)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth=1.0, propagation_ns=-1)


def test_default_link_is_100gbps():
    assert DEFAULT_LINK.bandwidth == pytest.approx(12.5)


def test_nic_inline_threshold():
    assert CONNECTX5_NIC.max_inline_bytes == 220
