"""Property tests: SparseBuffer vs a flat bytearray reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import SparseBuffer

CAPACITY = 512 * 1024  # spans several 64 KiB pages

_write_op = st.tuples(
    st.integers(min_value=0, max_value=CAPACITY - 1),
    st.binary(min_size=1, max_size=5000),
)


@given(ops=st.lists(_write_op, max_size=40))
@settings(max_examples=80, deadline=None)
def test_sparse_buffer_equals_flat_bytearray(ops):
    sparse = SparseBuffer(CAPACITY)
    flat = bytearray(CAPACITY)
    for offset, data in ops:
        data = data[: CAPACITY - offset]
        if not data:
            continue
        sparse.write(offset, data)
        flat[offset : offset + len(data)] = data
    # Compare at page boundaries, interior spans, and random windows.
    page = SparseBuffer.PAGE_SIZE
    for offset, length in [
        (0, 100),
        (page - 50, 100),          # page-straddling read
        (page, page),              # exact page
        (CAPACITY - 77, 77),       # tail
        (0, CAPACITY),             # everything
    ]:
        assert sparse.read(offset, length) == bytes(flat[offset : offset + length])


@given(
    offset=st.integers(min_value=0, max_value=CAPACITY - 1),
    data=st.binary(min_size=1, max_size=3 * 64 * 1024),
)
@settings(max_examples=60, deadline=None)
def test_single_write_reads_back_exactly(offset, data):
    data = data[: CAPACITY - offset]
    sparse = SparseBuffer(CAPACITY)
    sparse.write(offset, data)
    assert sparse.read(offset, len(data)) == data
    # Bytes just outside the write remain zero.
    if offset > 0:
        assert sparse.read(offset - 1, 1) == b"\x00"
    end = offset + len(data)
    if end < CAPACITY:
        assert sparse.read(end, 1) == b"\x00"


@given(writes=st.lists(_write_op, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_resident_bytes_only_grow_with_touched_pages(writes):
    sparse = SparseBuffer(CAPACITY)
    touched_pages = set()
    for offset, data in writes:
        data = data[: CAPACITY - offset]
        if not data:
            continue
        sparse.write(offset, data)
        first = offset // SparseBuffer.PAGE_SIZE
        last = (offset + len(data) - 1) // SparseBuffer.PAGE_SIZE
        touched_pages.update(range(first, last + 1))
    assert sparse.resident_bytes == len(touched_pages) * SparseBuffer.PAGE_SIZE
