"""Tests for the two-tier (rack/core) fabric."""

import pytest

from repro.hardware import Fabric
from repro.hardware.network import FabricError
from repro.hardware.specs import LinkSpec
from repro.sim import Simulator

LINK = LinkSpec(bandwidth=10.0, propagation_ns=500, header_bytes=40)


def two_rack_fabric(sim, core_bandwidth=2.0, hop_ns=300):
    fabric = Fabric(sim, LINK)
    fabric.set_core(core_bandwidth, hop_ns)
    for name, rack in [("a0", "r0"), ("a1", "r0"), ("b0", "r1"), ("b1", "r1")]:
        fabric.attach(name)
        fabric.assign_rack(name, rack)
    return fabric


def send(sim, fabric, src, dst, nbytes):
    def proc(sim):
        t0 = sim.now
        yield from fabric.unicast(src, dst, nbytes)
        return sim.now - t0

    p = sim.spawn(proc(sim))
    sim.run_until_complete(p)
    return p.value


def test_intra_rack_traffic_unaffected_by_core():
    sim = Simulator()
    fabric = two_rack_fabric(sim)
    elapsed = send(sim, fabric, "a0", "a1", 960)  # 1000 wire bytes
    assert elapsed == 100 + 500  # edge serialization + propagation only
    assert fabric.core_bytes("r0") == 0


def test_inter_rack_pays_core_serialization_and_hop():
    sim = Simulator()
    fabric = two_rack_fabric(sim, core_bandwidth=2.0, hop_ns=300)
    elapsed = send(sim, fabric, "a0", "b0", 960)
    # edge(100) + core(1000/2=500) + edge(100) + propagation(500) + hop(300)
    assert elapsed == 100 + 500 + 100 + 500 + 300
    assert fabric.core_bytes("r0") == 1000


def test_oversubscribed_core_is_the_shared_bottleneck():
    """Two inter-rack flows from different hosts serialize at the core."""
    sim = Simulator()
    fabric = two_rack_fabric(sim, core_bandwidth=1.0, hop_ns=0)
    done = []

    def sender(sim, src, dst):
        yield from fabric.unicast(src, dst, 960)
        done.append(sim.now)

    sim.spawn(sender(sim, "a0", "b0"))
    sim.spawn(sender(sim, "a1", "b1"))
    sim.run()
    first, second = sorted(done)
    # Edge ports are distinct, but the 1 B/ns core uplink carries both
    # 1000-byte messages one after the other.
    assert second - first >= 1000


def test_flat_fabric_never_crosses_core():
    sim = Simulator()
    fabric = Fabric(sim, LINK)
    fabric.attach("x")
    fabric.attach("y")
    elapsed = send(sim, fabric, "x", "y", 960)
    assert elapsed == 100 + 500
    assert fabric.inter_rack_messages.count == 0


def test_unracked_nodes_use_flat_path_even_with_core():
    sim = Simulator()
    fabric = Fabric(sim, LINK)
    fabric.set_core(1.0)
    fabric.attach("x")
    fabric.attach("y")  # no rack assignment
    elapsed = send(sim, fabric, "x", "y", 960)
    assert elapsed == 100 + 500


def test_rack_of_lookup():
    sim = Simulator()
    fabric = two_rack_fabric(sim)
    assert fabric.rack_of("a0") == "r0"
    assert fabric.rack_of("b1") == "r1"
    assert fabric.rack_of("nope") == ""


def test_validation():
    sim = Simulator()
    fabric = Fabric(sim, LINK)
    with pytest.raises(FabricError):
        fabric.set_core(0)
    with pytest.raises(FabricError):
        fabric.set_core(1.0, hop_ns=-1)
    with pytest.raises(FabricError):
        fabric.assign_rack("ghost", "r0")


def test_linkspec_core_validation():
    with pytest.raises(ValueError):
        LinkSpec(bandwidth=1.0, propagation_ns=0, core_bandwidth=0)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth=1.0, propagation_ns=0, core_hop_ns=-5)


def test_cluster_wires_racks_through_nodespec():
    from repro.cluster import Cluster, ClusterSpec, NodeSpec
    from repro.hardware.specs import TEST_DRAM

    sim = Simulator()
    spec = ClusterSpec(
        nodes=(
            NodeSpec(name="s0", dram=TEST_DRAM, nvm=None, rack="r0"),
            NodeSpec(name="c0", dram=TEST_DRAM, nvm=None, rack="r1"),
        ),
        link=LinkSpec(bandwidth=10.0, propagation_ns=500, core_bandwidth=2.0),
    )
    cluster = Cluster(sim, spec)
    assert cluster.fabric.rack_of("s0") == "r0"
    assert cluster.fabric.rack_of("c0") == "r1"

    def proc(sim):
        yield from cluster.fabric.unicast("s0", "c0", 100)

    sim.run_until_complete(sim.spawn(proc(sim)))
    assert cluster.fabric.inter_rack_messages.count == 1
