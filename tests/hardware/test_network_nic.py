"""Tests for the fabric and NIC models."""

import pytest

from repro.hardware import Fabric, Nic
from repro.hardware.network import FabricError
from repro.hardware.specs import CONNECTX5_NIC, LinkSpec, NicSpec
from repro.sim import Simulator

LINK = LinkSpec(bandwidth=1.0, propagation_ns=500, header_bytes=40)  # 1 B/ns


def make_fabric(sim, nodes=("a", "b", "c")):
    fabric = Fabric(sim, LINK)
    for n in nodes:
        fabric.attach(n)
    return fabric


# ---------------------------------------------------------------------------
# Fabric
# ---------------------------------------------------------------------------
def test_unicast_latency_is_wire_plus_propagation():
    sim = Simulator()
    fabric = make_fabric(sim)

    def proc(sim):
        yield from fabric.unicast("a", "b", 1000)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    # (1000 + 40 header) / 1 B/ns + 500 ns propagation
    assert p.value == 1040 + 500


def test_min_latency_matches_unicast_when_uncontended():
    sim = Simulator()
    fabric = make_fabric(sim)

    def proc(sim):
        yield from fabric.unicast("a", "b", 256)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == fabric.min_latency(256)


def test_loopback_rejected():
    sim = Simulator()
    fabric = make_fabric(sim)
    with pytest.raises(FabricError):
        next(fabric.unicast("a", "a", 10))


def test_unknown_port_rejected():
    sim = Simulator()
    fabric = make_fabric(sim)
    with pytest.raises(FabricError):
        next(fabric.unicast("a", "zzz", 10))


def test_negative_size_rejected():
    sim = Simulator()
    fabric = make_fabric(sim)
    with pytest.raises(FabricError):
        next(fabric.unicast("a", "b", -1))


def test_incast_queues_at_receiver_ingress():
    """Two senders to one receiver serialize on the receiver's port."""
    sim = Simulator()
    fabric = make_fabric(sim)
    done = []

    def sender(sim, src):
        yield from fabric.unicast(src, "c", 960)  # 1000 ns wire each
        done.append(sim.now)

    sim.spawn(sender(sim, "a"))
    sim.spawn(sender(sim, "b"))
    sim.run()
    first, second = sorted(done)
    assert second - first == 1000  # serialized at ingress


def test_disjoint_flows_proceed_in_parallel():
    sim = Simulator()
    fabric = make_fabric(sim, nodes=("a", "b", "c", "d"))
    done = []

    def sender(sim, src, dst):
        yield from fabric.unicast(src, dst, 960)
        done.append(sim.now)

    sim.spawn(sender(sim, "a", "b"))
    sim.spawn(sender(sim, "c", "d"))
    sim.run()
    assert done == [1500, 1500]


def test_sender_uplink_serializes_outgoing_flows():
    sim = Simulator()
    fabric = make_fabric(sim)
    done = []

    def sender(sim, dst):
        yield from fabric.unicast("a", dst, 960)
        done.append(sim.now)

    sim.spawn(sender(sim, "b"))
    sim.spawn(sender(sim, "c"))
    sim.run()
    first, second = sorted(done)
    assert second - first == 1000


def test_byte_accounting():
    sim = Simulator()
    fabric = make_fabric(sim)

    def proc(sim):
        yield from fabric.unicast("a", "b", 100)

    sim.spawn(proc(sim))
    sim.run()
    assert fabric.payload_bytes.total == 100
    assert fabric.egress_bytes("a") == 140  # payload + header
    assert fabric.ingress_bytes("b") == 140
    assert fabric.messages.count == 1


def test_attach_idempotent():
    sim = Simulator()
    fabric = make_fabric(sim)
    fabric.attach("a")
    assert fabric.is_attached("a")
    assert not fabric.is_attached("zzz")


# ---------------------------------------------------------------------------
# Nic
# ---------------------------------------------------------------------------
def test_nic_tx_processing_cost():
    sim = Simulator()
    nic = Nic(sim, NicSpec(name="n", processing_ns=300, message_rate_per_ns=1.0), "nic0")

    def proc(sim):
        yield from nic.tx_process()
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 300
    assert nic.tx_messages.count == 1


def test_nic_message_rate_throttles_small_messages():
    """Beyond the burst, WQEs pace at the NIC's message rate."""
    sim = Simulator()
    spec = NicSpec(name="n", processing_ns=0, message_rate_per_ns=0.001, message_burst=2.0)
    nic = Nic(sim, spec, "nic0")
    times = []

    def proc(sim):
        for _ in range(4):
            yield from nic.tx_process()
            times.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert times[0] == 0 and times[1] == 0
    assert times[2] >= 990  # ~1000 ns per token
    assert times[3] >= 1990


def test_nic_pipeline_width_limits_concurrency():
    sim = Simulator()
    spec = NicSpec(name="n", processing_ns=100, message_rate_per_ns=10.0, message_burst=100.0)
    nic = Nic(sim, spec, "nic0")
    done = []

    def proc(sim):
        yield from nic.rx_process()
        done.append(sim.now)

    for _ in range(8):
        sim.spawn(proc(sim))
    sim.run()
    # Pipeline width is 4: two waves of four.
    assert done == [100] * 4 + [200] * 4


def test_nic_inline_threshold_helper():
    sim = Simulator()
    nic = Nic(sim, CONNECTX5_NIC, "nic0")
    assert nic.is_inline(64)
    assert nic.is_inline(220)
    assert not nic.is_inline(221)
