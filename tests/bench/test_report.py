"""Tests for the table/series rendering used by every benchmark."""

import pytest

from repro.bench.report import Table, render_series, render_table, speedup


def test_table_render_alignment_and_title():
    t = Table(title="demo", headers=["name", "value"])
    t.add_row("alpha", 1.0)
    t.add_row("b", 123456.0)
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "== demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in out and "123,456" in out


def test_table_wrong_arity_rejected():
    t = Table(title="x", headers=["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)
    with pytest.raises(ValueError):
        t.add_row(1, 2, 3)


def test_table_column_extraction():
    t = Table(title="x", headers=["sys", "kops"])
    t.add_row("a", 1.0)
    t.add_row("b", 2.0)
    assert t.column("kops") == [1.0, 2.0]
    assert t.column("sys") == ["a", "b"]
    with pytest.raises(KeyError):
        t.column("nope")


def test_table_notes_rendered():
    t = Table(title="x", headers=["a"], notes=["be careful"])
    t.add_row(1)
    assert "note: be careful" in t.render()


def test_table_empty_renders():
    t = Table(title="empty", headers=["a", "b"])
    out = t.render()
    assert "empty" in out


def test_number_formatting():
    t = Table(title="fmt", headers=["v"])
    for v in (0.0, 0.1234, 12.34, 1234.5, 7):
        t.add_row(v)
    out = t.render()
    assert "0.123" in out  # three decimals under 10
    assert "12.3" in out  # one decimal in [10, 1000)
    assert "1,234" in out  # thousands separator minus decimals
    assert "7" in out  # ints pass through


def test_render_table_oneshot():
    out = render_table("t", ["x"], [[1], [2]], notes=["n"])
    assert "== t ==" in out and "note: n" in out


def test_render_series():
    out = render_series("fig", "size", [64, 128],
                        {"gengar": [1.0, 2.0], "base": [3.0, 4.0]})
    assert "fig" in out
    assert "gengar" in out and "base" in out
    assert "64" in out and "128" in out


def test_render_series_length_mismatch_rejected():
    with pytest.raises(ValueError):
        render_series("fig", "x", [1, 2], {"s": [1.0]})


def test_speedup():
    assert speedup(100.0, 150.0) == pytest.approx(1.5)
    assert speedup(0.0, 10.0) == 0.0
    assert speedup(10.0, 10.0) == 1.0
