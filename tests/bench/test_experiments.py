"""Smoke tests for the experiment drivers (downscaled for test speed).

The full-scale shape assertions live in ``benchmarks/``; here we check that
every driver runs end-to-end at small scale and emits well-formed tables.
"""

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    bench_config,
    boot,
    e01_read_latency,
    e02_write_latency,
    e03_scalability,
    e09_proxy_drain,
    e11_sharing,
)
from repro.bench.report import Table


def test_registry_covers_all_experiments():
    assert list(ALL_EXPERIMENTS) == [f"E{i}" for i in range(1, 13)] + ["X1", "X2", "X3"]
    assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())


def test_experiment_result_table_lookup():
    r = ExperimentResult("EX", "t", [Table(title="alpha", headers=["a"]),
                                     Table(title="beta", headers=["b"])])
    assert r.table("beta").title == "beta"
    with pytest.raises(KeyError):
        r.table("gamma")
    assert "### EX" in r.render()


def test_bench_config_preserves_mechanism_switches():
    from repro.core.config import NVM_DIRECT

    cfg = bench_config(cache_capacity=1234 * 64)(NVM_DIRECT)
    assert not cfg.enable_cache and not cfg.enable_proxy
    assert cfg.cache_capacity == 1234 * 64


def test_boot_builds_named_system():
    system = boot("nvm-direct", seed=1, num_servers=1, num_clients=1)
    assert system.name == "nvm-direct"
    assert len(system.clients) == 1


def test_e01_small_scale():
    result = e01_read_latency(sizes=(64, 4096), reps=3, seed=1)
    table = result.table("E1")
    assert len(table.rows) == 4
    assert all(len(row) == 3 for row in table.rows)
    rows = {row[0]: row[1:] for row in table.rows}
    assert rows["gengar-hot"][1] < rows["gengar-cold"][1]


def test_e02_small_scale():
    result = e02_write_latency(sizes=(256, 8192), reps=3, seed=2)
    rows = {row[0]: row[1:] for row in result.table("E2").rows}
    assert rows["gengar"][1] < rows["nvm-direct"][1]


def test_e03_small_scale():
    result = e03_scalability(client_counts=(1, 2), ops_per_worker=30, seed=3)
    rows = {row[0]: row[1:] for row in result.table("E3").rows}
    assert rows["gengar"][1] > rows["gengar"][0]


def test_e09_small_scale():
    result = e09_proxy_drain(burst=16, write_size=1024, seed=4)
    rows = {row[0]: row[1:] for row in result.table("E9 ").rows}
    assert all(g < n for g, n in zip(rows["gengar"], rows["nvm-direct"]))


def test_e11_small_scale():
    result = e11_sharing(share_ratios=(0.0, 1.0), num_clients=2,
                         ops_per_worker=20, seed=5)
    kops = result.table("E11").column("kops/s")
    assert kops[0] > kops[1]
