"""The chaos soak harness: the smoke profile must pass and be bit-identical."""

from repro.bench.chaos import run_soak, soak_config, soak_plan
from repro.faults import RingStall, ServerCrash

_COMPARE = ["virtual_end_ns", "ops_ok", "ops_typed_failures",
            "lost_reports", "tainted_keys", "counters", "violations"]


def test_smoke_soak_upholds_the_durability_contract():
    report = run_soak(seed=7, smoke=True)
    assert report["violations"] == []
    assert report["ops_ok"] > 0
    assert report["counters"]["faults_crashes"] == 2
    assert report["counters"]["faults_recoveries"] == 2
    assert report["counters"]["fabric_dropped"] > 0  # the lossy window bit


def test_smoke_soak_is_bit_identical_across_runs():
    a = run_soak(seed=7, smoke=True)
    b = run_soak(seed=7, smoke=True)
    assert {k: a[k] for k in _COMPARE} == {k: b[k] for k in _COMPARE}


def test_different_seeds_change_the_traffic_not_the_contract():
    report = run_soak(seed=11, smoke=True)
    assert report["violations"] == []


def test_soak_profile_is_resilient():
    config = soak_config()
    assert config.retry_max_attempts > 1
    assert config.op_deadline_ns > 0
    assert config.auto_reattach and config.degraded_mode


def test_soak_plan_schedules_a_stall_before_the_first_crash():
    plan = soak_plan(t0=0)
    timed = plan.timed
    first_stall = next(f for f in timed if isinstance(f, RingStall))
    first_crash = next(f for f in timed if isinstance(f, ServerCrash))
    # The stall freezes drains so the crash catches staged writes in the
    # ring — the lost-write reporting path the soak exists to exercise.
    assert first_stall.at_ns < first_crash.at_ns
    assert first_stall.server_id == first_crash.server_id
