"""Tests for the YCSB driver."""

import pytest

from repro.bench.runner import YcsbRunner
from repro.workloads.ycsb import WORKLOADS

from tests.apps.conftest import boot


def make_runner(workload="A", system_name="gengar", workers=2, ops=40,
                records=30, seed=2):
    sim, system = boot(name=system_name, num_servers=1, num_clients=2, seed=seed)
    spec = WORKLOADS[workload].scaled(record_count=records, value_size=256)
    runner = YcsbRunner(system, spec, num_workers=workers, ops_per_worker=ops,
                        seed_tag=f"t.{workload}.{system_name}")
    return sim, system, runner


def test_load_populates_all_records():
    sim, system, runner = make_runner()
    runner.load()
    assert len(runner.store) == 30


def test_run_reports_counts_and_throughput():
    sim, system, runner = make_runner(workers=2, ops=40)
    runner.load()
    result = runner.run()
    assert result.total_ops == 80
    assert result.elapsed_ns > 0
    assert result.throughput_ops_s > 0
    assert result.system == "gengar"
    assert result.workload == "A"
    assert "overall" in result.latency_ns
    assert result.latency_ns["overall"]["count"] == 80


def test_latency_split_by_op_type():
    sim, system, runner = make_runner(workload="A")
    runner.load()
    result = runner.run()
    assert "read" in result.latency_ns
    assert "update" in result.latency_ns
    assert result.avg_latency_ns > 0


def test_workload_f_runs_rmw_through_locks():
    sim, system, runner = make_runner(workload="F", ops=30)
    runner.load()
    result = runner.run()
    assert "rmw" in result.latency_ns
    assert sim.metrics.counter("pool.lock_acquires").count > 0


def test_workload_e_scans():
    sim, system, runner = make_runner(workload="E", ops=30)
    runner.load()
    result = runner.run()
    assert "scan" in result.latency_ns


def test_workload_d_inserts_grow_store():
    sim, system, runner = make_runner(workload="D", ops=60, workers=2)
    runner.load()
    before = len(runner.store)
    runner.run()
    assert len(runner.store) > before


def test_insert_keys_disjoint_across_workers():
    sim, system, runner = make_runner(workload="D", ops=80, workers=3)
    runner.load()
    runner.run()  # would raise KvError on duplicate insert keys


def test_same_seed_same_result():
    def once():
        sim, system, runner = make_runner(seed=11)
        runner.load()
        return runner.run()

    a, b = once(), once()
    assert a.elapsed_ns == b.elapsed_ns
    assert a.throughput_ops_s == b.throughput_ops_s


def test_invalid_parameters_rejected():
    sim, system, _ = make_runner()
    spec = WORKLOADS["A"]
    with pytest.raises(ValueError):
        YcsbRunner(system, spec, num_workers=0)
    with pytest.raises(ValueError):
        YcsbRunner(system, spec, ops_per_worker=0)
