"""Calibration: the simulator must track the closed-form cost models.

Each test measures an uncontended operation end to end through the full
stack (client library -> verbs -> NIC -> fabric -> devices) and compares it
with the analytic path model.  A drift beyond tolerance means some protocol
path double-charges or drops a cost component.
"""

import pytest

from repro.bench.calibration import (
    PathModel,
    calibration_report,
    expected_atomic_ns,
    expected_cold_read_ns,
    expected_direct_write_ns,
    expected_hot_read_ns,
    expected_proxy_write_ns,
    expected_rdma_read_ns,
)
from repro.hardware.specs import CONNECTX5_NIC, DEFAULT_LINK, TEST_DRAM, TEST_NVM
from repro.sim import Simulator

from tests.core.conftest import build_pool, fast_config

MODEL = PathModel(
    nic=CONNECTX5_NIC,
    link=DEFAULT_LINK,
    client_dram=TEST_DRAM,
    server_dram=TEST_DRAM,
    server_nvm=TEST_NVM,
)

#: The simulator may differ from closed form by rounding and the message-rate
#: token bucket; the tolerance is deliberately tight.
TOL = 0.06


def measure(op_factory, sim, reps=5):
    total = {"ns": 0}

    def proc(sim):
        for _ in range(reps):
            t0 = sim.now
            yield from op_factory()
            total["ns"] += sim.now - t0
            yield sim.timeout(20_000)  # keep every rep uncontended

    p = sim.spawn(proc(sim))
    sim.run_until_complete(p)
    return total["ns"] / reps


@pytest.mark.parametrize("size", [64, 1024, 4096, 65536])
def test_cold_read_matches_model(size):
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(enable_cache=False,
                                              enable_proxy=False))
    client = pool.clients[0]
    holder = {}

    def setup(sim):
        holder["g"] = yield from client.gmalloc(size)
        yield from client.gwrite(holder["g"], b"x" * size)
        yield from client.gread(holder["g"])  # warm metadata

    pool.run(setup(sim))
    measured = measure(lambda: client.gread(holder["g"]), sim)
    expected = expected_cold_read_ns(MODEL, size)
    assert measured == pytest.approx(expected, rel=TOL), (size, measured, expected)


@pytest.mark.parametrize("size", [64, 1024, 16384])
def test_hot_read_matches_model(size):
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    holder = {}

    def setup(sim):
        g = yield from client.gmalloc(size)
        yield from client.gwrite(g, b"h" * size)
        yield from client.gsync()
        yield from pool.master.pin(g)
        client._invalidate_meta(g)
        yield from client.gread(g, length=1)  # warm metadata
        holder["g"] = g

    pool.run(setup(sim))
    measured = measure(lambda: client.gread(holder["g"]), sim)
    expected = expected_hot_read_ns(MODEL, size)
    assert measured == pytest.approx(expected, rel=TOL), (size, measured, expected)


@pytest.mark.parametrize("size", [512, 2048])
def test_proxy_write_matches_model(size):
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(proxy_ring_slots=64))
    client = pool.clients[0]
    holder = {}

    def setup(sim):
        holder["g"] = yield from client.gmalloc(size)

    pool.run(setup(sim))
    measured = measure(lambda: client.gwrite(holder["g"], b"p" * size), sim)
    expected = expected_proxy_write_ns(MODEL, size)
    assert measured == pytest.approx(expected, rel=TOL), (size, measured, expected)


@pytest.mark.parametrize("size", [512, 4096, 65536])
def test_direct_write_matches_model(size):
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(enable_cache=False,
                                              enable_proxy=False))
    client = pool.clients[0]
    holder = {}

    def setup(sim):
        holder["g"] = yield from client.gmalloc(size)

    pool.run(setup(sim))
    measured = measure(lambda: client.gwrite(holder["g"], b"w" * size), sim)
    expected = expected_direct_write_ns(MODEL, size)
    assert measured == pytest.approx(expected, rel=TOL), (size, measured, expected)


def test_atomic_matches_model():
    """Measure a raw CAS through the verbs layer (no client-library cost)."""
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    holder = {}

    def setup(sim):
        holder["g"] = yield from client.gmalloc(64)
        meta = yield from client._meta(holder["g"])
        holder["meta"] = meta

    pool.run(setup(sim))
    meta = holder["meta"]

    def one_cas():
        value = yield from client._atomic_cas(
            meta.server_id, meta.lock_idx * 8, compare=0, swap=0)
        return value

    measured = measure(one_cas, sim)
    expected = expected_atomic_ns(MODEL)
    assert measured == pytest.approx(expected, rel=TOL), (measured, expected)


def test_report_structure():
    report = calibration_report(MODEL)
    assert set(report) == {"cold_read_us", "hot_read_us", "proxy_write_us",
                           "direct_write_us", "atomic_us"}
    # The model itself encodes the design story:
    assert report["hot_read_us"][65536] < report["cold_read_us"][65536] * 0.8
    assert report["proxy_write_us"][65536] < report["direct_write_us"][65536] * 0.5


def test_model_monotone_in_size():
    prev = 0.0
    for size in (64, 256, 1024, 4096, 16384, 65536):
        value = expected_rdma_read_ns(MODEL, size)
        assert value > prev
        prev = value
