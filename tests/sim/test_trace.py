"""Tests for the protocol tracer."""

import pytest

from repro.sim import Simulator, Tracer, trace


def test_emit_records_time_and_fields():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.schedule(150, lambda: tracer.emit("cache", "hit", gaddr="0x10"))
    sim.run()
    (event,) = tracer.events()
    assert event.time_ns == 150
    assert event.category == "cache"
    assert event.message == "hit"
    assert event.fields == {"gaddr": "0x10"}


def test_category_filter():
    sim = Simulator()
    tracer = Tracer(sim, categories={"proxy"})
    tracer.emit("proxy", "drained")
    tracer.emit("cache", "hit")
    assert len(tracer) == 1
    assert tracer.wants("proxy") and not tracer.wants("cache")


def test_unfiltered_records_everything():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("a", "x")
    tracer.emit("b", "y")
    assert [e.category for e in tracer.events()] == ["a", "b"]
    assert [e.category for e in tracer.events("b")] == ["b"]


def test_capacity_bounds_memory():
    sim = Simulator()
    tracer = Tracer(sim, capacity=10)
    for i in range(25):
        tracer.emit("x", f"event-{i}")
    assert len(tracer) == 10
    assert tracer.dropped == 15
    assert tracer.recorded == 25
    assert tracer.events()[0].message == "event-15"  # oldest retained


def test_render_includes_time_and_drop_note():
    sim = Simulator()
    tracer = Tracer(sim, capacity=2)
    for i in range(3):
        tracer.emit("cat", f"m{i}", k=i)
    out = tracer.render()
    assert "m1" in out and "m2" in out and "m0" not in out
    assert "dropped" in out
    assert "k=2" in out


def test_trace_helper_noop_without_tracer():
    sim = Simulator()
    trace(sim, "cache", "ignored")  # must not raise


def test_trace_helper_routes_to_attached_tracer():
    sim = Simulator()
    sim.tracer = Tracer(sim)
    trace(sim, "cache", "recorded", n=1)
    assert len(sim.tracer) == 1


def test_clear():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("x", "y")
    tracer.clear()
    assert len(tracer) == 0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Tracer(Simulator(), capacity=0)


def test_pool_emits_protocol_events():
    """End to end: a traced pool records cache/proxy protocol activity."""
    from tests.core.conftest import build_pool

    sim, pool = build_pool(num_servers=1, num_clients=1)
    sim.tracer = Tracer(sim)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(256)
        yield from client.gwrite(gaddr, b"t" * 256)
        yield from client.gsync()
        yield from client.gread(gaddr)

    pool.run(app(sim))
    categories = {e.category for e in sim.tracer.events()}
    assert "proxy" in categories  # staged write + drain
    assert "read" in categories  # NVM read route
    messages = [e.message for e in sim.tracer.events("proxy")]
    assert "staged write" in messages
    assert "drained" in messages
