"""Permanent same-seed determinism pin for the kernel's dispatch order.

Replays the seeded YCSB-B + chaos scenario from ``dispatch_scenario.py``
with ``sim.dispatch_hook`` installed and compares the per-dispatch
(time, callback) trace against ``tests/data/dispatch_trace_golden.json``,
which was captured from the pre-calendar-queue single-heap kernel.

A mismatch means the event queue no longer dispatches in (time, seq) order —
i.e. same-seed runs are no longer bit-for-bit comparable across kernel
versions.  That is a kernel bug (or a deliberate ordering change that must
be called out loudly and re-golden'd together with every virtual-time
baseline), never something to silence by editing the scenario.
"""

import json
from pathlib import Path

from tests.sim.dispatch_scenario import (
    SCENARIO_SEED,
    SCENARIO_VERSION,
    callback_name,
    fingerprint,
    run_scenario,
)

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "dispatch_trace_golden.json"


def test_dispatch_order_matches_pre_refactor_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["version"] == SCENARIO_VERSION
    assert golden["seed"] == SCENARIO_SEED

    trace = []

    def install(sim):
        sim.dispatch_hook = lambda when, fn: trace.append((when, callback_name(fn)))

    run_scenario(install_hook=install)
    got = fingerprint(trace)

    # Checkpoints first: on mismatch they localize the first divergence far
    # better than a hash inequality.
    for idx, when, name in golden["checkpoints"]:
        assert idx < len(trace), (
            f"trace too short: {len(trace)} < checkpoint index {idx} "
            f"(golden has {golden['dispatches']} dispatches)"
        )
        assert trace[idx] == (when, name), (
            f"dispatch #{idx} diverged: got {trace[idx]}, golden ({when}, {name!r})"
        )

    assert got["dispatches"] == golden["dispatches"]
    assert got["final_time_ns"] == golden["final_time_ns"]
    assert got["sha256"] == golden["sha256"]


def test_dispatch_hook_does_not_change_the_run():
    """The instrumented run loops must be semantically identical to the hot
    ones: same final virtual time, same dispatch count."""
    plain = run_scenario()

    count = [0]

    def install(sim):
        sim.dispatch_hook = lambda when, fn: count.__setitem__(0, count[0] + 1)

    hooked = run_scenario(install_hook=install)
    assert hooked.now == plain.now
    assert hooked.total_dispatched == plain.total_dispatched
    assert count[0] == hooked.total_dispatched
