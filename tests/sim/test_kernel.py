"""Tests for the discrete-event kernel: clock, scheduling, processes."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_callbacks_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_equal_time_callbacks_run_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(5, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=1234)
    assert sim.now == 1234


def test_process_timeout_advances_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(42)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 42


def test_process_return_value_delivered_to_joiner():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5)
        return "payload"

    def parent(sim):
        value = yield sim.spawn(child(sim))
        return value + "!"

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == "payload!"


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_marks_process_failed():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    p = sim.spawn(child(sim))
    sim.run()
    assert p.triggered and not p.ok
    with pytest.raises(RuntimeError, match="unhandled"):
        _ = p.value


def test_spawning_non_generator_raises():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42  # not an Event

    p = sim.spawn(bad(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.exception, SimulationError)


def test_yielding_event_of_other_simulator_fails_process():
    sim_a = Simulator()
    sim_b = Simulator()

    def bad(sim):
        yield sim_b.timeout(1)

    p = sim_a.spawn(bad(sim_a))
    sim_a.run()
    assert not p.ok
    assert isinstance(p.exception, SimulationError)


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    seen = []

    def sleeper(sim):
        try:
            yield sim.timeout(1_000_000)
        except Interrupt as exc:
            seen.append((sim.now, exc.cause))

    p = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(10)
        p.interrupt("stop now")

    sim.spawn(killer(sim))
    sim.run()
    assert seen == [(10, "stop now")]


def test_interrupting_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.spawn(quick(sim))
    sim.run()
    assert p.ok
    p.interrupt("too late")  # must not raise
    sim.run()
    assert p.ok


def test_stale_timeout_does_not_resume_interrupted_process():
    """After an interrupt, the original timeout firing must not double-step."""
    sim = Simulator()
    resumed = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt:
            yield sim.timeout(500)
        resumed.append(sim.now)

    p = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(10)
        p.interrupt()

    sim.spawn(killer(sim))
    sim.run()
    assert resumed == [510]


def test_run_until_complete_returns_process_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(7)
        return 99

    p = sim.spawn(proc(sim))
    assert sim.run_until_complete(p) == 99


def test_run_until_complete_detects_deadlock():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered by anyone

    p = sim.spawn(stuck(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_max_events_guard_trips_on_livelock():
    sim = Simulator()

    def spinner(sim):
        while True:
            yield sim.timeout(0)

    sim.spawn(spinner(sim))
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=1000)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.schedule(17, lambda: None)
    assert sim.peek() == 17


def test_determinism_same_seed_same_trace():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        trace = []

        def jittery(sim, name):
            rng = sim.rng.stream(name)
            for _ in range(20):
                yield sim.timeout(rng.randrange(1, 100))
                trace.append((sim.now, name))

        for name in ("a", "b", "c"):
            sim.spawn(jittery(sim, name))
        sim.run()
        return trace

    assert build_and_run(42) == build_and_run(42)
    assert build_and_run(42) != build_and_run(43)
