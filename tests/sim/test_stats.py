"""Tests for the metrics primitives."""

import pytest

from repro.sim import Counter, Histogram, Simulator, TimeWeightedStat


def test_counter_accumulates():
    c = Counter("ops")
    for v in (1.0, 2.0, 3.0):
        c.add(v)
    assert c.count == 3
    assert c.total == 6.0
    assert c.mean == 2.0


def test_counter_empty_mean_is_zero():
    assert Counter("empty").mean == 0.0


def test_histogram_basic_stats():
    h = Histogram("lat")
    for v in [10, 20, 30, 40, 50]:
        h.record(v)
    assert h.count == 5
    assert h.mean == 30
    assert h.min == 10
    assert h.max == 50
    assert h.p50 == 30


def test_histogram_percentile_bounds_checked():
    h = Histogram("lat")
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_histogram_empty_percentile_is_zero():
    assert Histogram("lat").p99 == 0.0


def test_histogram_percentile_exact_small():
    h = Histogram("lat")
    for v in range(1, 101):
        h.record(v)
    assert h.percentile(1) == 1
    assert h.percentile(50) == 50
    assert h.percentile(99) == 99
    assert h.percentile(100) == 100
    assert h.percentile(0) == 1  # nearest-rank floor


def test_histogram_reservoir_keeps_memory_bounded():
    h = Histogram("lat", max_samples=100)
    for v in range(10_000):
        h.record(float(v))
    assert len(h._samples) == 100
    assert h.count == 10_000
    # The reservoir should still track the distribution roughly: the median of
    # uniform 0..9999 is near 5000.
    assert 2000 < h.p50 < 8000


def test_histogram_snapshot_keys():
    h = Histogram("lat")
    h.record(5)
    snap = h.snapshot()
    assert set(snap) == {"count", "mean", "min", "max", "p50", "p90", "p99"}
    assert snap["count"] == 1


def test_histogram_invalid_max_samples():
    with pytest.raises(ValueError):
        Histogram("x", max_samples=0)


def test_time_weighted_average():
    sim = Simulator()
    level = TimeWeightedStat("depth", sim, initial=0.0)

    def proc(sim):
        yield sim.timeout(10)  # level 0 for 10 ns
        level.update(4.0)
        yield sim.timeout(10)  # level 4 for 10 ns
        level.update(2.0)
        yield sim.timeout(20)  # level 2 for 20 ns

    sim.spawn(proc(sim))
    sim.run()
    # integral = 0*10 + 4*10 + 2*20 = 80 over 40 ns
    assert level.time_average() == pytest.approx(2.0)
    assert level.peak == 4.0
    assert level.level == 2.0


def test_time_weighted_adjust():
    sim = Simulator()
    level = TimeWeightedStat("q", sim)
    level.adjust(+3)
    level.adjust(-1)
    assert level.level == 2


def test_time_weighted_at_time_zero():
    sim = Simulator()
    level = TimeWeightedStat("q", sim, initial=7.0)
    assert level.time_average() == 7.0


def test_metric_registry_fetch_or_create():
    sim = Simulator()
    c1 = sim.metrics.counter("reads")
    c2 = sim.metrics.counter("reads")
    assert c1 is c2
    h1 = sim.metrics.histogram("lat")
    assert sim.metrics.histogram("lat") is h1
    l1 = sim.metrics.level("depth")
    assert sim.metrics.level("depth") is l1
    assert set(sim.metrics.names()) == {"reads", "lat", "depth"}


def test_time_weighted_mid_run_creation_no_phantom_prefix():
    """Regression: a stat created at t=1000 must average from its creation,
    not from t=0.  The old denominator (``sim.now`` alone) diluted mid-run
    stats with a phantom zero-level prefix they never actually held."""
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1000)
        level = TimeWeightedStat("late", sim, initial=6.0)
        yield sim.timeout(500)  # held 6.0 for all 500 ns of its life
        return level

    p = sim.spawn(proc(sim))
    sim.run()
    level = p.value
    # Old code: integral/now = 3000/1500 = 2.0.  Correct: 6.0.
    assert level.time_average() == pytest.approx(6.0)


def test_time_weighted_mid_run_creation_partial_window():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)
        level = TimeWeightedStat("late", sim, initial=0.0)
        yield sim.timeout(10)
        level.update(8.0)
        yield sim.timeout(30)
        return level

    p = sim.spawn(proc(sim))
    sim.run()
    # Life: 40 ns (t=100..140); integral = 0*10 + 8*30 = 240 -> avg 6.0.
    assert p.value.time_average() == pytest.approx(6.0)


def test_histogram_sorted_view_cached_and_invalidated():
    """percentile() sorts once per record(), not once per call: a
    snapshot's four quantiles must reuse one sorted view, and a new sample
    must invalidate it."""
    h = Histogram("lat")
    for v in (5.0, 1.0, 3.0):
        h.record(v)
    assert h.p50 == 3.0
    # The cached view is reused (identity, not just equality).
    first = h._sorted
    assert first is not None
    h.snapshot()
    assert h._sorted is first
    # A new minimum must be visible immediately: stale cache would miss it.
    h.record(0.5)
    assert h._sorted is None
    assert h.percentile(0.0) == 0.5
    assert h.min == 0.5


def test_histogram_sorted_cache_with_reservoir_replacement():
    h = Histogram("lat", max_samples=4)
    for v in (4.0, 3.0, 2.0, 1.0):
        h.record(v)
    assert h.percentile(100.0) == 4.0
    # Overflow the reservoir: whatever happens to the sample set, the
    # cached order must be rebuilt, never reused stale.
    for v in (9.0, 8.0, 7.0, 6.0, 5.0):
        h.record(v)
    assert h.percentile(100.0) == max(h._samples)
    assert h.percentile(0.0) == min(h._samples)
