"""Tests for deterministic RNG streams and unit helpers."""

import pytest

from repro.sim import GIB, KIB, MIB, MS, SEC, US, RngRegistry, gbps_to_bytes_per_ns
from repro.sim.units import (
    bytes_per_ns_to_gib_per_s,
    gib_per_s_to_bytes_per_ns,
    ns_to_us,
    ops_per_sec,
)


def test_rng_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_rng_streams_reproducible_across_registries():
    a = [RngRegistry(7).stream("x").random() for _ in range(5)]
    b = [RngRegistry(7).stream("x").random() for _ in range(5)]
    assert a == b


def test_rng_streams_differ_by_name_and_seed():
    reg = RngRegistry(7)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys
    other = [RngRegistry(8).stream("x").random() for _ in range(5)]
    assert xs != other


def test_rng_new_stream_does_not_perturb_existing():
    reg1 = RngRegistry(3)
    s = reg1.stream("workload")
    first = [s.random() for _ in range(3)]
    reg2 = RngRegistry(3)
    reg2.stream("brand-new-consumer")  # extra stream created first
    s2 = reg2.stream("workload")
    assert [s2.random() for _ in range(3)] == first


def test_rng_fork_is_independent():
    reg = RngRegistry(5)
    child = reg.fork("node0")
    assert child.seed != reg.seed
    assert child.stream("x").random() != reg.stream("x").random()


def test_rng_contains():
    reg = RngRegistry(0)
    assert "a" not in reg
    reg.stream("a")
    assert "a" in reg


def test_size_constants():
    assert KIB == 1024
    assert MIB == 1024**2
    assert GIB == 1024**3


def test_time_constants():
    assert US == 1_000
    assert MS == 1_000_000
    assert SEC == 1_000_000_000


def test_gbps_conversion():
    assert gbps_to_bytes_per_ns(100) == pytest.approx(12.5)
    assert gbps_to_bytes_per_ns(8) == pytest.approx(1.0)


def test_gib_per_s_roundtrip():
    rate = gib_per_s_to_bytes_per_ns(2.5)
    assert bytes_per_ns_to_gib_per_s(rate) == pytest.approx(2.5)


def test_ns_to_us():
    assert ns_to_us(2_500) == pytest.approx(2.5)


def test_ops_per_sec():
    assert ops_per_sec(1000, SEC) == pytest.approx(1000.0)
    assert ops_per_sec(10, 0) == 0.0
    assert ops_per_sec(0, SEC) == 0.0
