"""Tests for Resource, Store, FifoChannel, TokenBucket."""

import pytest

from repro.sim import FifoChannel, Resource, Simulator, Store, TokenBucket


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------
def test_resource_capacity_validated():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.in_use == 2 and res.queued == 1


def test_resource_fifo_handoff_on_release():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, i):
        with (yield from res.acquire()):
            order.append((sim.now, i))
            yield sim.timeout(10)

    for i in range(4):
        sim.spawn(worker(sim, i))
    sim.run()
    assert order == [(0, 0), (10, 1), (20, 2), (30, 3)]


def test_resource_release_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    req.release()
    req.release()  # second call must be a no-op
    assert res.in_use == 0


def test_resource_context_manager_releases_on_exception():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def failing(sim):
        with (yield from res.acquire()):
            yield sim.timeout(1)
            raise RuntimeError("inside critical section")

    def follower(sim):
        with (yield from res.acquire()):
            return sim.now

    sim.spawn(failing(sim))
    p = sim.spawn(follower(sim))
    sim.run()
    assert p.ok and p.value == 1  # slot was freed despite the exception
    assert res.in_use == 0


def test_resource_parallelism_matches_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    done = []

    def worker(sim, i):
        with (yield from res.acquire()):
            yield sim.timeout(10)
            done.append((sim.now, i))

    for i in range(6):
        sim.spawn(worker(sim, i))
    sim.run()
    # Two waves of three.
    assert [t for t, _ in done] == [10, 10, 10, 20, 20, 20]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def consumer(sim):
        got.append((yield store.get()))

    sim.spawn(consumer(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        got.append(((yield store.get()), sim.now))

    sim.spawn(consumer(sim))

    def producer(sim):
        yield sim.timeout(25)
        store.put("late")

    sim.spawn(producer(sim))
    sim.run()
    assert got == [("late", 25)]


def test_store_fifo_across_consumers():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, i):
        item = yield store.get()
        got.append((i, item))

    for i in range(3):
        sim.spawn(consumer(sim, i))

    def producer(sim):
        for item in "abc":
            yield sim.timeout(1)
            store.put(item)

    sim.spawn(producer(sim))
    sim.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_capacity_backpressure():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer(sim):
        for i in range(3):
            yield store.put(i)
            timeline.append(("put", i, sim.now))

    def consumer(sim):
        for _ in range(3):
            yield sim.timeout(10)
            item = yield store.get()
            timeline.append(("got", item, sim.now))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    puts = [t for op, _, t in timeline if op == "put"]
    assert puts == [0, 10, 20]  # second/third puts wait for drains


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() == (False, None)
    store.put(7)
    sim.run()
    assert store.try_get() == (True, 7)


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ---------------------------------------------------------------------------
# FifoChannel
# ---------------------------------------------------------------------------
def test_channel_serialization_time():
    sim = Simulator()
    chan = FifoChannel(sim, bytes_per_ns=2.0)  # 2 B/ns
    assert chan.busy_time(100) == 50
    assert chan.busy_time(0) == 0
    assert chan.busy_time(1) == 1  # rounds up to at least 1 ns


def test_channel_transfers_queue_fifo():
    sim = Simulator()
    chan = FifoChannel(sim, bytes_per_ns=1.0)
    finished = []

    def sender(sim, i, size):
        yield from chan.transfer(size)
        finished.append((sim.now, i))

    sim.spawn(sender(sim, 0, 100))
    sim.spawn(sender(sim, 1, 50))
    sim.run()
    assert finished == [(100, 0), (150, 1)]
    assert chan.bytes_moved == 150


def test_channel_rejects_nonpositive_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        FifoChannel(sim, bytes_per_ns=0)


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------
def test_token_bucket_burst_then_throttle():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_ns=0.01, burst=2.0)  # 1 token / 100 ns
    times = []

    def client(sim):
        for _ in range(4):
            yield from bucket.consume(1.0)
            times.append(sim.now)

    sim.spawn(client(sim))
    sim.run()
    # First two ride the burst; the rest pace at 100 ns per token.
    assert times[0] == 0 and times[1] == 0
    assert times[2] == pytest.approx(100, abs=2)
    assert times[3] == pytest.approx(200, abs=3)


def test_token_bucket_consume_above_burst_rejected():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_ns=1.0, burst=1.0)

    def client(sim):
        yield from bucket.consume(5.0)

    p = sim.spawn(client(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.exception, ValueError)


def test_token_bucket_refills_while_idle():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_ns=0.01, burst=3.0)

    def client(sim):
        yield from bucket.consume(3.0)  # drain the burst
        yield sim.timeout(1000)  # long idle: fully refills (capped at burst)
        start = sim.now
        yield from bucket.consume(3.0)
        return sim.now - start

    p = sim.spawn(client(sim))
    sim.run()
    assert p.value == 0  # no extra wait after refill
