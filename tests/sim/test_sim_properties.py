"""Property-based tests (hypothesis) for the simulation kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FifoChannel, Histogram, Resource, Simulator, Store


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    """Whatever the scheduling order, dispatch times never go backwards."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_process_completion_time_is_sum_of_timeouts(delays):
    sim = Simulator()

    def proc(sim):
        for d in delays:
            yield sim.timeout(d)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == sum(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    hold=st.integers(min_value=1, max_value=50),
    n=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(capacity, hold, n):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = [0]
    peak = [0]

    def worker(sim):
        with (yield from res.acquire()):
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield sim.timeout(hold)
            active[0] -= 1

    for _ in range(n):
        sim.spawn(worker(sim))
    sim.run()
    assert peak[0] <= capacity
    assert active[0] == 0
    # Makespan of n jobs of length `hold` on `capacity` servers.
    expected_end = ((n + capacity - 1) // capacity) * hold
    assert sim.now == expected_end


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer(sim):
        for item in items:
            yield store.put(item)

    def consumer(sim):
        for _ in items:
            received.append((yield store.get()))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert received == items


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=20),
    rate=st.floats(min_value=0.1, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_channel_conserves_bytes_and_time_lower_bound(sizes, rate):
    sim = Simulator()
    chan = FifoChannel(sim, bytes_per_ns=rate)

    def sender(sim, size):
        yield from chan.transfer(size)

    for s in sizes:
        sim.spawn(sender(sim, s))
    sim.run()
    assert chan.bytes_moved == sum(sizes)
    # Total busy time is at least the ideal serialization time.
    assert sim.now >= int(sum(sizes) / rate) - len(sizes)


@given(values=st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=500))
@settings(max_examples=60, deadline=None)
def test_histogram_percentiles_bracketed_by_min_max(values):
    h = Histogram("x")
    for v in values:
        h.record(v)
    for p in (0, 25, 50, 75, 90, 99, 100):
        q = h.percentile(p)
        assert h.min <= q <= h.max
    assert h.percentile(100) == max(values)
    assert h.count == len(values)


@given(values=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_histogram_median_matches_sorted_definition(values):
    h = Histogram("x")
    for v in values:
        h.record(v)
    ordered = sorted(values)
    import math

    rank = max(0, min(len(ordered) - 1, math.ceil(0.5 * len(ordered)) - 1))
    assert h.p50 == ordered[rank]
