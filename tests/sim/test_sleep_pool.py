"""Pins for the pooled ``sleep()`` lifecycle contract.

``Simulator.sleep`` hands out recycled :class:`Timeout` objects from a free
list (refilled in batches).  The contract — documented in ``docs/KERNEL.md``
— is: yield the result immediately, do not retain it past its firing.  These
tests pin what actually happens at the contract's edges (reuse after fire,
retained references, double yield, interrupt interaction) so the pool can
get hotter without its semantics drifting silently.
"""

import pytest

from repro.sim.kernel import _SLEEP_REFILL, Simulator
from repro.sim.primitives import Interrupt


def test_reuse_after_fire_hands_back_the_same_object():
    sim = Simulator()
    seen = []

    def worker(sim):
        first = sim.sleep(5)
        seen.append(first)
        yield first
        # first has fired and been recycled; the next sleep must pop a
        # pooled object (the free list never grows past the refill batch).
        second = sim.sleep(5)
        seen.append(second)
        yield second

    sim.spawn(worker(sim))
    sim.run()
    a, b = seen
    assert a in sim._timeout_pool and b in sim._timeout_pool
    # Batch refill semantics: allocation happened once, up front.
    assert len(sim._timeout_pool) == _SLEEP_REFILL


def test_retained_reference_still_reads_fired_state():
    """Retaining the object past firing is outside the contract, but reads
    of the *fired* state stay coherent until someone else re-arms it."""
    sim = Simulator()
    held = []

    def worker(sim):
        t = sim.sleep(7, value="payload")
        held.append(t)
        got = yield t
        held.append(got)

    sim.spawn(worker(sim))
    sim.run()
    t = held[0]
    assert held[1] == "payload"
    assert t.triggered and t.ok and t.value == "payload"
    # It went back to the free list exactly once.
    assert sim._timeout_pool.count(t) == 1


def test_yielding_a_fired_pooled_timeout_twice_resumes_immediately():
    """A second yield of an already-processed pooled timeout resumes at the
    current instant with the same value (late add_callback goes through the
    scheduler) — it does not wait for a new firing."""
    sim = Simulator()
    trace = []

    def worker(sim):
        t = sim.sleep(10, value="v")
        first = yield t
        trace.append((sim.now, first))
        second = yield t  # contract violation, but pinned: immediate redelivery
        trace.append((sim.now, second))

    sim.spawn(worker(sim))
    sim.run()
    assert trace == [(10, "v"), (10, "v")]


def test_rearmed_pooled_timeout_is_a_fresh_wait_for_its_new_holder():
    """Once recycled and re-armed by another sleep(), the object is a fully
    reset event: pending, new delay, new value — no state leaks from the
    previous use."""
    sim = Simulator()
    order = []

    def first(sim):
        t = sim.sleep(5, value="old")
        yield t
        order.append(("first", sim.now, t))

    def second(sim):
        yield sim.sleep(6)  # after first's timeout has been recycled
        t = sim.sleep(5, value="new")
        order.append(("second-armed", sim.now, t))
        got = yield t
        order.append(("second", sim.now, got))

    sim.spawn(first(sim))
    sim.spawn(second(sim))
    sim.run()
    assert [(tag, now) for tag, now, _ in order] == [
        ("first", 5), ("second-armed", 6), ("second", 11)]
    # The re-armed wait delivered the *new* value even if the object was
    # the recycled one from the first sleep.
    assert order[2][2] == "new"


def test_interrupt_while_sleeping_recycles_exactly_once():
    """Fault-injector-style cancellation: interrupting a process parked on a
    pooled sleep must not double-step the process when the stale timeout
    fires, and the timeout must return to the pool exactly once."""
    sim = Simulator()
    resumed = []
    stale = []

    def sleeper(sim):
        t = sim.sleep(100)
        stale.append(t)
        try:
            yield t
        except Interrupt:
            yield sim.sleep(500)
        resumed.append(sim.now)

    p = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.sleep(10)
        p.interrupt()

    sim.spawn(killer(sim))
    sim.run()
    # The interrupt path resumed once, at 10 + 500; the stale firing at 100
    # did not wake the process a second time.
    assert resumed == [510]
    t = stale[0]
    assert t.triggered  # it still fired at its due time, waiterless
    assert sim._timeout_pool.count(t) == 1
    assert len(sim._timeout_pool) == _SLEEP_REFILL


def test_pool_respects_negative_delay_on_rearm():
    sim = Simulator()

    def worker(sim):
        yield sim.sleep(1)

    sim.spawn(worker(sim))
    sim.run()
    assert sim._timeout_pool  # re-arm path, not construction path
    with pytest.raises(ValueError):
        sim.sleep(-3)


def test_pool_is_per_simulator():
    sim_a, sim_b = Simulator(), Simulator()

    def worker(sim):
        yield sim.sleep(1)

    sim_a.spawn(worker(sim_a))
    sim_a.run()
    assert sim_a._timeout_pool and not sim_b._timeout_pool
    assert all(t.sim is sim_a for t in sim_a._timeout_pool)
