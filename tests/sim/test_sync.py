"""Tests for process-level synchronization (Barrier, Semaphore, Mutex)."""

import pytest

from repro.sim import Simulator
from repro.sim.sync import Barrier, Mutex, Semaphore


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------
def test_barrier_releases_all_parties_together():
    sim = Simulator()
    barrier = Barrier(sim, parties=3)
    released = []

    def worker(sim, delay):
        yield sim.timeout(delay)
        round_idx = yield from barrier.wait()
        released.append((sim.now, round_idx))

    for delay in (10, 20, 30):
        sim.spawn(worker(sim, delay))
    sim.run()
    assert [t for t, _ in released] == [30, 30, 30]
    assert all(r == 0 for _, r in released)


def test_barrier_is_reusable_across_rounds():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)
    rounds = []

    def worker(sim, jitter):
        for _ in range(3):
            yield sim.timeout(jitter)
            rounds.append((yield from barrier.wait()))

    sim.spawn(worker(sim, 5))
    sim.spawn(worker(sim, 9))
    sim.run()
    assert sorted(rounds) == [0, 0, 1, 1, 2, 2]


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    barrier = Barrier(sim, parties=1)

    def worker(sim):
        r0 = yield from barrier.wait()
        r1 = yield from barrier.wait()
        return r0, r1, sim.now

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == (0, 1, 0)


def test_barrier_waiting_count():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)

    def early(sim):
        yield from barrier.wait()

    sim.spawn(early(sim))
    sim.run()
    assert barrier.waiting == 1


def test_barrier_validation():
    with pytest.raises(ValueError):
        Barrier(Simulator(), parties=0)


# ---------------------------------------------------------------------------
# Semaphore
# ---------------------------------------------------------------------------
def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    active = {"now": 0, "peak": 0}

    def worker(sim):
        yield from sem.acquire()
        active["now"] += 1
        active["peak"] = max(active["peak"], active["now"])
        yield sim.timeout(10)
        active["now"] -= 1
        sem.release()

    for _ in range(6):
        sim.spawn(worker(sim))
    sim.run()
    assert active["peak"] == 2
    assert sem.value == 2


def test_semaphore_fifo_wakeup():
    sim = Simulator()
    sem = Semaphore(sim, value=1)
    order = []

    def worker(sim, tag, delay):
        yield sim.timeout(delay)
        yield from sem.acquire()
        order.append(tag)
        yield sim.timeout(100)
        sem.release()

    for i, tag in enumerate("abc"):
        sim.spawn(worker(sim, tag, i + 1))
    sim.run()
    assert order == ["a", "b", "c"]


def test_semaphore_held_context_releases_on_exception():
    sim = Simulator()
    sem = Semaphore(sim, value=1)

    def failing(sim):
        with (yield from sem.held()):
            yield sim.timeout(1)
            raise RuntimeError("boom")

    def follower(sim):
        with (yield from sem.held()):
            return sim.now

    sim.spawn(failing(sim))
    p = sim.spawn(follower(sim))
    sim.run()
    assert p.ok and p.value == 1
    assert sem.value == 1


def test_semaphore_validation():
    with pytest.raises(ValueError):
        Semaphore(Simulator(), value=-1)


# ---------------------------------------------------------------------------
# Mutex
# ---------------------------------------------------------------------------
def test_mutex_mutual_exclusion():
    sim = Simulator()
    mutex = Mutex(sim)
    timeline = []

    def worker(sim, tag):
        yield from mutex.lock()
        timeline.append((tag, "in", sim.now))
        yield sim.timeout(10)
        timeline.append((tag, "out", sim.now))
        mutex.unlock()

    sim.spawn(worker(sim, "x"))
    sim.spawn(worker(sim, "y"))
    sim.run()
    # Critical sections never overlap.
    assert [e[1] for e in sorted(timeline, key=lambda e: (e[2], e[1] == "in"))] == [
        "in", "out", "in", "out"
    ]


def test_mutex_unlock_unlocked_raises():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(RuntimeError):
        mutex.unlock()
