"""The shared scenario behind the same-seed dispatch-order pin.

A seeded YCSB-B run over the full Gengar pool with a chaos mix layered on
top (ring stalls on both servers, a lossy-link window with retransmits, and
a latency spike).  The kernel determinism contract says the dispatch order
of such a run is a pure function of the seed: every dispatch happens at a
well-defined (time, seq) position regardless of how the event queue is
implemented internally.

``tests/sim/test_dispatch_trace.py`` replays this scenario and compares the
per-dispatch (time, callback) trace against a committed golden fingerprint
captured from the pre-calendar-queue heap kernel — so the slotted-queue
kernel (and any future queue rewrite) is pinned to the exact same total
order the original single-heap implementation produced.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Callable, List, Optional, Tuple

SCENARIO_SEED = 1234

#: Bump only when the *scenario itself* changes (workload shape, fault plan),
#: never to paper over a kernel ordering change.
SCENARIO_VERSION = 1


def run_scenario(install_hook: Optional[Callable] = None):
    """Build the pool, arm the chaos mix, run YCSB-B; returns the simulator.

    ``install_hook(sim)`` is called right after the simulator is created and
    before anything is scheduled, so a dispatch hook can observe the whole
    run including the bootstrap handshake.
    """
    from repro.baselines.common import build_system
    from repro.bench.runner import YcsbRunner
    from repro.faults import FaultPlan, LatencySpike, LossyLink, RingStall
    from repro.sim.kernel import Simulator
    from repro.workloads.ycsb import WORKLOAD_B

    sim = Simulator(seed=SCENARIO_SEED)
    if install_hook is not None:
        install_hook(sim)
    system = build_system("gengar", sim, num_servers=2, num_clients=2)
    plan = FaultPlan.of(
        RingStall(at_ns=60_000, duration_ns=40_000, server_id=0),
        LossyLink(start_ns=90_000, end_ns=160_000, drop_prob=0.2),
        LatencySpike(start_ns=170_000, end_ns=230_000, extra_ns=2_500),
        RingStall(at_ns=240_000, duration_ns=50_000, server_id=1),
    )
    system.pool.inject_faults(plan, rng_name="faults.pin")
    spec = WORKLOAD_B.scaled(record_count=48, value_size=96)
    runner = YcsbRunner(system, spec, num_workers=3, ops_per_worker=90)
    runner.load()
    runner.run()
    return sim


def fingerprint(trace: List[Tuple[int, str]]) -> dict:
    """Stable digest of a dispatch trace.

    The full trace is tens of thousands of entries, so the golden stores a
    hash over the whole (time, callback) sequence plus sparse checkpoints
    for debuggability on mismatch.
    """
    h = sha256()
    for when, name in trace:
        h.update(b"%d:%s;" % (when, name.encode()))
    return {
        "version": SCENARIO_VERSION,
        "seed": SCENARIO_SEED,
        "dispatches": len(trace),
        "sha256": h.hexdigest(),
        "final_time_ns": trace[-1][0] if trace else 0,
        "checkpoints": [
            [i, trace[i][0], trace[i][1]] for i in range(0, len(trace), 2500)
        ],
    }


def callback_name(fn) -> str:
    """A refactor-stable label for a scheduled callback."""
    return getattr(fn, "__qualname__", None) or type(fn).__name__
