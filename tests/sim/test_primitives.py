"""Tests for Event, Timeout, AllOf/AnyOf condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event("ping")
    got = []

    def waiter(sim):
        got.append((yield ev))

    sim.spawn(waiter(sim))
    sim.schedule(5, lambda: ev.succeed("hello"))
    sim.run()
    assert got == ["hello"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim):
        try:
            yield ev
        except IOError as exc:
            return str(exc)

    p = sim.spawn(waiter(sim))
    sim.schedule(1, lambda: ev.fail(IOError("link down")))
    sim.run()
    assert p.value == "link down"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_event_value_access_before_trigger_raises():
    sim = Simulator()
    ev = sim.event("pending")
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_waiting_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # process callbacks so the event is fully processed

    def waiter(sim):
        return (yield ev)

    p = sim.spawn(waiter(sim))
    sim.run()
    assert p.value == "early"
    assert sim.now == 0  # no time passed


def test_callbacks_never_run_inline_with_succeed():
    sim = Simulator()
    ev = sim.event()
    ran = []
    ev.add_callback(lambda e: ran.append(True))
    ev.succeed()
    assert ran == []  # deferred to the loop
    sim.run()
    assert ran == [True]


def test_timeout_value_passthrough():
    sim = Simulator()

    def waiter(sim):
        return (yield sim.timeout(3, value="token"))

    p = sim.spawn(waiter(sim))
    sim.run()
    assert p.value == "token"


def test_timeout_negative_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-5)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    t1, t2, t3 = sim.timeout(10, "a"), sim.timeout(30, "b"), sim.timeout(20, "c")

    def waiter(sim):
        results = yield AllOf(sim, [t1, t2, t3])
        return sorted(results.values()), sim.now

    p = sim.spawn(waiter(sim))
    sim.run()
    values, when = p.value
    assert values == ["a", "b", "c"]
    assert when == 30


def test_any_of_fires_on_first_success():
    sim = Simulator()
    slow, fast = sim.timeout(100, "slow"), sim.timeout(10, "fast")

    def waiter(sim):
        results = yield AnyOf(sim, [slow, fast])
        return list(results.values()), sim.now

    p = sim.spawn(waiter(sim))
    sim.run()
    values, when = p.value
    assert values == ["fast"]
    assert when == 10


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def waiter(sim):
        yield AllOf(sim, [])
        return sim.now

    p = sim.spawn(waiter(sim))
    sim.run()
    assert p.value == 0


def test_all_of_propagates_child_failure():
    sim = Simulator()
    ok = sim.timeout(5)
    bad = sim.event()

    def waiter(sim):
        try:
            yield AllOf(sim, [ok, bad])
        except KeyError:
            return "failed"

    p = sim.spawn(waiter(sim))
    sim.schedule(1, lambda: bad.fail(KeyError("x")))
    sim.run()
    assert p.value == "failed"


def test_condition_rejects_mixed_simulators():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        AllOf(sim_a, [sim_a.timeout(1), sim_b.timeout(1)])


def test_sim_helpers_all_of_any_of():
    sim = Simulator()

    def waiter(sim):
        yield sim.all_of([sim.timeout(1), sim.timeout(2)])
        yield sim.any_of([sim.timeout(50), sim.timeout(5)])
        return sim.now

    p = sim.spawn(waiter(sim))
    sim.run()
    assert p.value == 7
