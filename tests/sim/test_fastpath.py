"""Regression tests for the kernel fast path: exact max_events semantics,
pooled sleep(), and the dispatch counter."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


# ----------------------------------------------------------------------
# max_events: raise exactly at the limit, not one past it
# ----------------------------------------------------------------------
def test_run_allows_exactly_max_events_dispatches():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i, fired.append, i)
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]


def test_run_raises_on_first_dispatch_beyond_limit():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i, fired.append, i)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=4)
    # Exactly 4 ran; the 5th dispatch is the one that raised.
    assert fired == [0, 1, 2, 3]


def test_run_until_complete_allows_exactly_max_events():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1)
        return "done"

    # worker completes in 2 dispatches: bootstrap step, then the timeout
    # firing (whose callback runs the generator to completion).
    p = sim.spawn(worker(sim))
    assert sim.run_until_complete(p, max_events=2) == "done"

    sim2 = Simulator()
    p2 = sim2.spawn(worker(sim2))
    with pytest.raises(SimulationError, match="max_events"):
        sim2.run_until_complete(p2, max_events=1)


def test_max_events_counts_same_timestamp_batch():
    """The guard must fire inside a same-instant dispatch batch too."""
    sim = Simulator()
    for _ in range(10):
        sim.schedule(5, lambda: None)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=7)


# ----------------------------------------------------------------------
# sleep(): pooled timeouts, identical virtual-time semantics
# ----------------------------------------------------------------------
def test_sleep_behaves_like_timeout():
    def drive(use_sleep):
        sim = Simulator(seed=3)
        trace = []

        def worker(sim, tag, delay):
            wait = sim.sleep if use_sleep else sim.timeout
            for _ in range(4):
                yield wait(delay)
                trace.append((tag, sim.now))

        sim.spawn(worker(sim, "a", 10))
        sim.spawn(worker(sim, "b", 7))
        sim.run()
        return trace, sim.now

    assert drive(True) == drive(False)


def test_sleep_delivers_value():
    sim = Simulator()

    def worker(sim):
        got = yield sim.sleep(5, value="payload")
        return got

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == "payload"


def test_sleep_recycles_objects_through_the_pool():
    sim = Simulator()

    def worker(sim):
        for _ in range(50):
            yield sim.sleep(1)

    sim.spawn(worker(sim))
    sim.run()
    # A firing timeout recycles *after* its callback runs (which is where
    # the next sleep() is requested), so sequential sleeps ping-pong between
    # two pooled objects instead of allocating 50.
    assert len(sim._timeout_pool) == 2


def test_sleep_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.sleep(-1)
    # A pooled re-arm must validate too.
    def worker(sim):
        yield sim.sleep(1)

    sim.spawn(worker(sim))
    sim.run()
    with pytest.raises(ValueError):
        sim.sleep(-5)


def test_pooled_sleep_does_not_leak_state_between_uses():
    sim = Simulator()
    seen = []

    def worker(sim):
        first = yield sim.sleep(2, value="one")
        seen.append(first)
        second = yield sim.sleep(3)  # default None must not inherit "one"
        seen.append(second)

    sim.spawn(worker(sim))
    sim.run()
    assert seen == ["one", None]


# ----------------------------------------------------------------------
# total_dispatched
# ----------------------------------------------------------------------
def test_total_dispatched_accumulates_across_runs():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run()
    assert sim.total_dispatched == 2
    sim.schedule(1, lambda: None)
    sim.run()
    assert sim.total_dispatched == 3


def test_total_dispatched_counts_run_until_complete():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1)

    p = sim.spawn(worker(sim))
    sim.run_until_complete(p)
    assert sim.total_dispatched > 0


# ----------------------------------------------------------------------
# Same-timestamp batching must not disturb the `until` contract
# ----------------------------------------------------------------------
def test_run_until_stops_before_later_instant():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(5, fired.append, "early2")
    sim.schedule(10, fired.append, "late")
    assert sim.run(until=7) == 7
    assert fired == ["early", "early2"]
    assert sim.now == 7
    sim.run()
    assert fired == ["early", "early2", "late"]
