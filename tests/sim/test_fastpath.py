"""Regression tests for the kernel fast path: exact max_events semantics,
pooled sleep(), and the dispatch counter."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


# ----------------------------------------------------------------------
# max_events: raise exactly at the limit, not one past it
# ----------------------------------------------------------------------
def test_run_allows_exactly_max_events_dispatches():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i, fired.append, i)
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]


def test_run_raises_on_first_dispatch_beyond_limit():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i, fired.append, i)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=4)
    # Exactly 4 ran; the 5th dispatch is the one that raised.
    assert fired == [0, 1, 2, 3]


def test_run_until_complete_allows_exactly_max_events():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1)
        return "done"

    # worker completes in 2 dispatches: bootstrap step, then the timeout
    # firing (whose callback runs the generator to completion).
    p = sim.spawn(worker(sim))
    assert sim.run_until_complete(p, max_events=2) == "done"

    sim2 = Simulator()
    p2 = sim2.spawn(worker(sim2))
    with pytest.raises(SimulationError, match="max_events"):
        sim2.run_until_complete(p2, max_events=1)


def test_max_events_counts_same_timestamp_batch():
    """The guard must fire inside a same-instant dispatch batch too."""
    sim = Simulator()
    for _ in range(10):
        sim.schedule(5, lambda: None)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=7)


# ----------------------------------------------------------------------
# sleep(): pooled timeouts, identical virtual-time semantics
# ----------------------------------------------------------------------
def test_sleep_behaves_like_timeout():
    def drive(use_sleep):
        sim = Simulator(seed=3)
        trace = []

        def worker(sim, tag, delay):
            wait = sim.sleep if use_sleep else sim.timeout
            for _ in range(4):
                yield wait(delay)
                trace.append((tag, sim.now))

        sim.spawn(worker(sim, "a", 10))
        sim.spawn(worker(sim, "b", 7))
        sim.run()
        return trace, sim.now

    assert drive(True) == drive(False)


def test_sleep_delivers_value():
    sim = Simulator()

    def worker(sim):
        got = yield sim.sleep(5, value="payload")
        return got

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == "payload"


def test_sleep_recycles_objects_through_the_pool():
    sim = Simulator()

    def worker(sim):
        for _ in range(50):
            yield sim.sleep(1)

    sim.spawn(worker(sim))
    sim.run()
    # The pool refills in one batch of _SLEEP_REFILL dormant timeouts when
    # empty; sequential sleeps then ping-pong through that batch (a firing
    # timeout recycles *after* its callback runs, which is where the next
    # sleep() is requested) instead of allocating 50.
    from repro.sim.kernel import _SLEEP_REFILL

    assert len(sim._timeout_pool) == _SLEEP_REFILL


def test_sleep_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.sleep(-1)
    # A pooled re-arm must validate too.
    def worker(sim):
        yield sim.sleep(1)

    sim.spawn(worker(sim))
    sim.run()
    with pytest.raises(ValueError):
        sim.sleep(-5)


def test_pooled_sleep_does_not_leak_state_between_uses():
    sim = Simulator()
    seen = []

    def worker(sim):
        first = yield sim.sleep(2, value="one")
        seen.append(first)
        second = yield sim.sleep(3)  # default None must not inherit "one"
        seen.append(second)

    sim.spawn(worker(sim))
    sim.run()
    assert seen == ["one", None]


# ----------------------------------------------------------------------
# total_dispatched
# ----------------------------------------------------------------------
def test_total_dispatched_accumulates_across_runs():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run()
    assert sim.total_dispatched == 2
    sim.schedule(1, lambda: None)
    sim.run()
    assert sim.total_dispatched == 3


def test_total_dispatched_counts_run_until_complete():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1)

    p = sim.spawn(worker(sim))
    sim.run_until_complete(p)
    assert sim.total_dispatched > 0


# ----------------------------------------------------------------------
# Batched arming APIs must be order-identical to their one-at-a-time forms
# ----------------------------------------------------------------------
def test_schedule_many_matches_sequential_schedule():
    def drive(batched):
        sim = Simulator()
        fired = []
        items = [(5, fired.append, ("a",)), (3, fired.append, ("b",)),
                 (5, fired.append, ("c",)), (0, fired.append, ("d",))]
        if batched:
            sim.schedule_many(items)
        else:
            for delay, fn, args in items:
                sim.schedule(delay, fn, *args)
        sim.run()
        return fired, sim.now

    assert drive(True) == drive(False) == (["d", "b", "a", "c"], 5)


def test_schedule_many_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_many([(1, lambda: None, ()), (-2, lambda: None, ())])


def test_timeout_many_matches_sequential_timeouts():
    def drive(batched):
        sim = Simulator()
        trace = []

        def waiter(sim, ev, tag):
            got = yield ev
            trace.append((sim.now, tag, got))

        delays = [30, 10, 20, 10]
        if batched:
            events = sim.timeout_many(delays, value="v")
        else:
            events = [sim.timeout(d, value="v") for d in delays]
        for i, ev in enumerate(events):
            sim.spawn(waiter(sim, ev, i))
        sim.run()
        return trace, sim.now

    assert drive(True) == drive(False)


def test_spawn_many_matches_sequential_spawns():
    def drive(batched):
        sim = Simulator()
        trace = []

        def worker(sim, tag):
            trace.append(("start", tag, sim.now))
            yield sim.timeout(tag + 1)
            trace.append(("end", tag, sim.now))
            return tag

        gens = [worker(sim, i) for i in range(4)]
        procs = sim.spawn_many(gens) if batched else [sim.spawn(g) for g in gens]
        sim.run()
        return trace, [p.value for p in procs]

    assert drive(True) == drive(False)


def test_spawn_many_rejects_non_generators():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn_many([lambda: None])  # type: ignore[list-item]


# ----------------------------------------------------------------------
# Same-timestamp batching must not disturb the `until` contract
# ----------------------------------------------------------------------
def test_run_until_stops_before_later_instant():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(5, fired.append, "early2")
    sim.schedule(10, fired.append, "late")
    assert sim.run(until=7) == 7
    assert fired == ["early", "early2"]
    assert sim.now == 7
    sim.run()
    assert fired == ["early", "early2", "late"]
