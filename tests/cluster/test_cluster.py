"""Tests for node/cluster construction."""

import pytest

from repro.cluster import Cluster, ClusterSpec, Node, NodeSpec
from repro.hardware.specs import TEST_DRAM, TEST_NVM
from repro.sim import Simulator


def spec(n_servers=2, n_clients=2):
    nodes = []
    for i in range(n_servers):
        nodes.append(NodeSpec(name=f"server{i}", dram=TEST_DRAM, nvm=TEST_NVM))
    for i in range(n_clients):
        nodes.append(NodeSpec(name=f"client{i}", dram=TEST_DRAM, nvm=None))
    return ClusterSpec(nodes=tuple(nodes))


def test_cluster_builds_all_nodes():
    sim = Simulator()
    cluster = Cluster(sim, spec())
    assert len(cluster) == 4
    assert {n.name for n in cluster} == {"server0", "server1", "client0", "client1"}


def test_memory_servers_vs_compute_nodes():
    sim = Simulator()
    cluster = Cluster(sim, spec(n_servers=2, n_clients=3))
    assert [n.name for n in cluster.memory_servers] == ["server0", "server1"]
    assert [n.name for n in cluster.compute_nodes] == ["client0", "client1", "client2"]


def test_server_nodes_have_nvm_clients_do_not():
    sim = Simulator()
    cluster = Cluster(sim, spec())
    assert cluster.node("server0").has_nvm
    assert cluster.node("server0").nvm.is_persistent
    assert not cluster.node("client0").has_nvm


def test_all_nodes_attached_to_fabric():
    sim = Simulator()
    cluster = Cluster(sim, spec())
    for node in cluster:
        assert cluster.fabric.is_attached(node.name)


def test_unknown_node_lookup_raises():
    sim = Simulator()
    cluster = Cluster(sim, spec())
    with pytest.raises(KeyError):
        cluster.node("nope")


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=(
            NodeSpec(name="x", nvm=None),
            NodeSpec(name="x", nvm=None),
        ))


def test_cpu_work_occupies_cores():
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(nodes=(NodeSpec(name="n", nvm=None, cores=2),)))
    node = cluster.node("n")
    done = []

    def worker(sim):
        yield from node.cpu_work(100)
        done.append(sim.now)

    for _ in range(4):
        sim.spawn(worker(sim))
    sim.run()
    assert done == [100, 100, 200, 200]  # 2 cores, two waves


def test_cpu_work_default_duration():
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(nodes=(NodeSpec(name="n", nvm=None, cpu_op_ns=333),)))
    node = cluster.node("n")

    def worker(sim):
        yield from node.cpu_work()
        return sim.now

    p = sim.spawn(worker(sim))
    sim.run()
    assert p.value == 333


def test_nodes_can_rdma_to_each_other():
    """End-to-end: two cluster nodes move bytes over verbs."""
    from repro.rdma import Opcode, WorkRequest, connect

    sim = Simulator()
    cluster = Cluster(sim, spec(n_servers=1, n_clients=1))
    server, client = cluster.node("server0"), cluster.node("client0")
    qp_c, qp_s = connect(client.endpoint, server.endpoint)
    nvm_mr = server.endpoint.register_mr(server.nvm, base=0, length=4096)
    buf = client.endpoint.register_mr(client.dram, base=0, length=4096)
    server.nvm.poke(0, b"persistent bytes")

    def proc(sim):
        wc = yield qp_c.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=buf, length=16,
            remote_rkey=nvm_mr.rkey, remote_offset=0,
        ))
        return wc

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value.ok
    assert buf.peek(0, 16) == b"persistent bytes"
