"""The transactional bank workload: conserved totals under contention.

Each transfer is one two-object transaction, so the pool-wide invariant —
the sum of all balances never changes — holds at every instant a reader
could observe, not just at quiescence.  The test drives three contending
clients, audits the byte-level total, and replays the recorded history
through the strict-serializability checker.
"""

import pytest

from repro.check import check_txn_history
from repro.check.history import HistoryRecorder
from repro.core.errors import TxnAbortedError
from repro.workloads import (
    BankSpec,
    bank_read_balances,
    bank_setup,
    bank_total,
    bank_transfer,
    decode_balance,
    encode_balance,
)
from tests.core.conftest import build_pool, fast_config


def txn_config(**overrides):
    defaults = dict(enable_txn=True, lock_acquire_timeout_ns=120_000)
    defaults.update(overrides)
    return fast_config(**defaults)


def test_spec_validation_and_encoding():
    spec = BankSpec(accounts=4, initial_balance=250)
    assert spec.expected_total == 1000
    with pytest.raises(ValueError):
        BankSpec(accounts=1)
    # Balances are SIGNED: an overdraft must round-trip, since only the
    # total is invariant, not per-account non-negativity.
    for value in (0, 1000, -1, -123456789):
        assert decode_balance(encode_balance(value)) == value


def test_single_transfer_moves_exactly_amount():
    sim, pool = build_pool(seed=1, num_servers=2, num_clients=1,
                           config=txn_config())
    client = pool.clients[0]
    spec = BankSpec(accounts=2, initial_balance=100)

    def app(sim):
        gaddrs = yield from bank_setup(client, spec)
        new_src = yield from bank_transfer(client, gaddrs[0], gaddrs[1], 30)
        balances = yield from bank_read_balances(client, gaddrs)
        return gaddrs, new_src, balances

    ((gaddrs, new_src, balances),) = pool.run(app(sim))
    assert new_src == 70
    assert [balances[g] for g in gaddrs] == [70, 130]
    assert bank_total(balances) == spec.expected_total


def test_contending_transfers_conserve_total_and_serialize():
    sim, pool = build_pool(seed=9, num_servers=2, num_clients=3,
                           config=txn_config())
    recorder = HistoryRecorder(sim)
    recorder.install()
    spec = BankSpec(accounts=8, initial_balance=1000)

    def setup(sim):
        return (yield from bank_setup(pool.clients[0], spec))

    (gaddrs,) = pool.run(setup(sim))

    def worker(client, count, tag):
        rng = sim.rng.stream(f"bank-test.{tag}")

        def proc(sim):
            done = 0
            for _ in range(count):
                i = rng.randrange(spec.accounts)
                j = rng.randrange(spec.accounts - 1)
                if j >= i:
                    j += 1
                amount = 1 + rng.randrange(spec.max_transfer)
                try:
                    yield from bank_transfer(client, gaddrs[i], gaddrs[j],
                                             amount)
                except TxnAbortedError:
                    continue  # clean abort: nothing moved
                done += 1
                yield sim.timeout(1_000 + rng.randrange(2_000))
            return done

        return proc

    counts = pool.run(*(worker(c, 20, c.name)(sim) for c in pool.clients))
    assert sum(counts) > 0

    def audit(sim):
        return (yield from bank_read_balances(pool.clients[0], gaddrs))

    (balances,) = pool.run(audit(sim))
    assert bank_total(balances) == spec.expected_total

    recorder.uninstall()
    res = check_txn_history(recorder.ops)
    assert res.ok, res.violations
    assert res.stats["committed"] == sum(counts)
    assert res.stats["undecided_components"] == 0
