"""Tests for the key-distribution generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    zeta,
)


def test_zeta_known_values():
    assert zeta(1, 0.99) == pytest.approx(1.0)
    assert zeta(2, 0.5) == pytest.approx(1.0 + 2**-0.5)
    # Cache returns identical results.
    assert zeta(1000, 0.99) == zeta(1000, 0.99)


def test_fnv_deterministic_and_spread():
    assert fnv1a_64(42) == fnv1a_64(42)
    hashes = {fnv1a_64(i) for i in range(1000)}
    assert len(hashes) == 1000  # no collisions on small ints


def test_zipfian_draws_in_range():
    gen = ZipfianGenerator(100, 0.99, random.Random(1))
    draws = [gen.next() for _ in range(5000)]
    assert all(0 <= d < 100 for d in draws)


def test_zipfian_is_skewed_toward_low_items():
    gen = ZipfianGenerator(1000, 0.99, random.Random(2))
    counts = Counter(gen.next() for _ in range(20_000))
    top = counts[0]
    median_item = counts.get(500, 0)
    assert top > 50 * max(median_item, 1)
    # Top 10 items take a large share, as zipf(0.99) predicts.
    top10_share = sum(counts[i] for i in range(10)) / 20_000
    assert top10_share > 0.3


def test_lower_theta_is_less_skewed():
    def share_of_top10(theta):
        gen = ZipfianGenerator(1000, theta, random.Random(3))
        counts = Counter(gen.next() for _ in range(20_000))
        return sum(counts[i] for i in range(10)) / 20_000

    assert share_of_top10(0.5) < share_of_top10(0.99)


def test_zipfian_rejects_bad_args():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(0, 0.99, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, 1.5, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, 0.99, None)


def test_scrambled_zipfian_spreads_hot_keys():
    """Hot keys must not be clustered at the low end of the space."""
    gen = ScrambledZipfianGenerator(1000, 0.99, random.Random(4))
    counts = Counter(gen.next() for _ in range(20_000))
    hottest = [k for k, _ in counts.most_common(10)]
    assert max(hottest) > 100  # scattered, not all < 10
    assert all(0 <= d < 1000 for d in counts)


def test_scrambled_zipfian_remains_skewed():
    gen = ScrambledZipfianGenerator(1000, 0.99, random.Random(5))
    counts = Counter(gen.next() for _ in range(20_000))
    top10 = sum(c for _k, c in counts.most_common(10)) / 20_000
    assert top10 > 0.3


def test_uniform_is_roughly_flat():
    gen = UniformGenerator(100, random.Random(6))
    counts = Counter(gen.next() for _ in range(50_000))
    assert len(counts) == 100
    assert max(counts.values()) < 3 * min(counts.values())


def test_latest_favors_recent_items():
    gen = LatestGenerator(1000, 0.99, random.Random(7))
    draws = [gen.next() for _ in range(10_000)]
    assert sum(1 for d in draws if d > 900) > 0.5 * len(draws)
    gen.advance()
    assert gen.max_item == 1000
    assert all(0 <= d <= gen.max_item for d in (gen.next() for _ in range(1000)))


@given(seed=st.integers(0, 1000), n=st.integers(1, 500))
@settings(max_examples=50, deadline=None)
def test_generators_stay_in_range(seed, n):
    rng = random.Random(seed)
    for gen in (
        ZipfianGenerator(n, 0.99, rng),
        ScrambledZipfianGenerator(n, 0.7, rng),
        UniformGenerator(n, rng),
    ):
        for _ in range(50):
            assert 0 <= gen.next() < n


def test_determinism_same_seed_same_stream():
    gen_a = ZipfianGenerator(100, 0.99, random.Random(9))
    gen_b = ZipfianGenerator(100, 0.99, random.Random(9))
    a = [gen_a.next() for _ in range(50)]
    b = [gen_b.next() for _ in range(50)]
    assert a == b
    assert len(set(a)) > 1  # the stream actually varies

def test_zipfian_n2_draws_both_items():
    import random as _r
    from collections import Counter
    from repro.workloads.zipf import ZipfianGenerator
    gen = ZipfianGenerator(2, 0.99, _r.Random(5))
    counts = Counter(gen.next() for _ in range(2000))
    assert set(counts) == {0, 1}
    assert counts[0] > counts[1]  # still skewed

