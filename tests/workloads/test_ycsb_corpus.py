"""Tests for the YCSB workload specs/generator and the text corpus."""

import random
from collections import Counter

import pytest

from repro.workloads.corpus import CorpusGenerator
from repro.workloads.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WORKLOADS,
    Op,
    WorkloadSpec,
    YcsbGenerator,
)


def test_all_core_workloads_present():
    assert set(WORKLOADS) == {"A", "B", "C", "D", "E", "F"}


def test_spec_mixes_sum_to_one():
    for spec in WORKLOADS.values():
        total = (spec.read_prop + spec.update_prop + spec.insert_prop
                 + spec.scan_prop + spec.rmw_prop)
        assert total == pytest.approx(1.0)


def test_invalid_spec_rejected():
    with pytest.raises(ValueError):
        WorkloadSpec(name="X", read_prop=0.5)  # sums to 0.5
    with pytest.raises(ValueError):
        WorkloadSpec(name="X", read_prop=1.0, distribution="pareto")
    with pytest.raises(ValueError):
        WorkloadSpec(name="X", read_prop=1.0, record_count=0)


def test_spec_scaled():
    small = WORKLOAD_A.scaled(record_count=10, value_size=64, zipf_theta=0.5)
    assert small.record_count == 10
    assert small.value_size == 64
    assert small.zipf_theta == 0.5
    assert small.read_prop == WORKLOAD_A.read_prop
    assert WORKLOAD_A.record_count != 10  # frozen original


def mix_of(spec, n=8000, seed=1):
    gen = YcsbGenerator(spec, random.Random(seed))
    return Counter(op for op, _k, _s in gen.ops(n)), gen


def test_workload_a_mix():
    counts, _ = mix_of(WORKLOAD_A)
    assert counts[Op.READ] / 8000 == pytest.approx(0.5, abs=0.03)
    assert counts[Op.UPDATE] / 8000 == pytest.approx(0.5, abs=0.03)


def test_workload_b_mix():
    counts, _ = mix_of(WORKLOAD_B)
    assert counts[Op.READ] / 8000 == pytest.approx(0.95, abs=0.02)
    assert counts[Op.UPDATE] / 8000 == pytest.approx(0.05, abs=0.02)


def test_workload_c_is_read_only():
    counts, _ = mix_of(WORKLOAD_C)
    assert counts[Op.READ] == 8000


def test_workload_d_inserts_grow_keyspace():
    counts, gen = mix_of(WORKLOAD_D)
    assert counts[Op.INSERT] > 0
    assert gen.inserted == WORKLOAD_D.record_count + counts[Op.INSERT]


def test_workload_e_scans_have_lengths():
    gen = YcsbGenerator(WORKLOAD_E, random.Random(2))
    scans = [(k, s) for op, k, s in gen.ops(2000) if op is Op.SCAN]
    assert scans
    assert all(1 <= s <= WORKLOAD_E.max_scan_len for _k, s in scans)


def test_workload_f_has_rmw():
    counts, _ = mix_of(WORKLOAD_F)
    assert counts[Op.RMW] / 8000 == pytest.approx(0.5, abs=0.03)


def test_keys_always_within_live_range():
    gen = YcsbGenerator(WORKLOAD_D.scaled(record_count=50), random.Random(3))
    for op, key, _s in gen.ops(3000):
        assert 0 <= key < gen.inserted


def test_value_bodies_are_deterministic_and_sized():
    gen = YcsbGenerator(WORKLOAD_A.scaled(value_size=100), random.Random(4))
    v1 = gen.value(7, version=1)
    v2 = gen.value(7, version=1)
    assert v1 == v2
    assert len(v1) == 100
    assert gen.value(7, version=2) != v1
    assert gen.value(8, version=1) != v1


def test_zipfian_workload_is_skewed():
    gen = YcsbGenerator(WORKLOAD_C, random.Random(5))
    keys = Counter(k for _op, k, _s in gen.ops(10_000))
    top10 = sum(c for _k, c in keys.most_common(10)) / 10_000
    assert top10 > 0.25


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------
def test_corpus_chunk_sizes():
    gen = CorpusGenerator(vocab_size=100, rng=random.Random(1))
    chunk = gen.chunk(1000)
    assert 900 <= len(chunk) <= 1100
    chunks = gen.chunks(4, 500)
    assert len(chunks) == 4


def test_corpus_words_from_vocab():
    gen = CorpusGenerator(vocab_size=50, rng=random.Random(2))
    vocab = set(gen.vocab)
    for word in gen.chunk(2000).decode().split():
        assert word in vocab


def test_corpus_word_popularity_skewed():
    gen = CorpusGenerator(vocab_size=200, theta=0.9, rng=random.Random(3))
    counts = Counter(gen.words(10_000))
    top = counts.most_common(1)[0][1]
    assert top > 10_000 / 200 * 5  # way above uniform share


def test_corpus_deterministic():
    a = CorpusGenerator(vocab_size=100, rng=random.Random(7)).chunk(500)
    b = CorpusGenerator(vocab_size=100, rng=random.Random(7)).chunk(500)
    assert a == b


def test_corpus_validation():
    with pytest.raises(ValueError):
        CorpusGenerator(vocab_size=0, rng=random.Random(1))
    with pytest.raises(ValueError):
        CorpusGenerator(vocab_size=10, rng=None)
