"""Tests for trace generation, serialization, and open-loop replay."""

import random

import pytest

from repro.apps.kvstore import KvStore
from repro.workloads.traces import (
    TraceError,
    TraceOp,
    TraceReplayer,
    dump_trace,
    generate_trace,
    load_trace,
)

from tests.apps.conftest import boot


# ---------------------------------------------------------------------------
# Records and serialization
# ---------------------------------------------------------------------------
def test_trace_op_roundtrip():
    op = TraceOp(at_ns=123, kind="write", key=7, size=1024)
    assert TraceOp.decode(op.encode()) == op


def test_trace_op_validation():
    with pytest.raises(TraceError):
        TraceOp(at_ns=0, kind="scan", key=0)
    with pytest.raises(TraceError):
        TraceOp(at_ns=-1, kind="read", key=0)
    with pytest.raises(TraceError):
        TraceOp.decode("1 read 2")


def test_dump_load_roundtrip():
    ops = [TraceOp(i * 10, "read" if i % 2 else "write", i, 0 if i % 2 else 64)
           for i in range(20)]
    assert load_trace(dump_trace(ops)) == ops


def test_load_rejects_backwards_time():
    text = "10 read 0 0\n5 read 1 0"
    with pytest.raises(TraceError):
        load_trace(text)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def test_generate_produces_monotone_poisson_stream():
    ops = generate_trace(random.Random(1), duration_ns=1_000_000,
                         mean_interarrival_ns=1000, record_count=100)
    assert len(ops) > 500
    times = [op.at_ns for op in ops]
    assert times == sorted(times)
    kinds = {op.kind for op in ops}
    assert kinds == {"read", "write"}
    reads = sum(1 for op in ops if op.kind == "read")
    assert reads / len(ops) == pytest.approx(0.9, abs=0.05)


def test_generate_bursts_injected():
    ops = generate_trace(random.Random(2), duration_ns=500_000,
                         mean_interarrival_ns=5000, record_count=50,
                         burst_every_ns=100_000, burst_ops=20)
    burst_times = [op.at_ns for op in ops
                   if op.at_ns % 100_000 == 0 and op.kind == "write"]
    assert len(burst_times) >= 20  # at least one full burst landed


def test_generate_validation():
    rng = random.Random(0)
    with pytest.raises(TraceError):
        generate_trace(rng, 0, 100, 10)
    with pytest.raises(TraceError):
        generate_trace(rng, 100, 100, 10, read_fraction=1.5)
    with pytest.raises(TraceError):
        generate_trace(rng, 100, 100, 10, distribution="pareto")


def test_generation_deterministic():
    a = generate_trace(random.Random(7), 100_000, 1000, 20)
    b = generate_trace(random.Random(7), 100_000, 1000, 20)
    assert a == b


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def build_loaded_store(sim, system, n=40, value_size=256):
    store = KvStore(value_size)

    def loader(sim):
        yield from store.load(system.clients[0], range(n),
                              lambda k: bytes([k % 256]) * value_size)

    system.run(loader(sim))
    return store


def test_replay_runs_all_ops_and_measures():
    sim, system = boot(num_servers=1, num_clients=2)
    store = build_loaded_store(sim, system)
    ops = generate_trace(random.Random(3), duration_ns=200_000,
                         mean_interarrival_ns=2_000, record_count=40,
                         value_size=256)
    replayer = TraceReplayer(system.clients, store, value_size=256)
    holder = {}

    def run(sim):
        holder["result"] = yield from replayer.replay(ops)

    system.run(run(sim))
    result = holder["result"]
    assert result.issued == len(ops)
    assert result.elapsed_ns >= ops[-1].at_ns
    assert "read" in result.latency_by_kind
    assert result.max_outstanding >= 1


def test_open_loop_overlaps_requests():
    """A hot open-loop burst drives outstanding ops above one — the thing a
    closed-loop runner cannot do."""
    sim, system = boot(num_servers=1, num_clients=2)
    store = build_loaded_store(sim, system)
    # 30 ops all due at t=0: maximal overlap.
    ops = [TraceOp(at_ns=0, kind="read", key=i % 40, size=0) for i in range(30)]
    replayer = TraceReplayer(system.clients, store, value_size=256)
    holder = {}

    def run(sim):
        holder["result"] = yield from replayer.replay(ops)

    system.run(run(sim))
    assert holder["result"].max_outstanding > 4


def test_replayer_requires_clients():
    with pytest.raises(TraceError):
        TraceReplayer([], None)
