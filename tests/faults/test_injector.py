"""FaultInjector: arming declarative plans against a live pool."""

import pytest

from repro.core import ClientError
from repro.faults import (
    ClientCrash,
    ClientRecover,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    LossyLink,
    MasterCrash,
    MasterRecover,
    ServerCrash,
    ServerRecover,
)

from tests.core.conftest import build_pool, fast_config


def test_rejects_plans_naming_unknown_servers():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    plan = FaultPlan.of(ServerCrash(at_ns=sim.now + 10, server_id=7))
    with pytest.raises(FaultPlanError):
        pool.inject_faults(plan)


def test_rejects_plans_naming_unknown_clients():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    plan = FaultPlan.of(ClientCrash(at_ns=sim.now + 10, client="client9"))
    with pytest.raises(FaultPlanError):
        pool.inject_faults(plan)


def test_rejects_master_faults_without_a_master():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    plan = FaultPlan.of(MasterCrash(at_ns=sim.now + 10))
    with pytest.raises(FaultPlanError):
        FaultInjector(sim, plan, servers=pool.servers).install()


def test_client_crash_recover_plan_executes_on_schedule():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        ClientCrash(at_ns=t0 + 10_000, client="client0"),
        ClientRecover(at_ns=t0 + 30_000, client="client0"),
        MasterCrash(at_ns=t0 + 10_000),
        MasterRecover(at_ns=t0 + 30_000, rebuild=False),
    ))

    def wait(sim):
        yield sim.timeout(20_000)
        mid = (client.crashed, pool.master.node.endpoint.alive)
        yield sim.timeout(20_000)
        return mid, (client.crashed, pool.master.node.endpoint.alive)

    (result,) = pool.run(wait(sim))
    assert result == ((True, False), (False, True))
    m = sim.metrics
    assert m.counter("faults.client_crashes").count == 1
    assert m.counter("faults.client_recoveries").count == 1
    assert m.counter("faults.master_crashes").count == 1
    assert m.counter("faults.master_recoveries").count == 1
    # The server-fault counters asserted by the chaos CI gate stay separate.
    assert m.counter("faults.crashes").count == 0
    assert m.counter("faults.recoveries").count == 0


def test_master_recover_without_rebuild_reopens_for_business():
    """Regression: rebuild=False must still run recovery_process — it is
    the only thing that clears the *recovering* gate.  A master stuck
    recovering forever would hang every client; the documented semantics
    of a no-rebuild recovery are 'forgot everything': serve again with an
    empty directory."""
    sim, pool = build_pool(
        num_servers=1, num_clients=1,
        config=fast_config(auto_reattach=True, retry_max_attempts=8,
                           retry_timeout_ns=10_000))
    client = pool.clients[0]
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        MasterCrash(at_ns=t0 + 5_000),
        MasterRecover(at_ns=t0 + 20_000, rebuild=False),
    ))

    def alloc_through_outage(sim):
        yield sim.timeout(10_000)  # master is down now
        g = yield from client.gmalloc(64)  # retries until the master serves
        return g

    (g,) = pool.run(alloc_through_outage(sim))
    assert g in pool.master.directory
    assert not pool.master._recovering
    assert pool.master.failovers.count == 1
    assert pool.master.journal_replayed.total == 0  # nothing was replayed


def test_rejects_link_faults_without_a_fabric():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    plan = FaultPlan.of(
        LossyLink(start_ns=sim.now, end_ns=sim.now + 10, drop_prob=0.5))
    with pytest.raises(FaultPlanError):
        FaultInjector(sim, plan, servers=pool.servers, master=pool.master)


def test_rejects_faults_timestamped_in_the_past():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    assert sim.now > 0  # bootstrap consumed virtual time
    with pytest.raises(FaultPlanError, match="shifted"):
        pool.inject_faults(FaultPlan.of(ServerCrash(at_ns=0, server_id=0)))


def test_install_is_single_shot():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    injector = pool.inject_faults(
        FaultPlan.of(ServerCrash(at_ns=sim.now + 10, server_id=0)))
    with pytest.raises(FaultPlanError):
        injector.install()


def test_crash_recover_plan_executes_on_schedule():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]
    t0 = sim.now
    pool.inject_faults(FaultPlan.of(
        ServerCrash(at_ns=t0 + 50_000, server_id=0),
        ServerRecover(at_ns=t0 + 150_000, server_id=0),
    ))

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, b"x" * 64)
        yield from client.gsync()
        yield sim.timeout(60_000)  # now inside the outage
        try:
            yield from client.gread(gaddr)
            mid = "ok"
        except ClientError:
            mid = "failed"
        while not pool.servers[0].is_alive:
            yield sim.timeout(10_000)
        yield from client.reattach_server(0)
        data = yield from client.gread(gaddr, length=4)
        return mid, data

    (result,) = pool.run(app(sim))
    mid, data = result
    assert mid == "failed"
    assert data == b"xxxx"
    assert sim.metrics.counter("faults.crashes").count == 1
    assert sim.metrics.counter("faults.recoveries").count == 1


def _lossy_run(seed, drop_prob):
    sim, pool = build_pool(seed=seed, num_servers=1, num_clients=1)
    client = pool.clients[0]
    if drop_prob:
        pool.inject_faults(FaultPlan.of(LossyLink(
            start_ns=sim.now, end_ns=sim.now + 50_000_000,
            drop_prob=drop_prob)))

    def app(sim):
        gaddr = yield from client.gmalloc(128)
        for i in range(20):
            yield from client.gwrite(gaddr, bytes([i]) * 128)
            yield from client.gread(gaddr, length=8)
        yield from client.gsync()

    pool.run(app(sim))
    return sim.now, sim.metrics.counter("fabric.dropped").count


def test_lossy_link_drops_deterministically():
    end_a, drops_a = _lossy_run(seed=42, drop_prob=0.3)
    end_b, drops_b = _lossy_run(seed=42, drop_prob=0.3)
    assert drops_a > 0
    assert (end_a, drops_a) == (end_b, drops_b)


def test_lossy_link_costs_retransmission_time():
    end_clean, drops_clean = _lossy_run(seed=42, drop_prob=0.0)
    end_lossy, drops_lossy = _lossy_run(seed=42, drop_prob=0.3)
    assert drops_clean == 0
    assert drops_lossy > 0
    assert end_lossy > end_clean


def _spiked_read_latency(extra_ns):
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def setup(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, bytes(64))
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    if extra_ns:
        pool.inject_faults(FaultPlan.of(LatencySpike(
            start_ns=sim.now, end_ns=sim.now + 50_000_000, extra_ns=extra_ns)))
    t0 = sim.now

    def read(sim):
        yield from client.gread(gaddr, length=64)

    pool.run(read(sim))
    return sim.now - t0


def test_latency_spike_adds_latency_without_drops():
    base = _spiked_read_latency(0)
    spiked = _spiked_read_latency(5_000)
    # Request and response each cross the fabric at least once.
    assert spiked >= base + 2 * 5_000


def test_link_flap_stalls_traffic_until_the_window_ends():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    client = pool.clients[0]

    def setup(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, b"y" * 64)
        yield from client.gsync()
        return gaddr

    (gaddr,) = pool.run(setup(sim))
    flap_end = sim.now + 200_000
    pool.inject_faults(FaultPlan.of(
        LinkFlap(start_ns=sim.now, end_ns=flap_end, node="server0")))

    def read(sim):
        data = yield from client.gread(gaddr, length=4)
        return data

    (data,) = pool.run(read(sim))
    assert data == b"yyyy"
    # The server never crashed, so the verb survived the flap by
    # retransmitting until the window closed.
    assert sim.now >= flap_end
    assert sim.metrics.counter("fabric.dropped").count > 0


def test_uninstall_detaches_the_fabric_hook():
    sim, pool = build_pool(num_servers=1, num_clients=1)
    injector = pool.inject_faults(FaultPlan.of(LossyLink(
        start_ns=sim.now, end_ns=sim.now + 50_000_000, drop_prob=1.0)))
    injector.uninstall()
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.gwrite(gaddr, bytes(64))
        yield from client.gsync()

    pool.run(app(sim))  # completes: the black hole is gone
    assert sim.metrics.counter("fabric.dropped").count == 0
