"""Validation and algebra of declarative fault plans."""

import pytest

from repro.faults import (
    ClientCrash,
    ClientRecover,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    LossyLink,
    MasterCrash,
    MasterRecover,
    Partition,
    RingStall,
    ServerCrash,
    ServerRecover,
)


def test_of_and_len():
    plan = FaultPlan.of(ServerCrash(at_ns=10, server_id=0))
    assert len(plan) == 1
    assert len(FaultPlan()) == 0


def test_timed_actions_sort_by_time():
    plan = FaultPlan.of(
        ServerRecover(at_ns=300, server_id=0),
        ServerCrash(at_ns=100, server_id=0),
        RingStall(at_ns=200, duration_ns=50, server_id=0),
    )
    assert [f.at_ns for f in plan.timed] == [100, 200, 300]


def test_windows_and_timed_are_partitioned():
    lossy = LossyLink(start_ns=0, end_ns=10, drop_prob=0.5)
    flap = LinkFlap(start_ns=5, end_ns=15, node="server0")
    crash = ServerCrash(at_ns=5, server_id=0)
    plan = FaultPlan.of(lossy, crash, flap)
    assert plan.windows == (lossy, flap)
    assert plan.timed == (crash,)


def test_horizon_covers_the_stall_tail():
    plan = FaultPlan.of(
        RingStall(at_ns=100, duration_ns=500, server_id=0),
        LossyLink(start_ns=0, end_ns=550, drop_prob=0.1),
        ServerCrash(at_ns=590, server_id=0),
    )
    assert plan.horizon_ns == 600  # stall runs until 100 + 500


def test_shifted_moves_every_fault_and_preserves_the_original():
    plan = FaultPlan.of(
        ServerCrash(at_ns=10, server_id=1),
        LossyLink(start_ns=20, end_ns=30, drop_prob=0.5, src="a"),
        Partition(start_ns=40, end_ns=50, group_a=("a",), group_b=("b",)),
    )
    moved = plan.shifted(1_000)
    assert moved.timed[0].at_ns == 1_010
    assert moved.windows[0].start_ns == 1_020
    assert moved.windows[0].end_ns == 1_030
    assert moved.windows[0].src == "a"  # non-time fields ride along
    assert moved.windows[1].group_a == ("a",)
    assert plan.timed[0].at_ns == 10  # plans are immutable


def test_plans_compare_by_value():
    a = FaultPlan.of(ServerCrash(at_ns=1, server_id=0))
    b = FaultPlan.of(ServerCrash(at_ns=1, server_id=0))
    assert a == b


def test_master_and_client_faults_sort_with_the_rest():
    plan = FaultPlan.of(
        ClientRecover(at_ns=400, client="client0"),
        MasterRecover(at_ns=300),
        ClientCrash(at_ns=100, client="client0", tear_inflight=True),
        MasterCrash(at_ns=200),
    )
    assert [f.at_ns for f in plan.timed] == [100, 200, 300, 400]
    moved = plan.shifted(50)
    assert [f.at_ns for f in moved.timed] == [150, 250, 350, 450]
    assert moved.timed[0].client == "client0"  # non-time fields ride along
    assert moved.timed[0].tear_inflight is True
    assert moved.timed[2].rebuild is True  # the default


@pytest.mark.parametrize("bad", [
    ServerCrash(at_ns=-1, server_id=0),
    MasterCrash(at_ns=-1),
    MasterRecover(at_ns=-1),
    ClientCrash(at_ns=10, client=""),      # client fault needs a name
    ClientRecover(at_ns=10, client=""),
    ServerRecover(at_ns=-5, server_id=0),
    RingStall(at_ns=0, duration_ns=0, server_id=0),
    LossyLink(start_ns=10, end_ns=10, drop_prob=0.5),  # empty window
    LossyLink(start_ns=10, end_ns=5, drop_prob=0.5),   # backwards window
    LossyLink(start_ns=0, end_ns=10, drop_prob=0.0),   # dropless lossy link
    LossyLink(start_ns=0, end_ns=10, drop_prob=1.5),
    LatencySpike(start_ns=0, end_ns=10, extra_ns=0),
    Partition(start_ns=0, end_ns=10, group_a=(), group_b=("b",)),
    Partition(start_ns=0, end_ns=10, group_a=("a",), group_b=("a", "b")),
])
def test_rejects_ill_formed_faults(bad):
    with pytest.raises(FaultPlanError):
        FaultPlan.of(bad)


def test_rejects_objects_that_are_not_faults():
    with pytest.raises(FaultPlanError):
        FaultPlan.of("crash please")
