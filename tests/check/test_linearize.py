"""Falsifiability of the linearizability checker on toy histories.

The checker is only worth trusting if it *rejects* broken histories: every
test here hand-builds a minimal history whose verdict is known by
inspection, including the classic stale read, the failed-unlock collapse,
and the epoch-regression zombie.  A checker bug that silently passes
everything would fail half this file.
"""

import pytest

from repro.check import CheckResult, check_history
from repro.check.linearize import Violation


def op(client, kind, key, t0, t1, status="ok", **kw):
    rec = {"id": 0, "client": client, "op": kind, "key": key,
           "t0": t0, "t1": t1, "status": status}
    rec.update(kw)
    return rec


# ----------------------------------------------------------------------
# Register model
# ----------------------------------------------------------------------
def test_clean_register_history_passes():
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c1", "read", 0x10, 20, 30, result="a"),
        op("c0", "write", 0x10, 40, 50, value="b"),
        op("c1", "read", 0x10, 60, 70, result="b"),
    ])
    assert res.ok
    assert res.stats["register_keys"] == 1
    assert res.stats["undecided_keys"] == []


def test_stale_read_is_rejected():
    # b completed strictly before the read began; reading the older a back
    # is the textbook non-linearizable history.
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c0", "write", 0x10, 20, 30, value="b"),
        op("c1", "read", 0x10, 40, 50, result="a"),
    ])
    assert not res.ok
    (v,) = res.violations
    assert v.kind == "linearizability"
    assert v.key == 0x10
    # The minimal counterexample is the whole 3-op prefix: any shorter
    # prefix is trivially linearizable.
    assert len(v.ops) == 3


def test_concurrent_write_makes_the_same_read_legal():
    # Same values, but the read overlaps write b: b may linearize after it.
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c0", "write", 0x10, 20, 60, value="b"),
        op("c1", "read", 0x10, 40, 50, result="a"),
    ])
    assert res.ok


def test_first_read_binds_the_unknown_initial_value():
    # The pool hands out uninitialized memory: two consistent reads of an
    # unwritten key pass, an inconsistent pair fails.
    assert check_history([
        op("c0", "read", 0x10, 0, 10, result="x"),
        op("c1", "read", 0x10, 20, 30, result="x"),
    ]).ok
    res = check_history([
        op("c0", "read", 0x10, 0, 10, result="x"),
        op("c1", "read", 0x10, 20, 30, result="y"),
    ])
    assert not res.ok


def test_indeterminate_write_may_have_landed():
    # The info write's effect is optional: a later read of either value
    # passes, because the abandoned attempt may or may not have landed.
    base = [op("c0", "write", 0x10, 0, 10, value="a"),
            op("c0", "write", 0x10, 20, None, status="info", value="b")]
    assert check_history(base + [op("c1", "read", 0x10, 40, 50, result="b")]).ok
    assert check_history(base + [op("c1", "read", 0x10, 40, 50, result="a")]).ok


def test_failed_write_is_a_definite_no_op():
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c0", "write", 0x10, 20, 30, status="fail", value="b"),
        op("c1", "read", 0x10, 40, 50, result="b"),
    ])
    assert not res.ok  # nothing ever (definitely or maybe) wrote b


def test_keys_are_checked_independently():
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c1", "read", 0x10, 20, 30, result="a"),
        op("c0", "write", 0x20, 0, 10, value="a"),
        op("c0", "write", 0x20, 20, 30, value="b"),
        op("c1", "read", 0x20, 40, 50, result="a"),
    ])
    assert not res.ok
    assert [v.key for v in res.violations] == [0x20]


def test_state_cap_reports_undecided_not_pass():
    # Sixteen pairwise-concurrent writes + a read explode the search; with
    # a one-state budget the key must surface as undecided, never as a
    # silent pass or a fabricated violation.
    ops = [op("c0", "write", 0x10, 0, 1000, value=f"v{i}") for i in range(16)]
    ops.append(op("c1", "read", 0x10, 0, 1000, result="v3"))
    res = check_history(ops, max_states=1)
    assert res.ok and not res.violations
    assert res.stats["undecided_keys"] == [0x10]


# ----------------------------------------------------------------------
# Lock model
# ----------------------------------------------------------------------
def test_clean_lock_history_passes():
    res = check_history([
        op("c0", "lock", 0x10, 0, 10, write=True, epoch=0),
        op("c0", "unlock", 0x10, 20, 30, write=True, epoch=0),
        op("c1", "lock", 0x10, 40, 50, write=True, epoch=0),
        op("c1", "unlock", 0x10, 60, 70, write=True, epoch=0),
    ])
    assert res.ok
    assert res.stats["lock_keys"] == 1


def test_overlapping_exclusive_holds_are_rejected():
    # c0 provably holds [10, 100]; c1 provably holds [50, 60] inside it.
    res = check_history([
        op("c0", "lock", 0x10, 0, 10, write=True, epoch=0),
        op("c1", "lock", 0x10, 40, 50, write=True, epoch=0),
        op("c1", "unlock", 0x10, 60, 70, write=True, epoch=0),
        op("c0", "unlock", 0x10, 100, 110, write=True, epoch=0),
    ])
    assert not res.ok
    (v,) = res.violations
    assert v.kind == "mutual-exclusion"
    assert {rec["client"] for rec in v.ops} == {"c0", "c1"}


def test_two_shared_holds_may_overlap():
    res = check_history([
        op("c0", "lock", 0x10, 0, 10, write=False, epoch=0),
        op("c1", "lock", 0x10, 40, 50, write=False, epoch=0),
        op("c1", "unlock", 0x10, 60, 70, write=False, epoch=0),
        op("c0", "unlock", 0x10, 100, 110, write=False, epoch=0),
    ])
    assert res.ok


def test_failed_unlock_collapses_the_hold_to_a_point():
    # c0's release FAILED (fenced zombie): the master may have recovered
    # the lock any time after the acquire, so c0's hold proves nothing
    # past its ok instant and c1's overlapping hold is legal.
    res = check_history([
        op("c0", "lock", 0x10, 0, 10, write=True, epoch=0),
        op("c1", "lock", 0x10, 40, 50, write=True, epoch=1),
        op("c1", "unlock", 0x10, 60, 70, write=True, epoch=1),
        op("c0", "unlock", 0x10, 100, 110, status="fail",
           write=True, epoch=0),
    ])
    assert res.ok


def test_epoch_regression_is_rejected():
    # A zombie completing a lock op under a retired epoch is exactly the
    # split-brain the fence exists to stop.
    res = check_history([
        op("c0", "lock", 0x10, 0, 10, write=True, epoch=2),
        op("c0", "unlock", 0x10, 20, 30, write=True, epoch=2),
        op("c0", "lock", 0x10, 40, 50, write=True, epoch=1),
    ])
    assert not res.ok
    (v,) = res.violations
    assert v.kind == "epoch-regression"


# ----------------------------------------------------------------------
# Result plumbing
# ----------------------------------------------------------------------
def test_counterexample_dump_roundtrip(tmp_path):
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c0", "write", 0x10, 20, 30, value="b"),
        op("c1", "read", 0x10, 40, 50, result="a"),
    ])
    assert isinstance(res, CheckResult) and not res.ok
    path = tmp_path / "cex.jsonl"
    n = res.dump_counterexample(str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == n + 1  # header line + one line per op
    import json

    header = json.loads(lines[0])
    assert header["violation"] == "linearizability"
    assert header["key"] == 0x10


def test_violation_str_names_key_and_kind():
    v = Violation(key=0x10, kind="mutual-exclusion", detail="d", ops=[{}, {}])
    assert "mutual-exclusion" in str(v)
    assert "0x10" in str(v)
    assert "2 ops" in str(v)


def test_empty_and_keyless_histories_pass():
    assert check_history([]).ok
    assert check_history([op("c0", "sync", None, 0, 10)]).ok


def test_pending_read_constrains_nothing():
    res = check_history([
        op("c0", "write", 0x10, 0, 10, value="a"),
        op("c1", "read", 0x10, 20, None, status="pending", result="zzz"),
        op("c1", "read", 0x10, 40, 50, result="a"),
    ])
    assert res.ok
