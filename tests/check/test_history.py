"""History recorder semantics: ok/fail/info, pay-as-you-go, JSONL I/O."""

from repro.check import HistoryRecorder, load_history
from repro.sim import Simulator

from tests.core.conftest import build_pool, fast_config


def test_recorder_merges_invoke_and_completion():
    sim = Simulator(seed=1)
    rec = HistoryRecorder(sim)
    t_ok = rec.invoke("c0", "write", 0x10, value="a")
    t_fail = rec.invoke("c0", "read", 0x10)
    t_info = rec.invoke("c1", "write", 0x10, value="b")
    t_pending = rec.invoke("c1", "read", 0x20)
    rec.ok(t_ok)
    rec.fail(t_fail, ValueError("boom"))
    rec.info(t_info, TimeoutError("gone"))
    by_status = {r["status"]: r for r in rec.ops}
    assert set(by_status) == {"ok", "fail", "info", "pending"}
    assert by_status["fail"]["error"] == "ValueError"
    assert by_status["info"]["error"] == "TimeoutError"
    assert rec.ops[t_pending]["t1"] is None


def test_encode_is_a_short_stable_digest():
    assert HistoryRecorder.encode(None) == ""
    assert HistoryRecorder.encode(b"abc") == HistoryRecorder.encode(b"abc")
    assert HistoryRecorder.encode(b"abc") != HistoryRecorder.encode(b"abd")
    assert len(HistoryRecorder.encode(b"x" * 4096)) == 16


def test_dump_and_load_roundtrip(tmp_path):
    sim = Simulator(seed=1)
    rec = HistoryRecorder(sim)
    rec.ok(rec.invoke("c0", "write", 0x10, value="a"))
    rec.fail(rec.invoke("c0", "read", 0x10), KeyError("x"))
    path = tmp_path / "history.jsonl"
    assert rec.dump_jsonl(str(path)) == 2
    assert load_history(str(path)) == rec.ops


def test_install_uninstall_toggles_the_sim_hook():
    sim = Simulator(seed=1)
    assert sim.history is None  # zero-cost default: no recorder wired
    rec = HistoryRecorder(sim).install()
    assert sim.history is rec
    rec.uninstall()
    assert sim.history is None
    # Uninstalling a recorder that lost the hook must not clobber the winner.
    rec2 = HistoryRecorder(sim).install()
    rec.uninstall()
    assert sim.history is rec2


def test_pool_ops_record_jepsen_statuses():
    """End to end: a recorded pool run emits invoke-merged ops with the
    Jepsen semantics — ok for effects, fail for failed reads (definite
    no-ops), lock ops carrying their fencing epoch."""
    sim, pool = build_pool(num_servers=1, num_clients=1,
                           config=fast_config(client_lease_ns=100_000))
    client = pool.clients[0]
    rec = HistoryRecorder(sim).install()

    def work(sim):
        gaddr = yield from client.gmalloc(64)
        yield from client.glock(gaddr)
        yield from client.gwrite(gaddr, b"R" * 64)
        yield from client.gunlock(gaddr)
        data = yield from client.gread(gaddr)
        return gaddr, data

    ((gaddr, data),) = pool.run(work(sim))
    rec.uninstall()
    assert data == b"R" * 64

    by_op = {}
    for r in rec.ops:
        by_op.setdefault(r["op"], []).append(r)
    assert set(by_op) >= {"write", "read", "lock", "unlock"}
    for r in rec.ops:
        assert r["status"] == "ok"
        assert r["t1"] is not None and r["t1"] >= r["t0"]
    (write,) = by_op["write"]
    (read,) = by_op["read"]
    assert write["key"] == read["key"] == gaddr
    # Values are digests, and the read observed exactly what was written.
    assert read["result"] == write["value"] == HistoryRecorder.encode(b"R" * 64)
    (lock,) = by_op["lock"]
    assert lock["key"] == gaddr and lock["write"] is True
    assert lock["epoch"] == 0
