"""Falsifiability of the transactional checker on toy histories.

Mirrors ``test_linearize``: every verdict here is known by inspection.
The checker must *accept* clean serializable chains (including ones that
need an indeterminate transaction woven in) and *reject* the classic
breakages — a stale read between transactions, a dirty read of an aborted
transaction's write, and a half-visible multi-key write-set.
"""

import itertools

from repro.check import check_txn_history

_ids = itertools.count()


def txn(client, tid, keys, t0, t1, status="ok"):
    return {"id": next(_ids), "client": client, "op": "txn", "key": None,
            "txn": tid, "keys": list(keys), "t0": t0, "t1": t1,
            "status": status}


def txn_read(client, tid, key, value, t0, t1):
    return {"id": next(_ids), "client": client, "op": "txn_read", "key": key,
            "txn": tid, "offset": 0, "t0": t0, "t1": t1, "status": "ok",
            "result": value}


def txn_write(client, tid, key, value, t0, t1, status="ok"):
    return {"id": next(_ids), "client": client, "op": "txn_write", "key": key,
            "txn": tid, "offset": 0, "t0": t0, "t1": t1, "status": status,
            "value": value}


def plain(client, kind, key, t0, t1, status="ok", **kw):
    rec = {"id": next(_ids), "client": client, "op": kind, "key": key,
           "t0": t0, "t1": t1, "status": status}
    rec.update(kw)
    return rec


def committed(client, tid, keys, t0, t1, reads=(), writes=()):
    """A committed transaction: spanning record + read/write records."""
    recs = [txn(client, tid, keys, t0, t1)]
    for key, value in reads:
        recs.append(txn_read(client, tid, key, value, t0, t1))
    for key, value in writes:
        recs.append(txn_write(client, tid, key, value, t0, t1))
    return recs


K1, K2, K3 = 0x100, 0x200, 0x300


def test_serializable_chain_passes():
    res = check_txn_history(
        committed("c0", "t1", [K1], 0, 10, writes=[(K1, "a")])
        + committed("c1", "t2", [K1], 20, 30,
                    reads=[(K1, "a")], writes=[(K1, "b")])
        + committed("c0", "t3", [K1], 40, 50, reads=[(K1, "b")]))
    assert res.ok
    assert res.stats["txns"] == 3
    assert res.stats["committed"] == 3
    assert res.stats["components"] == 1
    assert res.stats["undecided_components"] == 0


def test_stale_txn_read_is_rejected_with_minimal_prefix():
    # t2's write completed strictly before t3 began, yet t3 reads t1's
    # older value — the transactional stale read.  t4 on a disjoint key
    # is its own component and must stay out of the counterexample.
    ops = (committed("c0", "t1", [K1], 0, 10, writes=[(K1, "a")])
           + committed("c0", "t2", [K1], 20, 30, writes=[(K1, "b")])
           + committed("c1", "t3", [K1], 40, 50, reads=[(K1, "a")])
           + committed("c1", "t4", [K3], 60, 70, writes=[(K3, "z")]))
    res = check_txn_history(ops)
    assert not res.ok
    (v,) = res.violations
    assert v.kind == "txn-serializability"
    witness_txns = {rec["txn"] for rec in v.ops}
    assert witness_txns == {"t1", "t2", "t3"}
    assert res.stats["components"] == 2


def test_dirty_read_of_aborted_write_is_atomicity_violation():
    recs = [txn("c0", "t1", [K1], 0, 30, status="fail"),
            txn_write("c0", "t1", K1, "dirty", 0, 30, status="fail")]
    recs += committed("c1", "t2", [K1], 10, 20, reads=[(K1, "dirty")])
    res = check_txn_history(recs)
    assert not res.ok
    kinds = {v.kind for v in res.violations}
    assert "txn-atomicity" in kinds
    assert res.stats["aborted"] == 1


def test_indeterminate_txn_may_fill_the_gap():
    # t2's client died mid-commit (info): its durable intent MAY have been
    # rolled forward, so t3 reading its value is legal, not a violation.
    recs = (committed("c0", "t1", [K1], 0, 10, writes=[(K1, "a")])
            + [txn("c1", "t2", [K1], 20, 30, status="info"),
               txn_write("c1", "t2", K1, "b", 20, 30, status="info")]
            + committed("c0", "t3", [K1], 40, 50, reads=[(K1, "b")]))
    res = check_txn_history(recs)
    assert res.ok
    assert res.stats["indeterminate"] == 1


def test_plain_ops_join_on_txn_touched_keys_only():
    # The plain write on K1 seeds the value a txn later reads (legal);
    # the plain traffic on K2 never meets a transaction and is ignored
    # here (the register checker owns it).
    recs = ([plain("c0", "write", K1, 0, 10, value="seed"),
             plain("c0", "write", K2, 0, 10, value="noise"),
             plain("c1", "read", K2, 20, 30, result="whatever")]
            + committed("c1", "t1", [K1], 20, 30, reads=[(K1, "seed")]))
    res = check_txn_history(recs)
    assert res.ok
    assert res.stats["txns"] == 1  # singletons aren't counted as txns


def test_half_visible_write_set_is_rejected():
    # t1 committed writes to BOTH keys before t2 began; t2 sees the new
    # K1 but the old K2 — exactly the torn multi-key visibility the
    # intent protocol forbids.
    recs = (committed("c0", "t0", [K1, K2], 0, 5,
                      writes=[(K1, "a0"), (K2, "b0")])
            + committed("c0", "t1", [K1, K2], 10, 20,
                        writes=[(K1, "a1"), (K2, "b1")])
            + committed("c1", "t2", [K1, K2], 30, 40,
                        reads=[(K1, "a1"), (K2, "b0")]))
    res = check_txn_history(recs)
    assert not res.ok
    assert res.violations[0].kind == "txn-serializability"


def test_state_cap_exhaustion_is_undecided_not_guessed():
    recs = committed("c0", "t1", [K1], 0, 10,
                     reads=[(K1, "x")], writes=[(K1, "y")])
    res = check_txn_history(recs, max_states=0)
    assert res.ok  # undecided is reported, never inflated to a violation
    assert res.stats["undecided_components"] == 1
