"""Tests for the multi-user shared log (consistency showcase)."""

import pytest

from repro.apps.sharedlog import SharedLog, SharedLogError

from tests.apps.conftest import boot


def make_log(sim, system, capacity=16, record_size=64):
    holder = {}

    def creator(sim):
        log = yield from SharedLog.create(system.clients[0], capacity, record_size)
        holder["log"] = log

    system.run(creator(sim))
    return holder["log"]


def test_single_client_appends_in_order():
    sim, system = boot(num_servers=1, num_clients=1)
    log = make_log(sim, system)
    client = system.clients[0]

    def app(sim):
        indices = []
        for i in range(5):
            rec = bytes([i]) * 64
            indices.append((yield from log.append(client, rec)))
        records = yield from log.read_all(client)
        return indices, records

    (result,) = system.run(app(sim))
    indices, records = result
    assert indices == [0, 1, 2, 3, 4]
    assert records == [bytes([i]) * 64 for i in range(5)]


def test_concurrent_appenders_never_overwrite():
    """The core multi-user consistency claim: concurrent appends from
    different clients each land in a distinct slot, none lost."""
    sim, system = boot(num_servers=1, num_clients=2)
    log = make_log(sim, system, capacity=30)
    a, b = system.clients
    per_client = 10

    def appender(sim, client, tag):
        got = []
        for i in range(per_client):
            rec = (bytes([tag, i]) + bytes(62))[:64]
            got.append((yield from log.append(client, rec)))
        return got

    idx_a, idx_b = system.run(appender(sim, a, 1), appender(sim, b, 2))
    assert len(set(idx_a) | set(idx_b)) == 2 * per_client  # all distinct

    def check(sim):
        records = yield from log.read_all(a)
        return records

    (records,) = system.run(check(sim))
    assert len(records) == 2 * per_client
    tags = [(r[0], r[1]) for r in records]
    # Every append from both clients is present exactly once.
    assert sorted(tags) == sorted(
        [(1, i) for i in range(per_client)] + [(2, i) for i in range(per_client)]
    )


def test_log_full_raises():
    sim, system = boot(num_servers=1, num_clients=1)
    log = make_log(sim, system, capacity=2)
    client = system.clients[0]

    def app(sim):
        yield from log.append(client, bytes(64))
        yield from log.append(client, bytes(64))
        try:
            yield from log.append(client, bytes(64))
        except SharedLogError:
            return "full"

    (outcome,) = system.run(app(sim))
    assert outcome == "full"


def test_wrong_record_size_rejected():
    sim, system = boot(num_servers=1, num_clients=1)
    log = make_log(sim, system)
    client = system.clients[0]

    def app(sim):
        try:
            yield from log.append(client, b"short")
        except SharedLogError:
            return "ok"

    (outcome,) = system.run(app(sim))
    assert outcome == "ok"


def test_read_index_bounds():
    sim, system = boot(num_servers=1, num_clients=1)
    log = make_log(sim, system, capacity=4)
    client = system.clients[0]

    def app(sim):
        try:
            yield from log.read(client, 99)
        except SharedLogError:
            return "ok"

    (outcome,) = system.run(app(sim))
    assert outcome == "ok"


def test_length_visible_across_clients():
    sim, system = boot(num_servers=1, num_clients=2)
    log = make_log(sim, system)
    a, b = system.clients

    def writer(sim):
        for _ in range(3):
            yield from log.append(a, bytes(64))

    system.run(writer(sim))

    def reader(sim):
        n = yield from log.length(b)
        return n

    (n,) = system.run(reader(sim))
    assert n == 3


def test_create_validation():
    sim, system = boot(num_servers=1, num_clients=1)
    with pytest.raises(SharedLogError):
        next(SharedLog.create(system.clients[0], 0, 64))
