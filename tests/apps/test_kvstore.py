"""Tests for the KV store over various DSHM systems."""

import pytest

from repro.apps.kvstore import KvError, KvStore
from repro.baselines.common import SYSTEM_NAMES

from tests.apps.conftest import boot


def load_store(sim, system, n=20, value_size=256):
    store = KvStore(value_size)
    client = system.clients[0]

    def loader(sim):
        yield from store.load(client, range(n), lambda k: bytes([k % 256]) * value_size)

    system.run(loader(sim))
    return store


def test_load_then_get(gengar2x2):
    sim, system = gengar2x2
    store = load_store(sim, system)
    client = system.clients[1]  # a different client reads

    def reader(sim):
        out = []
        for k in (0, 7, 19):
            out.append((yield from store.get(client, k)))
        return out

    (values,) = system.run(reader(sim))
    for k, v in zip((0, 7, 19), values):
        assert v == bytes([k]) * 256


def test_put_updates_value(gengar2x2):
    sim, system = gengar2x2
    store = load_store(sim, system)
    client = system.clients[0]

    def writer(sim):
        yield from store.put(client, 5, b"\xff" * 256)
        yield from client.gsync()
        data = yield from store.get(client, 5)
        return data

    (data,) = system.run(writer(sim))
    assert data == b"\xff" * 256


def test_scan_returns_key_order(gengar2x2):
    sim, system = gengar2x2
    store = load_store(sim, system, n=30)
    client = system.clients[0]

    def scanner(sim):
        rows = yield from store.scan(client, start_key=10, count=5)
        return rows

    (rows,) = system.run(scanner(sim))
    assert len(rows) == 5
    assert [r[0] for r in rows] == [10, 11, 12, 13, 14]


def test_scan_clips_at_end(gengar2x2):
    sim, system = gengar2x2
    store = load_store(sim, system, n=10)
    client = system.clients[0]

    def scanner(sim):
        rows = yield from store.scan(client, start_key=8, count=10)
        return rows

    (rows,) = system.run(scanner(sim))
    assert len(rows) == 2


def test_rmw_is_atomic_across_clients(gengar2x2):
    sim, system = gengar2x2
    store = load_store(sim, system, n=1, value_size=64)
    a, b = system.clients
    per_client = 10

    def bump(old: bytes) -> bytes:
        value = int.from_bytes(old[:8], "little") + 1
        return value.to_bytes(8, "little") + old[8:]

    def setup(sim):
        yield from store.put(a, 0, bytes(64))
        yield from a.gsync()

    system.run(setup(sim))

    def worker(sim, client):
        for _ in range(per_client):
            yield from store.read_modify_write(client, 0, bump)

    system.run(worker(sim, a), worker(sim, b))

    def check(sim):
        data = yield from store.get(a, 0)
        return int.from_bytes(data[:8], "little")

    (total,) = system.run(check(sim))
    assert total == 2 * per_client


def test_delete_frees_object(gengar2x2):
    sim, system = gengar2x2
    store = load_store(sim, system, n=5)
    client = system.clients[0]

    def deleter(sim):
        yield from store.delete(client, 2)

    system.run(deleter(sim))
    assert 2 not in store
    assert len(store) == 4
    with pytest.raises(KvError):
        store.gaddr_of(2)

    def scanner(sim):
        rows = yield from store.scan(client, start_key=0, count=5)
        return rows

    (rows,) = system.run(scanner(sim))
    assert [r[0] for r in rows] == [0, 1, 3, 4]


def test_errors():
    sim, system = boot(num_servers=1, num_clients=1)
    store = KvStore(64)
    client = system.clients[0]

    def app(sim):
        yield from store.insert(client, 1, bytes(64))
        try:
            yield from store.insert(client, 1, bytes(64))
        except KvError:
            pass
        else:
            raise AssertionError("duplicate insert must fail")
        try:
            yield from store.put(client, 1, bytes(32))
        except KvError:
            return "ok"

    (outcome,) = system.run(app(sim))
    assert outcome == "ok"
    with pytest.raises(ValueError):
        KvStore(0)


@pytest.mark.parametrize("system_name", SYSTEM_NAMES)
def test_kv_roundtrip_on_every_system(system_name):
    """The store behaves identically (functionally) on every comparator."""
    sim, system = boot(name=system_name, num_servers=1, num_clients=2)
    store = KvStore(128)
    writer, reader = system.clients

    def app(sim):
        yield from store.load(writer, range(6), lambda k: bytes([k + 1]) * 128)
        out = []
        for k in range(6):
            out.append((yield from store.get(reader, k)))
        return out

    (values,) = system.run(app(sim))
    assert values == [bytes([k + 1]) * 128 for k in range(6)]
