"""Fixtures for application tests: built systems over the test rig."""

import pytest

from repro.baselines import build_system
from repro.core.config import GengarConfig
from repro.hardware.specs import TEST_DRAM, TEST_NVM
from repro.sim import Simulator
from repro.sim.units import KIB


def app_config(**overrides):
    defaults = dict(
        cache_capacity=512 * KIB,
        epoch_ns=100_000,
        report_every_ops=16,
        proxy_ring_slots=16,
        proxy_slot_size=4 * KIB,
        lock_table_entries=4096,
    )
    defaults.update(overrides)
    return GengarConfig(**defaults)


def boot(name="gengar", seed=1, num_servers=2, num_clients=2, **kw):
    sim = Simulator(seed=seed)
    system = build_system(
        name, sim, num_servers=num_servers, num_clients=num_clients,
        config_overrides=lambda cfg: app_config(
            enable_cache=cfg.enable_cache,
            enable_proxy=cfg.enable_proxy,
            data_in_dram=cfg.data_in_dram,
        ),
        dram=TEST_DRAM, nvm=TEST_NVM, **kw,
    )
    return sim, system


@pytest.fixture
def gengar2x2():
    return boot()
