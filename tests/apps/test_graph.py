"""Tests for distributed PageRank over the pool."""

import random

import networkx as nx
import pytest

from repro.apps.graph import GraphError, PageRankEngine, reference_pagerank

from tests.apps.conftest import boot


def random_graph(n=24, m=80, seed=3):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        src, dst = rng.randrange(n), rng.randrange(n)
        if src != dst:
            edges.add((src, dst))
    return sorted(edges), n


def run_engine(system_name="gengar", iterations=8, num_partitions=3, seed=3):
    sim, system = boot(name=system_name, num_servers=2, num_clients=2)
    edges, n = random_graph(seed=seed)
    engine = PageRankEngine(system.clients, num_partitions=num_partitions)

    def app(sim):
        yield from engine.load(system.clients[0], edges, n)
        ranks = yield from engine.run(iterations=iterations)
        return ranks

    (ranks,) = system.run(app(sim))
    return edges, n, ranks


def test_pagerank_matches_reference_exactly():
    edges, n, ranks = run_engine()
    expected = reference_pagerank(edges, n, iterations=8)
    assert set(ranks) == set(expected)
    for v in ranks:
        assert ranks[v] == pytest.approx(expected[v], rel=1e-12)


def test_pagerank_mass_conserved():
    _edges, _n, ranks = run_engine()
    assert sum(ranks.values()) == pytest.approx(1.0, rel=1e-9)


def test_pagerank_ordering_agrees_with_networkx():
    """Top vertices by our PageRank match networkx's (same damping)."""
    edges, n, ranks = run_engine(iterations=30)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    nx_ranks = nx.pagerank(g, alpha=0.85)
    ours_top = sorted(ranks, key=ranks.get, reverse=True)[:5]
    nx_top = sorted(nx_ranks, key=nx_ranks.get, reverse=True)[:5]
    assert ours_top[0] == nx_top[0]
    assert len(set(ours_top) & set(nx_top)) >= 4


def test_pagerank_same_result_on_every_system():
    _e, _n, gengar_ranks = run_engine("gengar")
    _e, _n, direct_ranks = run_engine("nvm-direct")
    for v in gengar_ranks:
        assert gengar_ranks[v] == pytest.approx(direct_ranks[v], rel=1e-12)


def test_pagerank_handles_dangling_vertices():
    # Vertex 2 has no out-edges: its rank must be redistributed, not lost.
    edges = [(0, 1), (1, 2), (0, 2)]
    sim, system = boot(num_servers=1, num_clients=1)
    engine = PageRankEngine(system.clients, num_partitions=2)

    def app(sim):
        yield from engine.load(system.clients[0], edges, 3)
        ranks = yield from engine.run(iterations=20)
        return ranks

    (ranks,) = system.run(app(sim))
    expected = reference_pagerank(edges, 3, iterations=20)
    for v in ranks:
        assert ranks[v] == pytest.approx(expected[v], rel=1e-12)
    assert sum(ranks.values()) == pytest.approx(1.0, rel=1e-9)
    assert ranks[2] > ranks[1]  # sink of two paths ranks highest


def test_engine_validation():
    sim, system = boot(num_servers=1, num_clients=1)
    with pytest.raises(GraphError):
        PageRankEngine([], num_partitions=2)
    with pytest.raises(GraphError):
        PageRankEngine(system.clients, num_partitions=0)
    with pytest.raises(GraphError):
        PageRankEngine(system.clients, damping=1.5)
    engine = PageRankEngine(system.clients)
    with pytest.raises(GraphError):
        next(engine.run(1))  # no graph loaded

    def bad_edge(sim):
        yield from engine.load(system.clients[0], [(0, 99)], 3)

    with pytest.raises(GraphError):
        system.run(bad_edge(sim))
