"""Tests for the distributed array."""

import pytest

from repro.apps.array import ArrayError, DistributedArray, U64Array

from tests.apps.conftest import boot


def make_array(sim, system, length=40, record_size=32, records_per_block=16):
    holder = {}

    def creator(sim):
        holder["arr"] = yield from DistributedArray.create(
            system.clients[0], length, record_size, records_per_block)

    system.run(creator(sim))
    return holder["arr"]


def test_create_spreads_blocks_across_servers(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, length=64, records_per_block=8)
    assert len(arr.block_gaddrs) == 8
    from repro.core import server_of

    assert {server_of(g) for g in arr.block_gaddrs} == {0, 1}


def test_fresh_array_reads_zero(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system)
    client = system.clients[0]

    def app(sim):
        rec = yield from arr.get(client, 17)
        return rec

    (rec,) = system.run(app(sim))
    assert rec == bytes(32)


def test_set_get_roundtrip_across_blocks(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, length=40, records_per_block=16)
    client = system.clients[0]

    def app(sim):
        for i in (0, 15, 16, 39):  # block boundaries and edges
            yield from arr.set(client, i, bytes([i]) * 32)
        yield from client.gsync()
        out = []
        for i in (0, 15, 16, 39):
            out.append((yield from arr.get(client, i)))
        return out

    (values,) = system.run(app(sim))
    assert values == [bytes([i]) * 32 for i in (0, 15, 16, 39)]


def test_read_range_spans_blocks(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, length=40, records_per_block=16)
    client = system.clients[0]

    def app(sim):
        yield from arr.write_range(
            client, 10, [bytes([i]) * 32 for i in range(10, 30)])
        yield from client.gsync()
        records = yield from arr.read_range(client, 10, 20)
        return records

    (records,) = system.run(app(sim))
    assert records == [bytes([i]) * 32 for i in range(10, 30)]


def test_bulk_read_cheaper_than_pointwise(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, length=64, records_per_block=32)
    client = system.clients[0]

    def app(sim):
        t0 = sim.now
        for i in range(32):
            yield from arr.get(client, i)
        pointwise = sim.now - t0
        t0 = sim.now
        yield from arr.read_range(client, 0, 32)
        bulk = sim.now - t0
        return pointwise, bulk

    (result,) = system.run(app(sim))
    pointwise, bulk = result
    assert bulk < pointwise / 4


def test_bounds_checked(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, length=10)
    client = system.clients[0]
    with pytest.raises(ArrayError):
        next(arr.get(client, 10))
    with pytest.raises(ArrayError):
        next(arr.get(client, -1))
    with pytest.raises(ArrayError):
        next(arr.set(client, 0, b"short"))
    with pytest.raises(ArrayError):
        next(arr.read_range(client, 5, 6))
    with pytest.raises(ArrayError):
        DistributedArray(0, 0, 0, []) if False else None
        next(DistributedArray.create(client, 0, 8))


def test_destroy_frees_blocks(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, length=32, records_per_block=16)
    before = len(system.pool.master.directory)
    client = system.clients[0]

    def app(sim):
        yield from arr.destroy(client)

    system.run(app(sim))
    assert len(system.pool.master.directory) == before - 2
    assert arr.length == 0


def test_u64_array_sum(gengar2x2):
    sim, system = gengar2x2
    client = system.clients[0]
    holder = {}

    def app(sim):
        arr = yield from U64Array.create(client, 100, records_per_block=32)
        yield from arr.fill(client, list(range(100)))
        yield from client.gsync()
        total = yield from arr.sum_range(client)
        partial = yield from arr.sum_range(client, start=10, count=5)
        value = yield from arr.get(client, 99)
        holder["arr"] = arr
        return total, partial, value

    (result,) = system.run(app(sim))
    total, partial, value = result
    assert total == sum(range(100))
    assert partial == 10 + 11 + 12 + 13 + 14
    assert value == 99


def test_u64_array_wraps_like_hardware(gengar2x2):
    sim, system = gengar2x2
    client = system.clients[0]

    def app(sim):
        arr = yield from U64Array.create(client, 4)
        yield from arr.set(client, 0, (1 << 64) + 5)  # wraps to 5
        value = yield from arr.get(client, 0)
        return value

    (value,) = system.run(app(sim))
    assert value == 5


def test_u64_requires_8_byte_records(gengar2x2):
    sim, system = gengar2x2
    arr = make_array(sim, system, record_size=32)
    with pytest.raises(ArrayError):
        U64Array(arr)
