"""Tests for the MapReduce engine and distributed sort."""

import random
from collections import Counter

import pytest

from repro.apps.mapreduce import (
    MapReduceEngine,
    MapReduceError,
    distributed_sort,
    grep_job,
    wordcount_job,
)
from repro.workloads.corpus import CorpusGenerator

from tests.apps.conftest import boot


def run_wordcount(system_name="gengar", num_chunks=4, chunk_bytes=2000, seed=1):
    sim, system = boot(name=system_name, num_servers=2, num_clients=2, seed=seed)
    corpus = CorpusGenerator(vocab_size=100, rng=random.Random(seed))
    chunks = corpus.chunks(num_chunks, chunk_bytes)
    engine = MapReduceEngine(system.clients)

    def job(sim):
        addrs = yield from engine.ingest(system.clients[0], chunks)
        result = yield from engine.run(
            wordcount_job(num_reducers=3), addrs, [len(c) for c in chunks]
        )
        return result

    (result,) = system.run(job(sim))
    return chunks, result


def expected_counts(chunks):
    counts = Counter()
    for chunk in chunks:
        counts.update(chunk.decode().split())
    return dict(counts)


def test_wordcount_produces_exact_counts():
    chunks, result = run_wordcount()
    assert result.output == expected_counts(chunks)


def test_wordcount_timing_structure():
    _chunks, result = run_wordcount()
    assert result.elapsed_ns > 0
    assert result.map_time_ns > 0
    assert result.reduce_time_ns > 0
    assert result.map_time_ns + result.reduce_time_ns <= result.elapsed_ns
    assert result.shuffle_bytes > 0


def test_wordcount_matches_across_systems():
    """Every DSHM system computes the same answer (only timing differs)."""
    chunks_a, res_gengar = run_wordcount("gengar")
    chunks_b, res_direct = run_wordcount("nvm-direct")
    assert chunks_a == chunks_b  # same seed, same corpus
    assert res_gengar.output == res_direct.output


def test_grep_counts_only_matches():
    sim, system = boot(num_servers=1, num_clients=1)
    chunks = [b"aba bab zzz aba", b"zzz aba qqq"]
    engine = MapReduceEngine(system.clients)

    def job(sim):
        addrs = yield from engine.ingest(system.clients[0], chunks)
        result = yield from engine.run(grep_job("ab"), addrs, [len(c) for c in chunks])
        return result

    (result,) = system.run(job(sim))
    assert result.output == {"aba": 3, "bab": 1}


def test_more_mappers_than_clients_round_robins():
    chunks, result = run_wordcount(num_chunks=7)
    assert result.output == expected_counts(chunks)


def test_oversized_chunk_rejected():
    sim, system = boot(num_servers=1, num_clients=1)
    engine = MapReduceEngine(system.clients, max_object_bytes=1024)

    def job(sim):
        yield from engine.ingest(system.clients[0], [b"x" * 2048])

    with pytest.raises(MapReduceError):
        system.run(job(sim))


def test_engine_requires_clients():
    with pytest.raises(MapReduceError):
        MapReduceEngine([])


def test_distributed_sort_sorts():
    sim, system = boot(num_servers=2, num_clients=2)
    rng = random.Random(11)
    records = [rng.randrange(1_000_000) for _ in range(500)]

    def job(sim):
        out = yield from distributed_sort(system.clients, records, num_partitions=4)
        return out

    (result,) = system.run(job(sim))
    ordered, elapsed = result
    assert ordered == sorted(records)
    assert elapsed > 0


def test_distributed_sort_empty():
    sim, system = boot(num_servers=1, num_clients=1)

    def job(sim):
        out = yield from distributed_sort(system.clients, [], num_partitions=2)
        return out

    (result,) = system.run(job(sim))
    assert result == ([], 0)


def test_sort_handles_duplicates_and_skew():
    sim, system = boot(num_servers=1, num_clients=2)
    records = [5] * 100 + [1] * 50 + [9] * 25

    def job(sim):
        out = yield from distributed_sort(system.clients, records, num_partitions=3)
        return out

    (result,) = system.run(job(sim))
    ordered, _ = result
    assert ordered == sorted(records)
