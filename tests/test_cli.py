"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "gengar" in out
    assert "E12" in out
    assert "YCSB" in out


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "demo payload" in out
    assert "virtual time" in out


def test_ycsb_run(capsys):
    assert main(["ycsb", "--workload", "C", "--ops", "40",
                 "--records", "50", "--clients", "1", "--servers", "1"]) == 0
    out = capsys.readouterr().out
    assert "workload=YCSB-C" in out
    assert "throughput" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_experiments_single(capsys):
    assert main(["experiments", "E9"]) == 0
    out = capsys.readouterr().out
    assert "E9" in out and "burst" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
