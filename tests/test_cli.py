"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "gengar" in out
    assert "E12" in out
    assert "YCSB" in out


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "demo payload" in out
    assert "virtual time" in out


def test_ycsb_run(capsys):
    assert main(["ycsb", "--workload", "C", "--ops", "40",
                 "--records", "50", "--clients", "1", "--servers", "1"]) == 0
    out = capsys.readouterr().out
    assert "workload=YCSB-C" in out
    assert "throughput" in out


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_experiments_single(capsys):
    assert main(["experiments", "E9"]) == 0
    out = capsys.readouterr().out
    assert "E9" in out and "burst" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_trace_writes_chrome_json(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    span_path = tmp_path / "spans.jsonl"
    assert main(["trace", "--out", str(out_path), "--spans", str(span_path),
                 "--workload", "B", "--ops", "60", "--records", "64",
                 "--clients", "2", "--servers", "2"]) == 0
    doc = json.loads(out_path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    # Point reads ride doorbell-batched gread_many in the YCSB driver.
    assert "op.gread_many" in names and "op.gwrite" in names
    lines = span_path.read_text().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)
    out = capsys.readouterr().out
    assert "spans" in out and str(out_path) in out


def test_metrics_prometheus_text(capsys):
    assert main(["metrics", "--workload", "B", "--ops", "60",
                 "--records", "64", "--clients", "2", "--servers", "2"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE gengar_" in out
    assert "gengar_" in out and "_total" in out


def test_metrics_json_snapshot(capsys):
    assert main(["metrics", "--format", "json", "--workload", "C",
                 "--ops", "40", "--records", "50",
                 "--clients", "1", "--servers", "1"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["schema"] == 1
    assert "counters" in snap and "histograms" in snap
