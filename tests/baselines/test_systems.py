"""Tests for the comparator systems and the uniform system interface."""

import pytest

from repro.baselines import build_system
from repro.baselines.client_replica import ReplicaClient
from repro.baselines.common import SYSTEM_NAMES
from repro.hardware.specs import TEST_DRAM, TEST_NVM
from repro.sim import Simulator

from tests.apps.conftest import boot


def test_system_registry_names():
    assert set(SYSTEM_NAMES) == {
        "gengar", "cache-only", "proxy-only", "nvm-direct", "dram-only",
        "client-replica",
    }


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        build_system("memcached", Simulator())


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_every_system_boots_and_roundtrips(name):
    sim, system = boot(name=name, num_servers=1, num_clients=1)
    client = system.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(512)
        yield from client.gwrite(gaddr, b"R" * 512)
        data = yield from client.gread(gaddr, length=4)
        return data

    (data,) = system.run(app(sim))
    assert data == b"RRRR"


def test_mechanism_switches_match_system():
    checks = {
        "gengar": (True, True, False),
        "cache-only": (True, False, False),
        "proxy-only": (False, True, False),
        "nvm-direct": (False, False, False),
        "dram-only": (False, False, True),
    }
    for name, (cache, proxy, in_dram) in checks.items():
        sim, system = boot(name=name, num_servers=1, num_clients=1)
        cfg = system.pool.config
        assert cfg.enable_cache == cache, name
        assert cfg.enable_proxy == proxy, name
        assert cfg.data_in_dram == in_dram, name


def test_dram_only_reads_faster_than_nvm_direct():
    def read_latency(name):
        sim, system = boot(name=name, num_servers=1, num_clients=1, seed=5)
        client = system.clients[0]

        def app(sim):
            gaddr = yield from client.gmalloc(4096)
            yield from client.gwrite(gaddr, b"d" * 4096)
            yield from client.gsync()
            t0 = sim.now
            for _ in range(20):
                yield from client.gread(gaddr)
            return (sim.now - t0) / 20

        (avg,) = system.run(app(sim))
        return avg

    assert read_latency("dram-only") < read_latency("nvm-direct")


# ---------------------------------------------------------------------------
# Client-replica baseline specifics
# ---------------------------------------------------------------------------
def test_replica_repeat_reads_are_local():
    sim, system = boot(name="client-replica", num_servers=1, num_clients=1)
    client = system.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.gwrite(gaddr, b"rep" + bytes(1021))
        yield from client.gsync()
        first_t0 = sim.now
        first = yield from client.gread(gaddr, length=3)
        first_dt = sim.now - first_t0
        second_t0 = sim.now
        second = yield from client.gread(gaddr, length=3)
        second_dt = sim.now - second_t0
        return first, first_dt, second, second_dt

    (result,) = system.run(app(sim))
    first, first_dt, second, second_dt = result
    assert first == second == b"rep"
    assert second_dt < first_dt / 2  # replica hit is near-local


def test_replica_lease_expiry_forces_refetch():
    sim, system = boot(name="client-replica", num_servers=1, num_clients=2)
    a, b = system.clients

    def app(sim):
        gaddr = yield from a.gmalloc(128)
        yield from a.gwrite(gaddr, b"v1" + bytes(126))
        yield from a.gsync()
        stale = yield from b.gread(gaddr, length=2)  # b caches v1
        yield from a.gwrite(gaddr, b"v2" + bytes(126))
        yield from a.gsync()
        within_lease = yield from b.gread(gaddr, length=2)
        yield sim.timeout(b.lease_ns + 1)
        after_lease = yield from b.gread(gaddr, length=2)
        return stale, within_lease, after_lease

    (result,) = system.run(app(sim))
    stale, within_lease, after_lease = result
    assert stale == b"v1"
    assert within_lease == b"v1"  # lease-bounded staleness, by design
    assert after_lease == b"v2"


def test_replica_locks_give_coherence():
    """Under locks, the replica baseline must be coherent (replica dropped)."""
    sim, system = boot(name="client-replica", num_servers=1, num_clients=2)
    a, b = system.clients

    def app(sim):
        gaddr = yield from a.gmalloc(128)
        yield from a.gwrite(gaddr, b"v1" + bytes(126))
        yield from a.gsync()
        _ = yield from b.gread(gaddr, length=2)  # b caches v1
        yield from a.glock(gaddr)
        yield from a.gwrite(gaddr, b"v2" + bytes(126))
        yield from a.gunlock(gaddr)
        yield from b.glock(gaddr, write=False)
        fresh = yield from b.gread(gaddr, length=2)
        yield from b.gunlock(gaddr, write=False)
        return fresh

    (fresh,) = system.run(app(sim))
    assert fresh == b"v2"


def test_replica_capacity_evicts_lru():
    sim, system = boot(name="client-replica", num_servers=1, num_clients=1)
    client = system.clients[0]
    client.capacity_bytes = 2048  # room for two 1 KiB objects

    def app(sim):
        addrs = []
        for i in range(3):
            g = yield from client.gmalloc(1024)
            yield from client.gwrite(g, bytes([i]) * 1024)
            addrs.append(g)
        yield from client.gsync()
        for g in addrs:
            yield from client.gread(g)
        return addrs

    (addrs,) = system.run(app(sim))
    assert len(client._replicas) == 2
    assert addrs[0] not in client._replicas  # LRU victim
    assert addrs[2] in client._replicas


def test_replica_validation():
    sim, system = boot(name="gengar", num_servers=1, num_clients=1)
    with pytest.raises(ValueError):
        ReplicaClient(system.clients[0], lease_ns=0)
    with pytest.raises(ValueError):
        ReplicaClient(system.clients[0], capacity_bytes=0)
