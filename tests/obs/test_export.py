"""Golden tests for the exporters: Chrome trace shape, Prometheus
round-trip, and the versioned snapshot / API key pins."""

import json

import pytest

from repro.core import GengarPool
from repro.obs import (
    SNAPSHOT_SCHEMA,
    chrome_trace,
    parse_prometheus,
    prometheus_text,
    registry_snapshot,
    spans_jsonl,
)
from repro.obs.spans import SpanRecorder
from repro.sim import Simulator


@pytest.fixture()
def recorder():
    sim = Simulator()
    rec = SpanRecorder(sim)
    rec.record("client0", "op.gread", 100, end_ns=350, op=1, gaddr="0x10")
    rec.record("server1", "srv.drain", 200, end_ns=900, bytes=64, torn=False)
    rec.record("master", "master.plan_epoch", 0, end_ns=50, server=0,
               promotions=2, demotions=1)
    return rec


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def test_chrome_trace_schema_shape(recorder):
    doc = chrome_trace(recorder)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["spans_logged"] == 3
    assert doc["otherData"]["spans_dropped"] == 0

    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    ms = [e for e in events if e["ph"] == "M"]
    assert len(xs) == 3
    # One process_name + (thread_name, thread_sort_index) per track.
    assert sum(1 for e in ms if e["name"] == "process_name") == 1
    assert sum(1 for e in ms if e["name"] == "thread_name") == 3
    assert sum(1 for e in ms if e["name"] == "thread_sort_index") == 3
    for e in xs:
        assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert isinstance(e["ts"], float) and isinstance(e["dur"], float)
    # The whole document must be JSON-serializable (what Perfetto loads).
    json.loads(json.dumps(doc))


def test_chrome_trace_ns_to_us_conversion(recorder):
    doc = chrome_trace(recorder)
    gread = next(e for e in doc["traceEvents"]
                 if e.get("name") == "op.gread" and e["ph"] == "X")
    assert gread["ts"] == pytest.approx(0.1)  # 100 ns -> 0.1 us
    assert gread["dur"] == pytest.approx(0.25)  # 250 ns -> 0.25 us
    assert gread["cat"] == "op"
    assert gread["args"] == {"gaddr": "0x10", "op": 1}


def test_chrome_trace_track_order_master_first(recorder):
    doc = chrome_trace(recorder)
    names = {e["tid"]: e["args"]["name"]
             for e in doc["traceEvents"] if e.get("name") == "thread_name"}
    ordered = [names[tid] for tid in sorted(names)]
    assert ordered == ["master", "server1", "client0"]


def test_chrome_trace_empty_recorder():
    doc = chrome_trace(SpanRecorder(Simulator()))
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]  # process_name only


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_spans_jsonl_one_object_per_line(recorder):
    text = spans_jsonl(recorder)
    lines = text.splitlines()
    assert len(lines) == 3
    rows = [json.loads(line) for line in lines]
    assert rows[0]["name"] == "op.gread"
    assert rows[0]["fields"] == {"gaddr": "0x10"}
    assert all({"track", "name", "start_ns", "end_ns"} <= set(r)
               for r in rows)
    assert spans_jsonl(SpanRecorder(Simulator())) == ""


# ----------------------------------------------------------------------
# Prometheus text
# ----------------------------------------------------------------------
def test_prometheus_round_trip():
    sim = Simulator()
    c = sim.metrics.counter("pool.reads")
    c.add(3.0)
    c.add(5.0)
    h = sim.metrics.histogram("pool.read_latency")
    for v in (100.0, 200.0, 300.0):
        h.record(v)
    lvl = sim.metrics.level("server0.ring_occupancy")
    lvl.update(4.0)

    text = prometheus_text(sim.metrics)
    samples = parse_prometheus(text)

    assert samples["gengar_pool_reads_total"] == 2
    assert samples["gengar_pool_reads_sum"] == 8
    assert samples['gengar_pool_read_latency{quantile="0.5"}'] == 200
    assert samples['gengar_pool_read_latency{quantile="0.99"}'] == 300
    assert samples["gengar_pool_read_latency_count"] == 3
    assert samples["gengar_pool_read_latency_sum"] == 600
    assert samples["gengar_server0_ring_occupancy"] == 4
    assert samples["gengar_server0_ring_occupancy_peak"] == 4
    # Every emitted sample line parses; TYPE lines cover each family.
    assert "# TYPE gengar_pool_reads_total counter" in text
    assert "# TYPE gengar_pool_read_latency summary" in text
    assert "# TYPE gengar_server0_ring_occupancy gauge" in text


def test_prometheus_name_sanitization():
    sim = Simulator()
    sim.metrics.counter("client0->server1.rtt").add()
    samples = parse_prometheus(prometheus_text(sim.metrics))
    assert "gengar_client0__server1_rtt_total" in samples


def test_prometheus_empty_registry():
    assert prometheus_text(Simulator().metrics) == ""
    assert parse_prometheus("") == {}


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("no_space_separated_value")


# ----------------------------------------------------------------------
# Versioned snapshot + public API key pins
# ----------------------------------------------------------------------
def test_registry_snapshot_schema():
    sim = Simulator()
    sim.metrics.counter("pool.reads").add(2.0)
    sim.metrics.histogram("pool.read_latency").record(10.0)
    sim.metrics.level("depth").update(1.0)
    snap = registry_snapshot(sim.metrics)
    assert snap["schema"] == SNAPSHOT_SCHEMA == 1
    assert set(snap) == {"schema", "virtual_time_ns", "counters",
                         "histograms", "levels"}
    assert snap["counters"]["pool.reads"] == {"count": 1, "total": 2.0}
    assert set(snap["histograms"]["pool.read_latency"]) == {
        "count", "mean", "min", "max", "p50", "p90", "p99"}
    assert set(snap["levels"]["depth"]) == {"level", "avg", "peak"}
    json.loads(json.dumps(snap))


def _tiny_pool():
    sim = Simulator(seed=3)
    pool = GengarPool.build(sim, num_servers=1, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(256)
        yield from client.gwrite(gaddr, bytes(256))
        yield from client.gread(gaddr)
        yield from client.gsync()

    pool.run(app(sim))
    return pool


def test_metrics_snapshot_keys_pinned():
    snap = _tiny_pool().metrics_snapshot()
    assert set(snap) == {
        "reads", "writes", "cache_hits", "cache_hit_ratio",
        "proxy_writes", "direct_writes",
        "read_latency_mean_ns", "write_latency_mean_ns",
    }
    assert snap["reads"] == 1 and snap["writes"] == 1


def test_describe_keys_pinned():
    desc = _tiny_pool().describe()
    assert {"virtual_time_ns", "objects", "master", "servers",
            "clients", "locks"} <= set(desc)
    assert {"allocations", "reports", "promotions", "demotions",
            "crashes"} <= set(desc["master"])
    (server,) = desc["servers"].values()
    assert {"alive", "cached_objects", "cache_used_bytes",
            "drained_writes", "promotions", "demotions"} <= set(server)
    (client,) = desc["clients"].values()
    assert {"uid", "pending_overlay_writes", "fence_epoch",
            "fenced"} <= set(client)
