"""Zero-cost-when-off guards for the observability layer.

Three properties are pinned here:

1. With instrumentation off (``sim.spans is None``, ``sim.tracer is None``)
   the hot paths never construct a Span, call SpanRecorder.record, or build
   a trace message — proven by making all three explode and running anyway.
2. Installing the span recorder does not move virtual time: the simulation
   schedule is bit-identical with and without instrumentation.
3. The uninstrumented small-YCSB virtual time matches the committed
   BENCH_perf.json "current" capture exactly.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.baselines.common import build_system
from repro.bench.runner import YcsbRunner
from repro.sim import Simulator
from repro.workloads.ycsb import WORKLOAD_B

REPO_ROOT = Path(__file__).resolve().parents[2]

TRACE_CONSUMERS = (
    "repro.core.client",
    "repro.core.server",
    "repro.core.master",
    "repro.core.consistency",
    "repro.faults.injector",
)


def _run_ycsb(instrument: bool, seed: int = 42, ops: int = 80):
    sim = Simulator(seed=seed)
    system = build_system("gengar", sim, num_servers=2, num_clients=2)
    if instrument:
        obs.install(sim)
    spec = WORKLOAD_B.scaled(record_count=64, value_size=128)
    runner = YcsbRunner(system, spec, num_workers=2, ops_per_worker=ops)
    runner.load()
    result = runner.run()
    return sim, result


def _boom(*args, **kwargs):
    raise AssertionError("instrumentation touched on the disabled path")


def test_disabled_path_never_builds_spans_or_trace_strings(monkeypatch):
    monkeypatch.setattr("repro.obs.spans.Span.__init__", _boom)
    monkeypatch.setattr("repro.obs.spans.SpanRecorder.record", _boom)
    for mod in TRACE_CONSUMERS:
        monkeypatch.setattr(f"{mod}.trace", _boom)
    sim, result = _run_ycsb(instrument=False)
    assert sim.spans is None and sim.tracer is None
    assert result.total_ops == 160


def test_disabled_chaos_path_never_builds_spans(monkeypatch):
    from repro.bench.chaos import ChaosSoak

    monkeypatch.setattr("repro.obs.spans.SpanRecorder.record", _boom)
    for mod in TRACE_CONSUMERS:
        monkeypatch.setattr(f"{mod}.trace", _boom)
    soak = ChaosSoak(seed=7, smoke=True)
    report = soak.run()
    assert soak.recorder is None
    assert report["ops_ok"] > 0


def test_instrumentation_does_not_move_virtual_time():
    sim_off, res_off = _run_ycsb(instrument=False)
    sim_on, res_on = _run_ycsb(instrument=True)
    assert sim_on.spans is not None and len(sim_on.spans) > 0
    assert sim_on.now == sim_off.now
    assert res_on.total_ops == res_off.total_ops
    assert res_on.throughput_ops_s == res_off.throughput_ops_s


def test_virtual_time_matches_committed_perf_capture():
    bench = REPO_ROOT / "BENCH_perf.json"
    if not bench.exists():  # pragma: no cover - fresh checkout without capture
        pytest.skip("no BENCH_perf.json capture in this checkout")
    current = json.loads(bench.read_text())["current"]["ycsb_small"]
    sim = Simulator(seed=42)
    system = build_system("gengar", sim, num_servers=2, num_clients=2)
    spec = WORKLOAD_B.scaled(record_count=current["record_count"],
                             value_size=128)
    runner = YcsbRunner(system, spec,
                        num_workers=current["num_workers"],
                        ops_per_worker=current["ops_per_worker"])
    runner.load()
    runner.run()
    assert sim.now == current["virtual_time_ns"]
