"""Span recording: unit behaviour plus the YCSB-B smoke contract.

The smoke test is the acceptance gate for the observability layer: one
instrumented YCSB-B run must surface read-hit, read-miss, proxy-write, and
drain spans, each phase correlated to its parent op.
"""

import pytest

from repro import obs
from repro.baselines.common import build_system
from repro.bench.runner import YcsbRunner
from repro.obs.spans import SpanRecorder
from repro.sim import Simulator
from repro.workloads.ycsb import WORKLOAD_B


# ----------------------------------------------------------------------
# Recorder unit behaviour
# ----------------------------------------------------------------------
def test_record_feeds_histogram_and_log():
    sim = Simulator()
    rec = SpanRecorder(sim)
    rec.record("client0", "op.gread", 0, end_ns=250, op=1, gaddr="0x10")
    h = sim.metrics.histogram("span.op.gread")
    assert h.count == 1 and h.mean == 250.0
    (span,) = rec.spans
    assert span.track == "client0"
    assert span.duration_ns == 250
    assert span.fields == {"gaddr": "0x10"}
    assert span.to_dict() == {
        "track": "client0", "name": "op.gread",
        "start_ns": 0, "end_ns": 250, "op": 1,
        "fields": {"gaddr": "0x10"},
    }


def test_end_defaults_to_now():
    sim = Simulator()
    rec = SpanRecorder(sim)

    def proc(sim):
        start = sim.now
        yield sim.timeout(40)
        rec.record("t", "phase.x", start)

    sim.spawn(proc(sim))
    sim.run()
    assert rec.spans[0].end_ns == 40


def test_capacity_bounds_span_log_not_histograms():
    sim = Simulator()
    rec = SpanRecorder(sim, capacity=2)
    for i in range(5):
        rec.record("t", "phase.x", 0, end_ns=i)
    assert len(rec) == 2
    assert rec.dropped == 3
    assert rec.recorded == 5
    # Histograms keep counting past the log bound.
    assert sim.metrics.histogram("span.phase.x").count == 5


def test_keep_spans_false_only_histograms():
    sim = Simulator()
    rec = SpanRecorder(sim, keep_spans=False)
    rec.record("t", "phase.x", 0, end_ns=10)
    assert len(rec) == 0
    assert sim.metrics.histogram("span.phase.x").count == 1


def test_next_op_is_monotonic():
    rec = SpanRecorder(Simulator())
    assert [rec.next_op() for _ in range(3)] == [1, 2, 3]


def test_by_name_names_tracks_clear():
    sim = Simulator()
    rec = SpanRecorder(sim)
    rec.record("a", "op.gread", 0, end_ns=1)
    rec.record("b", "op.gread", 0, end_ns=2)
    rec.record("a", "op.gwrite", 0, end_ns=3)
    assert len(rec.by_name("op.gread")) == 2
    assert rec.names() == {"op.gread": 2, "op.gwrite": 1}
    assert rec.tracks() == ["a", "b"]
    rec.clear()
    assert len(rec) == 0 and rec.tracks() == []


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SpanRecorder(Simulator(), capacity=0)


def test_install_honors_kill_switch(monkeypatch):
    sim = Simulator()
    monkeypatch.setattr("repro.obs.spans.ENABLED", False)
    assert obs.install(sim) is None
    assert sim.spans is None
    monkeypatch.setattr("repro.obs.spans.ENABLED", True)
    rec = obs.install(sim)
    assert rec is not None and sim.spans is rec


# ----------------------------------------------------------------------
# The instrumented YCSB-B smoke contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ycsb_b_recorder():
    sim = Simulator(seed=42)
    system = build_system("gengar", sim, num_servers=2, num_clients=2)
    recorder = obs.install(sim)
    spec = WORKLOAD_B.scaled(record_count=64, value_size=128)
    runner = YcsbRunner(system, spec, num_workers=2, ops_per_worker=250)
    runner.load()
    runner.run()
    return recorder


def test_smoke_has_op_spans(ycsb_b_recorder):
    names = ycsb_b_recorder.names()
    # The YCSB driver batches read runs, so point reads surface as
    # op.gread_many doorbell batches.
    assert names.get("op.gread_many", 0) > 0
    assert names.get("op.gwrite", 0) > 0


def test_smoke_has_read_hit_and_miss_phases(ycsb_b_recorder):
    cache_reads = ycsb_b_recorder.by_name("phase.cache_read")
    hits = [s for s in cache_reads if s.fields and s.fields.get("hit")]
    assert hits, "expected at least one DRAM cache read hit"
    # Read misses go to the NVM home copy.
    assert ycsb_b_recorder.by_name("phase.nvm_read")


def test_smoke_has_proxy_write_and_drain_spans(ycsb_b_recorder):
    assert ycsb_b_recorder.by_name("phase.proxy_stage")
    drains = ycsb_b_recorder.by_name("srv.drain")
    assert drains
    assert all(s.track.startswith("server") for s in drains)
    assert all(s.fields and s.fields.get("torn") is False for s in drains)


def test_smoke_phases_correlate_to_parent_ops(ycsb_b_recorder):
    parents = (ycsb_b_recorder.by_name("op.gread")
               + ycsb_b_recorder.by_name("op.gread_many"))
    op_ids = {s.op for s in parents}
    child_ids = {s.op for s in ycsb_b_recorder.by_name("phase.nvm_read")}
    assert child_ids, "nvm reads must carry their parent op id"
    assert child_ids <= op_ids
    # Phases land inside their parent op's interval.
    by_op = {s.op: s for s in parents}
    for child in ycsb_b_recorder.by_name("phase.nvm_read"):
        parent = by_op[child.op]
        assert parent.start_ns <= child.start_ns
        assert child.end_ns <= parent.end_ns


def test_smoke_has_pipelining_and_prefetch_spans(ycsb_b_recorder):
    names = ycsb_b_recorder.names()
    # Doorbell-batched reads drain their in-flight completions...
    assert names.get("phase.pipeline_wait", 0) > 0
    # ...and the hotness-driven prefetch pump issues promotion requests.
    assert names.get("phase.prefetch", 0) > 0


def test_smoke_rpc_and_master_spans_present(ycsb_b_recorder):
    names = ycsb_b_recorder.names()
    assert any(n.startswith("rpc.") for n in names)
    assert names.get("srv.promote_copy", 0) > 0


def test_smoke_histograms_match_span_log(ycsb_b_recorder):
    sim = ycsb_b_recorder.sim
    for name, count in ycsb_b_recorder.names().items():
        h = sim.metrics.histogram("span." + name)
        # dropped == 0 in this run, so log and histogram counts agree.
        assert h.count == count
