"""Property tests for the verbs layer: random op sequences vs shadow memory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma import Opcode, WorkRequest

from tests.rdma.conftest import Rig

REGION = 8192

_op = st.one_of(
    st.tuples(st.just("write"),
              st.integers(0, REGION - 1), st.binary(min_size=1, max_size=600)),
    st.tuples(st.just("read"),
              st.integers(0, REGION - 1), st.integers(1, 600)),
)


@given(ops=st.lists(_op, min_size=1, max_size=25), seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_random_one_sided_ops_match_shadow(ops, seed):
    """Sequential one-sided READ/WRITEs behave exactly like local memory."""
    rig = Rig(seed=seed)
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=REGION)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=REGION)
    shadow = bytearray(REGION)

    def driver(sim):
        for op in ops:
            if op[0] == "write":
                _, offset, data = op
                data = data[: REGION - offset]
                if not data:
                    continue
                if len(data) <= 220:
                    wr = WorkRequest(opcode=Opcode.RDMA_WRITE, inline_data=data,
                                     remote_rkey=remote.rkey, remote_offset=offset)
                else:
                    local.poke(0, data)
                    wr = WorkRequest(opcode=Opcode.RDMA_WRITE, local_mr=local,
                                     local_offset=0, length=len(data),
                                     remote_rkey=remote.rkey, remote_offset=offset)
                wc = yield rig.qp_a.post_send(wr)
                assert wc.ok
                shadow[offset : offset + len(data)] = data
            else:
                _, offset, length = op
                length = min(length, REGION - offset)
                if length <= 0:
                    continue
                wc = yield rig.qp_a.post_send(WorkRequest(
                    opcode=Opcode.RDMA_READ, local_mr=local, local_offset=0,
                    length=length, remote_rkey=remote.rkey, remote_offset=offset,
                ))
                assert wc.ok
                got = local.peek(0, length)
                assert got == bytes(shadow[offset : offset + length])

    rig.run(driver(rig.sim))
    # Final full-region audit.
    assert remote.peek(0, REGION) == bytes(shadow)


@given(
    adds=st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=15),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_faa_sequence_sums_mod_2_64(adds, seed):
    rig = Rig(seed=seed)
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)

    def driver(sim):
        running = 0
        for add in adds:
            wc = yield rig.qp_a.post_send(WorkRequest(
                opcode=Opcode.ATOMIC_FAA, remote_rkey=mr.rkey,
                remote_offset=0, add=add,
            ))
            assert wc.atomic_value == running
            running = (running + add) % (1 << 64)

    rig.run(driver(rig.sim))
    assert mr.read_u64(0) == sum(adds) % (1 << 64)


@given(values=st.lists(st.integers(0, 2**63), min_size=1, max_size=10),
       seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_cas_chain_swaps_only_on_match(values, seed):
    rig = Rig(seed=seed)
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)

    def driver(sim):
        current = 0
        for value in values:
            # Matching CAS takes effect...
            wc = yield rig.qp_a.post_send(WorkRequest(
                opcode=Opcode.ATOMIC_CAS, remote_rkey=mr.rkey,
                remote_offset=0, compare=current, swap=value,
            ))
            assert wc.atomic_value == current
            current = value
            # ...a stale CAS never does.
            wc = yield rig.qp_a.post_send(WorkRequest(
                opcode=Opcode.ATOMIC_CAS, remote_rkey=mr.rkey,
                remote_offset=0, compare=current + 1, swap=12345,
            ))
            assert wc.atomic_value == current

    rig.run(driver(rig.sim))
    assert mr.read_u64(0) == values[-1]
