"""Edge-case tests for completion queues and QP ordering semantics."""

from repro.rdma import Opcode, WorkRequest
from repro.rdma.cq import CompletionQueue
from repro.rdma.wr import WorkCompletion
from repro.sim import Simulator


def test_poll_empty_cq_returns_nothing():
    sim = Simulator()
    cq = CompletionQueue(sim)
    assert cq.poll() == []
    assert len(cq) == 0


def test_poll_respects_max_entries():
    sim = Simulator()
    cq = CompletionQueue(sim)
    for i in range(10):
        cq.push(WorkCompletion(wr_id=i, opcode=Opcode.SEND))
    sim.run()
    first = cq.poll(max_entries=3)
    assert [wc.wr_id for wc in first] == [0, 1, 2]
    rest = cq.poll(max_entries=100)
    assert [wc.wr_id for wc in rest] == list(range(3, 10))


def test_push_stamps_virtual_time():
    sim = Simulator()
    cq = CompletionQueue(sim)
    sim.schedule(777, lambda: cq.push(WorkCompletion(wr_id=1, opcode=Opcode.SEND)))
    sim.run()
    (wc,) = cq.poll()
    assert wc.timestamp == 777
    assert cq.completions.count == 1


def test_wait_blocks_until_completion_arrives():
    sim = Simulator()
    cq = CompletionQueue(sim)
    got = []

    def waiter(sim):
        wc = yield from cq.wait()
        got.append((wc.wr_id, sim.now))

    sim.spawn(waiter(sim))
    sim.schedule(512, lambda: cq.push(WorkCompletion(wr_id=9, opcode=Opcode.RECV)))
    sim.run()
    assert got == [(9, 512)]


def test_mixed_poll_and_wait_consumers_fifo():
    sim = Simulator()
    cq = CompletionQueue(sim)
    got = []

    def waiter(sim):
        wc = yield from cq.wait()
        got.append(wc.wr_id)

    sim.spawn(waiter(sim))
    cq.push(WorkCompletion(wr_id=1, opcode=Opcode.SEND))
    cq.push(WorkCompletion(wr_id=2, opcode=Opcode.SEND))
    sim.run()
    # The blocked waiter got the first; the second is pollable.
    assert got == [1]
    assert [wc.wr_id for wc in cq.poll()] == [2]


def test_read_after_write_same_qp_sees_new_data(rig):
    """RC ordering: a READ posted after a WRITE on the same QP observes it."""
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)

    def proc(sim):
        write_done = rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE, inline_data=b"ORDERED!",
            remote_rkey=remote.rkey, remote_offset=100,
        ))
        read_done = rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=local, local_offset=0, length=8,
            remote_rkey=remote.rkey, remote_offset=100,
        ))
        yield write_done
        yield read_done
        return local.peek(0, 8)

    data = rig.run(proc(rig.sim))
    assert data == b"ORDERED!"


def test_signaled_completions_also_land_in_send_cq(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=256)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE, inline_data=b"cq",
            remote_rkey=remote.rkey, remote_offset=0, wr_id=42,
        ))
        return wc

    rig.run(proc(rig.sim))
    entries = rig.qp_a.send_cq.poll()
    assert len(entries) == 1
    assert entries[0].wr_id == 42
    assert entries[0].ok


def test_many_outstanding_reads_pipeline(rig):
    """Multiple posted READs overlap: total time well under N serial RTTs."""
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=8192)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=8192)
    n = 8

    def proc(sim):
        t0 = sim.now
        events = [
            rig.qp_a.post_send(WorkRequest(
                opcode=Opcode.RDMA_READ, local_mr=local, local_offset=i * 64,
                length=64, remote_rkey=remote.rkey, remote_offset=i * 64,
            ))
            for i in range(n)
        ]
        yield sim.all_of(events)
        return sim.now - t0

    elapsed = rig.run(proc(rig.sim))
    # One read takes ~1.9 us; 8 serial would be ~15 us.  Pipelined: far less.
    assert elapsed < 8_000
