"""Tests for RDMA atomics and the RPC layer."""

import pytest

from repro.rdma import Opcode, QpError, RpcClient, RpcError, RpcServer, WcStatus, WorkRequest, connect
from repro.rdma.mr import AccessFlags


# ---------------------------------------------------------------------------
# Atomics
# ---------------------------------------------------------------------------
def atomic_cas(rig, mr, offset, compare, swap):
    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_CAS,
            remote_rkey=mr.rkey, remote_offset=offset,
            compare=compare, swap=swap,
        ))
        return wc

    return rig.run(proc(rig.sim))


def test_cas_succeeds_when_expected_matches(rig):
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    mr.write_u64(0, 100)
    wc = atomic_cas(rig, mr, 0, compare=100, swap=200)
    assert wc.ok
    assert wc.atomic_value == 100  # prior value returned
    assert mr.read_u64(0) == 200


def test_cas_fails_when_expected_differs(rig):
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    mr.write_u64(0, 55)
    wc = atomic_cas(rig, mr, 0, compare=100, swap=200)
    assert wc.ok  # the verb succeeds; the CAS itself did not take effect
    assert wc.atomic_value == 55
    assert mr.read_u64(0) == 55  # unchanged


def test_faa_adds_and_returns_prior(rig):
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    mr.write_u64(8, 10)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_FAA, remote_rkey=mr.rkey, remote_offset=8, add=5,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.atomic_value == 10
    assert mr.read_u64(8) == 15


def test_faa_wraps_at_64_bits(rig):
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    mr.write_u64(0, (1 << 64) - 1)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_FAA, remote_rkey=mr.rkey, remote_offset=0, add=2,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert mr.read_u64(0) == 1  # wrapped


def test_concurrent_faa_is_atomic(rig):
    """N concurrent fetch-and-adds must not lose any increments."""
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    mr.write_u64(0, 0)
    n = 20

    def adder(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_FAA, remote_rkey=mr.rkey, remote_offset=0, add=1,
        ))
        return wc.atomic_value

    procs = [rig.sim.spawn(adder(rig.sim)) for _ in range(n)]
    rig.sim.run()
    priors = sorted(p.value for p in procs)
    assert priors == list(range(n))  # every prior value seen exactly once
    assert mr.read_u64(0) == n


def test_atomic_requires_remote_atomic_flag(rig):
    mr = rig.ep_b.register_mr(
        rig.mem_b, base=0, length=64,
        access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE,
    )
    wc = atomic_cas(rig, mr, 0, compare=0, swap=1)
    assert wc.status is WcStatus.REMOTE_ACCESS_ERROR


def test_atomic_wrong_length_rejected(rig):
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    with pytest.raises(QpError):
        rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.ATOMIC_CAS, remote_rkey=mr.rkey, length=4,
        ))


# ---------------------------------------------------------------------------
# RPC
# ---------------------------------------------------------------------------
def build_rpc(rig):
    server = RpcServer(rig.ep_b, rig.mem_b, base=0, num_buffers=8, buffer_size=2048)
    server.serve(rig.qp_b)
    client = RpcClient(rig.ep_a, rig.qp_a, rig.mem_a, base=0, num_buffers=8, buffer_size=2048)
    return server, client


def test_rpc_roundtrip(rig):
    server, client = build_rpc(rig)
    server.register("echo", lambda req: req)

    def proc(sim):
        result = yield from client.call("echo", {"x": 1, "y": [1, 2, 3]})
        return result

    assert rig.run(proc(rig.sim)) == {"x": 1, "y": [1, 2, 3]}


def test_rpc_generator_handler_consumes_time(rig):
    server, client = build_rpc(rig)

    def slow_handler(req):
        yield rig.sim.timeout(10_000)
        return req * 2

    server.register("double", slow_handler)

    def proc(sim):
        start = sim.now
        result = yield from client.call("double", 21)
        return result, sim.now - start

    result, elapsed = rig.run(proc(rig.sim))
    assert result == 42
    assert elapsed >= 10_000


def test_rpc_unknown_method_raises(rig):
    _, client = build_rpc(rig)

    def proc(sim):
        yield from client.call("nope")

    p = rig.sim.spawn(proc(rig.sim))
    rig.sim.run()
    assert not p.ok
    assert isinstance(p.exception, RpcError)


def test_rpc_handler_exception_propagates_as_rpc_error(rig):
    server, client = build_rpc(rig)

    def bad(req):
        raise KeyError("missing")

    server.register("bad", bad)

    def proc(sim):
        try:
            yield from client.call("bad")
        except RpcError as exc:
            return str(exc)

    msg = rig.run(proc(rig.sim))
    assert "KeyError" in msg


def test_rpc_concurrent_calls_demuxed_correctly(rig):
    server, client = build_rpc(rig)

    def handler(req):
        # Later requests finish first: reply order is inverted.
        yield rig.sim.timeout((10 - req) * 1000)
        return req * req

    server.register("square", handler)

    def caller(sim, i):
        result = yield from client.call("square", i)
        return (i, result)

    procs = [rig.sim.spawn(caller(rig.sim, i)) for i in range(5)]
    rig.sim.run()
    assert sorted(p.value for p in procs) == [(i, i * i) for i in range(5)]


def test_rpc_oversized_payload_rejected(rig):
    server, client = build_rpc(rig)
    server.register("echo", lambda req: req)

    def proc(sim):
        yield from client.call("echo", "x" * 10_000)

    p = rig.sim.spawn(proc(rig.sim))
    rig.sim.run()
    assert not p.ok
    assert isinstance(p.exception, RpcError)


def test_rpc_many_sequential_calls_reuse_buffers(rig):
    server, client = build_rpc(rig)
    server.register("inc", lambda req: req + 1)

    def proc(sim):
        value = 0
        for _ in range(30):  # more calls than ring slots
            value = yield from client.call("inc", value)
        return value

    assert rig.run(proc(rig.sim)) == 30
    assert server.requests.count == 30


def test_rpc_failed_calls_to_dead_peer_do_not_exhaust_recv_ring(rig):
    """A dead peer must fail every call typed, forever — not just the
    first ring's worth.

    Each call posts a reply buffer before sending; when the send dies
    with RETRY_EXCEEDED that buffer can never be consumed, so it must be
    flushed back to the ring (QP error-state recv flush).  Before the
    flush existed, failed call N+1 > num_buffers would block on the
    empty free list forever — a client that outlived a crashed master
    wedged instead of riding its retry loop.
    """
    server, client = build_rpc(rig)
    server.register("echo", lambda req: req)
    rig.ep_b.alive = False

    def proc(sim):
        failures = 0
        for _ in range(3 * 8):  # 3x the ring, every one must fail typed
            try:
                yield from client.call("echo", "hi")
            except RpcError:
                failures += 1
        return failures

    assert rig.run(proc(rig.sim)) == 24

    # The peer comes back: the ring must be whole again and calls work.
    rig.ep_b.alive = True

    def after(sim):
        return (yield from client.call("echo", "back"))

    assert rig.run(after(rig.sim)) == "back"
