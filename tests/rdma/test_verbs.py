"""Tests for one-sided and two-sided verbs: data movement and semantics."""

import pytest

from repro.rdma import AccessFlags, Opcode, QpError, WcStatus, WorkRequest, connect
from repro.rdma.mr import MrError


# ---------------------------------------------------------------------------
# Memory regions
# ---------------------------------------------------------------------------
def test_register_mr_and_peek_poke(rig):
    mr = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)
    mr.poke(100, b"hello")
    assert mr.peek(100, 5) == b"hello"


def test_mr_bounds_enforced(rig):
    mr = rig.ep_a.register_mr(rig.mem_a, base=0, length=128)
    with pytest.raises(MrError):
        mr.peek(120, 16)
    with pytest.raises(MrError):
        rig.ep_a.register_mr(rig.mem_a, base=0, length=rig.mem_a.capacity + 1)


def test_mr_u64_helpers(rig):
    mr = rig.ep_a.register_mr(rig.mem_a, base=0, length=64)
    mr.write_u64(8, 0xDEADBEEF)
    assert mr.read_u64(8) == 0xDEADBEEF


def test_deregistered_mr_not_resolvable(rig):
    mr = rig.ep_b.register_mr(rig.mem_b, base=0, length=64)
    assert rig.ep_b.resolve_rkey(mr.rkey) is mr
    rig.ep_b.deregister_mr(mr)
    assert rig.ep_b.resolve_rkey(mr.rkey) is None


# ---------------------------------------------------------------------------
# RDMA READ
# ---------------------------------------------------------------------------
def test_rdma_read_fetches_remote_bytes(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)
    remote.poke(256, b"remote-data!")

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ,
            local_mr=local, local_offset=0, length=12,
            remote_rkey=remote.rkey, remote_offset=256,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.ok and wc.byte_len == 12
    assert local.peek(0, 12) == b"remote-data!"


def test_rdma_read_takes_a_full_round_trip(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)

    def proc(sim):
        start = sim.now
        yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=local, length=64,
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        return sim.now - start

    elapsed = rig.run(proc(rig.sim))
    # At minimum: two propagation delays + NIC processing on both sides.
    min_rtt = 2 * 500 + 2 * 250
    assert elapsed >= min_rtt
    assert elapsed < 10_000  # and stays in the microsecond regime


def test_rdma_read_does_not_consume_target_cpu(rig):
    """One-sided reads move data with zero software involvement at the
    target — no process other than the initiator's runs."""
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)

    def proc(sim):
        yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=local, length=64,
            remote_rkey=remote.rkey, remote_offset=0,
        ))

    rig.run(proc(rig.sim))
    # The target's memory device was read by the NIC (DMA), though.
    assert rig.mem_b.bytes_read.total == 64


def test_rdma_read_bad_rkey_gives_remote_access_error(rig):
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=local, length=8,
            remote_rkey=0xBAD, remote_offset=0,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.status is WcStatus.REMOTE_ACCESS_ERROR


def test_rdma_read_out_of_bounds_gives_remote_access_error(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=128)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=local, length=256,
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.status is WcStatus.REMOTE_ACCESS_ERROR


def test_rdma_read_respects_remote_read_flag(rig):
    remote = rig.ep_b.register_mr(
        rig.mem_b, base=0, length=128, access=AccessFlags.LOCAL | AccessFlags.REMOTE_WRITE
    )
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_READ, local_mr=local, length=8,
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.status is WcStatus.REMOTE_ACCESS_ERROR


# ---------------------------------------------------------------------------
# RDMA WRITE
# ---------------------------------------------------------------------------
def test_rdma_write_places_bytes_remotely(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    local = rig.ep_a.register_mr(rig.mem_a, base=0, length=4096)
    local.poke(0, b"write-me")

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE,
            local_mr=local, local_offset=0, length=8,
            remote_rkey=remote.rkey, remote_offset=512,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.ok and wc.byte_len == 8
    assert remote.peek(512, 8) == b"write-me"


def test_rdma_write_inline_payload(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE,
            inline_data=b"inline!",
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.ok
    assert remote.peek(0, 7) == b"inline!"


def test_inline_payload_over_limit_rejected_at_post(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    with pytest.raises(QpError):
        rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE,
            inline_data=b"x" * 1000,  # over the 220 B inline limit
            remote_rkey=remote.rkey,
        ))


def test_rdma_write_to_read_only_region_faults(rig):
    remote = rig.ep_b.register_mr(
        rig.mem_b, base=0, length=128, access=AccessFlags.LOCAL | AccessFlags.REMOTE_READ
    )

    def proc(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE, inline_data=b"nope",
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        return wc

    wc = rig.run(proc(rig.sim))
    assert wc.status is WcStatus.REMOTE_ACCESS_ERROR
    assert remote.peek(0, 4) == b"\x00\x00\x00\x00"  # nothing written


def test_two_writes_same_qp_arrive_in_order(rig):
    """RC ordering: back-to-back writes to the same location land in post
    order, so the second value wins."""
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)

    def proc(sim):
        first = rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE, inline_data=b"AAAA",
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        second = rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE, inline_data=b"BBBB",
            remote_rkey=remote.rkey, remote_offset=0,
        ))
        yield first
        yield second

    rig.run(proc(rig.sim))
    assert remote.peek(0, 4) == b"BBBB"


# ---------------------------------------------------------------------------
# WRITE_WITH_IMM
# ---------------------------------------------------------------------------
def test_write_with_imm_raises_receiver_completion_after_placement(rig):
    remote = rig.ep_b.register_mr(rig.mem_b, base=0, length=4096)
    scratch = rig.ep_b.register_mr(rig.mem_b, base=8192, length=64)
    rig.qp_b.post_recv(scratch, wr_id=77)

    def receiver(sim):
        wc = yield from rig.qp_b.recv_cq.wait()
        # Data must be visible at the written location before the completion.
        return wc, remote.peek(0, 4)

    def sender(sim):
        yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.RDMA_WRITE_IMM, inline_data=b"DATA",
            remote_rkey=remote.rkey, remote_offset=0, imm_data=42,
        ))

    recv_proc = rig.sim.spawn(receiver(rig.sim))
    rig.sim.spawn(sender(rig.sim))
    rig.sim.run()
    wc, seen = recv_proc.value
    assert wc.imm_data == 42
    assert wc.wr_id == 77
    assert wc.byte_len == 4
    assert seen == b"DATA"


# ---------------------------------------------------------------------------
# SEND / RECV
# ---------------------------------------------------------------------------
def test_send_lands_in_posted_recv_buffer(rig):
    recv_buf = rig.ep_b.register_mr(rig.mem_b, base=0, length=256)
    rig.qp_b.post_recv(recv_buf, offset=0, length=256, wr_id=5)

    def receiver(sim):
        wc = yield from rig.qp_b.recv_cq.wait()
        return wc

    def sender(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(opcode=Opcode.SEND, inline_data=b"ping"))
        return wc

    recv_proc = rig.sim.spawn(receiver(rig.sim))
    send_proc = rig.sim.spawn(sender(rig.sim))
    rig.sim.run()
    assert send_proc.value.ok
    wc = recv_proc.value
    assert wc.wr_id == 5
    assert wc.byte_len == 4
    assert recv_buf.peek(0, 4) == b"ping"
    assert wc.context["src_qp"] == rig.qp_a.qp_num


def test_send_blocks_until_recv_posted(rig):
    recv_buf = rig.ep_b.register_mr(rig.mem_b, base=0, length=256)
    times = {}

    def sender(sim):
        yield rig.qp_a.post_send(WorkRequest(opcode=Opcode.SEND, inline_data=b"late"))
        times["send_done"] = sim.now

    def poster(sim):
        yield sim.timeout(50_000)
        rig.qp_b.post_recv(recv_buf, wr_id=1)

    rig.sim.spawn(sender(rig.sim))
    rig.sim.spawn(poster(rig.sim))
    rig.sim.run()
    assert times["send_done"] >= 50_000  # RNR until the buffer appeared


def test_send_too_big_for_recv_buffer_fails(rig):
    recv_buf = rig.ep_b.register_mr(rig.mem_b, base=0, length=256)
    rig.qp_b.post_recv(recv_buf, offset=0, length=4, wr_id=1)

    def sender(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(opcode=Opcode.SEND, inline_data=b"too big"))
        return wc

    wc = rig.run(sender(rig.sim))
    assert wc.status is WcStatus.REMOTE_INVALID_REQUEST


def test_send_from_registered_memory(rig):
    payload = bytes(range(256)) * 4  # 1 KiB, above inline threshold
    src = rig.ep_a.register_mr(rig.mem_a, base=0, length=2048)
    src.poke(0, payload)
    dst = rig.ep_b.register_mr(rig.mem_b, base=0, length=2048)
    rig.qp_b.post_recv(dst, wr_id=9)

    def sender(sim):
        wc = yield rig.qp_a.post_send(WorkRequest(
            opcode=Opcode.SEND, local_mr=src, local_offset=0, length=len(payload)
        ))
        return wc

    wc = rig.run(sender(rig.sim))
    assert wc.ok
    assert dst.peek(0, len(payload)) == payload


# ---------------------------------------------------------------------------
# Posting errors
# ---------------------------------------------------------------------------
def test_unconnected_qp_rejects_post(rig):
    from repro.rdma.qp import QueuePair

    lone = QueuePair(rig.ep_a, send_cq=rig.ep_a.create_cq(), recv_cq=rig.ep_a.create_cq())
    with pytest.raises(QpError):
        lone.post_send(WorkRequest(opcode=Opcode.SEND, inline_data=b"x"))


def test_recv_opcode_rejected_on_send_queue(rig):
    with pytest.raises(QpError):
        rig.qp_a.post_send(WorkRequest(opcode=Opcode.RECV))


def test_connect_self_rejected(rig):
    with pytest.raises(QpError):
        connect(rig.ep_a, rig.ep_a)
