"""Elastic RPC data plane: shared receive pool, credits, reclamation.

Covers the PROTOCOLS.md §12 mechanisms at three levels:

* ``_BufferRing`` unit behaviour — pressure growth, idle-epoch shrink,
  retired-span reuse, and the structural floor;
* ``RpcServer``/``RpcClient`` protocol behaviour — structural growth as
  QPs attach, zero-credit backpressure, crash-mid-credit reclamation and
  re-attach over the same QP;
* the pinned scale regressions — the historical >=16-client wedge must
  stay fixed (structurally, capacity always exceeds the QP count), and a
  fixed-depth pool must fail the overcommitting attach with a typed
  error instead of wedging later.
"""

import pytest

from repro.rdma import connect
from repro.rdma.rpc import RpcClient, RpcServer, _BufferRing, _CreditGate
from repro.sim import Simulator


def bump_allocator(start=1 << 20):
    """A grow_cb standing in for DramCarver: bump-allocates, counts calls."""
    state = {"base": start, "calls": 0}

    def grow(nbytes):
        state["calls"] += 1
        base = state["base"]
        state["base"] += nbytes
        return base

    return grow, state


# ---------------------------------------------------------------------------
# _BufferRing: pressure growth, shrink, span reuse
# ---------------------------------------------------------------------------
def test_ring_pressure_growth_doubles_capacity(rig):
    grow, state = bump_allocator()
    ring = _BufferRing(rig.ep_b, rig.mem_b, 0, 4, 256, "t.ring",
                       grow_cb=grow, shrink_idle_ns=10_000)

    def proc(sim):
        held = []
        for _ in range(4):
            held.append((yield ring.acquire()))
        assert ring.capacity == 4 and ring.grow_count == 0
        # Fifth acquire under pressure: the pool doubles instead of parking.
        held.append((yield ring.acquire()))
        assert ring.capacity == 8
        assert ring.grow_count == 1 and state["calls"] == 1
        # The new slot lives in its own chunk with its own MR.
        assert ring.mr_of(held[4]) is not ring.mr_of(held[0])
        assert ring.outstanding() == 5
        for s in held:
            ring.release(s)
        assert ring.outstanding() == 0

    rig.run(proc(rig.sim))


def test_ring_shrink_after_idle_and_spare_reuse(rig):
    grow, state = bump_allocator()
    ring = _BufferRing(rig.ep_b, rig.mem_b, 0, 4, 256, "t.ring",
                       grow_cb=grow, shrink_idle_ns=10_000)

    def proc(sim):
        held = []
        for _ in range(5):  # fifth acquire forces one grow
            held.append((yield ring.acquire()))
        assert ring.capacity == 8
        for s in held:
            ring.release(s)
        # Releases inside the idle epoch must not shrink.
        assert ring.shrink_count == 0
        yield sim.timeout(20_000)
        slot = yield ring.acquire()
        ring.release(slot)  # first release past the epoch retires the chunk
        assert ring.capacity == 4 and ring.shrink_count == 1
        assert len(ring._spare_spans) == 1
        # Re-growth reuses the parked span: no new carve, no new memory.
        held = []
        for _ in range(5):
            held.append((yield ring.acquire()))
        assert ring.capacity == 8 and ring.grow_count == 2
        assert state["calls"] == 1  # the carve from the first grow only
        assert not ring._spare_spans
        for s in held:
            ring.release(s)

    rig.run(proc(rig.sim))


def test_ring_structural_floor_blocks_shrink(rig):
    grow, _ = bump_allocator()
    ring = _BufferRing(rig.ep_b, rig.mem_b, 0, 4, 256, "t.ring",
                       grow_cb=grow, shrink_idle_ns=10_000)
    ring.ensure_capacity(6)  # attach-time sizing: capacity doubles to 8
    assert ring.capacity == 8

    def proc(sim):
        yield sim.timeout(20_000)
        slot = yield ring.acquire()
        ring.release(slot)
        # Fully idle past the epoch, but the floor holds the chunk: slots
        # 4..7 backing attached QPs must never be retired under them.
        assert ring.capacity == 8 and ring.shrink_count == 0

    rig.run(proc(rig.sim))


# ---------------------------------------------------------------------------
# Credit gate unit behaviour
# ---------------------------------------------------------------------------
def test_credit_gate_blocks_at_zero_and_wakes_fifo(rig):
    gate = _CreditGate(rig.sim, 2, "t.credit")
    assert gate.take() is None and gate.take() is None  # window consumed
    first, second = gate.take(), gate.take()
    assert first is not None and not first.triggered
    assert gate.stalls == 2
    gate.refund()  # a failed send hands its credit back: FIFO waiter wakes
    assert first.triggered and not second.triggered
    gate.on_reply(None)  # a reply returns one credit
    assert second.triggered
    assert gate.available == 0 and not gate._waiters


def test_credit_gate_adopts_moved_window(rig):
    gate = _CreditGate(rig.sim, 4, "t.credit")
    for _ in range(3):
        gate.take()
    gate.on_reply(8)  # server regrew: grant jumps 4 -> 8
    assert gate.window == 8
    assert gate.available == 1 + 1 + (8 - 4)  # left + replied + delta


# ---------------------------------------------------------------------------
# RpcServer: structural growth, backpressure, reclamation
# ---------------------------------------------------------------------------
def test_server_pool_grows_with_attached_qps(rig):
    grow, _ = bump_allocator()
    server = RpcServer(rig.ep_b, rig.mem_b, base=0, num_buffers=2,
                       buffer_size=512, grow_cb=grow)
    server.register("echo", lambda req: req)
    pairs = [(rig.qp_a, rig.qp_b)]
    pairs += [connect(rig.ep_a, rig.ep_b) for _ in range(3)]
    clients = []
    for i, (qa, qb) in enumerate(pairs):
        server.serve(qb, peer=f"c{i}")
        clients.append(RpcClient(rig.ep_a, qa, rig.mem_a, base=i * 4096,
                                 num_buffers=2, buffer_size=512,
                                 name=f"c{i}.rpcc"))
    stats = server.pool_stats()
    # Structural invariant: capacity always exceeds the QP count, so the
    # slot-exhaustion wedge cannot occur regardless of load.
    assert stats["qps"] == 4
    assert stats["capacity"] > stats["qps"]
    assert stats["grows"] >= 1

    def proc(sim):
        for i, client in enumerate(clients):
            result = yield from client.call("echo", i)
            assert result == i

    rig.run(proc(rig.sim))


def test_zero_credit_backpressure_bounds_outstanding(rig):
    server = RpcServer(rig.ep_b, rig.mem_b, base=0, num_buffers=4,
                       buffer_size=512, credits=True)
    inflight = {"now": 0, "max": 0}

    def slow(req):
        inflight["now"] += 1
        inflight["max"] = max(inflight["max"], inflight["now"])
        yield rig.sim.timeout(5_000)
        inflight["now"] -= 1
        return req

    server.register("slow", slow)
    server.serve(rig.qp_b, peer="c0")
    client = RpcClient(rig.ep_a, rig.qp_a, rig.mem_a, base=0, num_buffers=4,
                       buffer_size=512, credits=True)
    results = []

    def caller(i):
        result = yield from client.call("slow", i)
        results.append(result)

    for i in range(12):
        rig.sim.spawn(caller(i))
    rig.sim.run()
    # Every call completed, but never more than the credit window at once.
    assert sorted(results) == list(range(12))
    assert inflight["max"] <= 4
    stats = client.credit_stats()
    assert stats["stalls"] >= 8  # 12 calls through a window of 4
    assert stats["available"] == stats["window"]  # all credits returned
    assert stats["waiters"] == 0


def test_reclaim_parks_loop_and_reattach_resumes(rig):
    server = RpcServer(rig.ep_b, rig.mem_b, base=0, num_buffers=4,
                       buffer_size=512, credits=True)
    server.register("echo", lambda req: req)
    server.serve(rig.qp_b, peer="c0")
    client = RpcClient(rig.ep_a, rig.qp_a, rig.mem_a, base=0, num_buffers=4,
                       buffer_size=512, credits=True)

    def proc(sim):
        assert (yield from client.call("echo", 1)) == 1
        # The lease sweep declares c0 dead mid-credit: its posted receive
        # slot must come back to the shared pool.
        assert server.reclaim_peer("c0") is True
        assert server.reclaim_peer("c0") is False  # idempotent while parked
        yield sim.timeout(1_000)  # let the serve loop process the park WC
        stats = server.pool_stats()
        assert stats["parked"] == 1
        assert stats["outstanding"] == 0  # the posted slot was withdrawn
        assert server.reclaims.count == 1
        # Re-attach over the same QP: the very next send is real demand,
        # the loop re-arms and serves as if nothing happened.
        assert (yield from client.call("echo", 2)) == 2
        stats = server.pool_stats()
        assert stats["parked"] == 0
        assert stats["outstanding"] == 1  # one freshly posted receive

    rig.run(proc(rig.sim))


# ---------------------------------------------------------------------------
# Pinned scale regressions (the historical >=16-client wedge)
# ---------------------------------------------------------------------------
def test_pool_builds_with_sixteen_clients():
    from repro.core import GengarPool

    sim = Simulator(seed=11)
    pool = GengarPool.build(sim, num_servers=4, num_clients=16)
    assert len(pool.clients) == 16


def test_concurrent_32_client_ycsb_completes():
    """The true wedge: concurrent load from 32 clients over 8 servers.

    Before the elastic pool this deadlocked (every receive slot claimed,
    all serve loops parked); now the pool grows ahead of the QP count and
    the sweep completes with no slot leak.
    """
    from dataclasses import replace

    from repro.baselines.common import build_system
    from repro.bench.runner import YcsbRunner
    from repro.workloads.ycsb import WORKLOAD_B

    sim = Simulator(seed=13)
    system = build_system(
        "gengar", sim, num_servers=8, num_clients=32,
        config_overrides=lambda c: replace(c, num_master_shards=4))
    spec = WORKLOAD_B.scaled(record_count=64, value_size=128)
    runner = YcsbRunner(system, spec, num_workers=32, ops_per_worker=10)
    runner.load()
    result = runner.run()
    assert result.total_ops == 320
    stats = system.pool.master.rpc.pool_stats()
    assert stats["grows"] >= 1
    assert stats["capacity"] > stats["qps"]
    # No slot leak: after quiesce each live serve loop holds exactly its
    # one posted receive.
    assert stats["outstanding"] == stats["qps"] - stats["parked"]


def test_fixed_ring_overcommit_raises_typed_error():
    from dataclasses import replace

    from repro.baselines.common import build_system
    from repro.core.errors import RingSaturatedError

    sim = Simulator(seed=17)
    with pytest.raises(RingSaturatedError):
        build_system(
            "gengar", sim, num_servers=2, num_clients=8,
            config_overrides=lambda c: replace(c, rpc_ring_slots=4,
                                               rpc_credits=False))
