"""Shared fixtures for RDMA-layer tests: a two-node rig with real devices."""

import pytest

from repro.hardware.memory import MemoryDevice
from repro.hardware.network import Fabric
from repro.hardware.nic import Nic
from repro.hardware.specs import CONNECTX5_NIC, LinkSpec, MemorySpec
from repro.rdma import RdmaEndpoint, connect
from repro.sim import Simulator


def small_dram(name):
    return MemorySpec(
        name=name,
        kind="dram",
        capacity_bytes=1 << 22,  # 4 MiB
        read_latency_ns=80,
        write_latency_ns=80,
        read_bw=16.0,
        write_bw=16.0,
        channels=4,
    )


class Rig:
    """Two connected endpoints with DRAM devices, ready for verbs."""

    def __init__(self, seed=0):
        self.sim = Simulator(seed=seed)
        self.fabric = Fabric(self.sim, LinkSpec(bandwidth=12.5, propagation_ns=500))
        self.mem_a = MemoryDevice(self.sim, small_dram("a.mem"), name="a.mem")
        self.mem_b = MemoryDevice(self.sim, small_dram("b.mem"), name="b.mem")
        self.ep_a = RdmaEndpoint(self.sim, "a", Nic(self.sim, CONNECTX5_NIC, "a.nic"), self.fabric)
        self.ep_b = RdmaEndpoint(self.sim, "b", Nic(self.sim, CONNECTX5_NIC, "b.nic"), self.fabric)
        self.qp_a, self.qp_b = connect(self.ep_a, self.ep_b)

    def run(self, gen):
        """Spawn a process, run to completion, return its value."""
        proc = self.sim.spawn(gen)
        self.sim.run()
        assert proc.ok, f"process failed: {proc.exception!r}"
        return proc.value


@pytest.fixture
def rig():
    return Rig()
