"""Doorbell batching: post_send_many must be virtual-time equivalent to
posting the same WRs one by one."""

import pytest

from repro.rdma.mr import AccessFlags
from repro.rdma.qp import QpError
from repro.rdma.wr import Opcode, WorkRequest

from tests.rdma.conftest import Rig


def _write_wrs(rkey, count, size=32):
    return [
        WorkRequest(
            opcode=Opcode.RDMA_WRITE,
            remote_rkey=rkey,
            remote_offset=i * size,
            inline_data=bytes([i % 256]) * size,
            length=size,
        )
        for i in range(count)
    ]


def test_post_send_many_places_all_payloads(rig):
    mr_b = rig.ep_b.register_mr(rig.mem_b, 0, 4096, access=AccessFlags.ALL)

    def app():
        events = rig.qp_a.post_send_many(_write_wrs(mr_b.rkey, 8))
        wcs = []
        for ev in events:
            wcs.append((yield ev))
        return wcs

    wcs = rig.run(app())
    assert all(wc.ok for wc in wcs)
    for i in range(8):
        assert rig.mem_b.peek(i * 32, 32) == bytes([i]) * 32


def test_post_send_many_matches_sequential_virtual_time():
    def drive(batched):
        rig = Rig(seed=7)
        mr_b = rig.ep_b.register_mr(rig.mem_b, 0, 4096, access=AccessFlags.ALL)

        def app():
            wrs = _write_wrs(mr_b.rkey, 10)
            if batched:
                events = rig.qp_a.post_send_many(wrs)
            else:
                events = [rig.qp_a.post_send(wr) for wr in wrs]
            for ev in events:
                wc = yield ev
                assert wc.ok
            return rig.sim.now

        return rig.run(app())

    assert drive(batched=True) == drive(batched=False)


def test_post_send_many_validates_before_posting(rig):
    mr_b = rig.ep_b.register_mr(rig.mem_b, 0, 4096, access=AccessFlags.ALL)
    wrs = _write_wrs(mr_b.rkey, 3)
    # Atomic with a bogus length is a local usage error.
    wrs.append(WorkRequest(opcode=Opcode.ATOMIC_CAS, remote_rkey=mr_b.rkey,
                           remote_offset=0, length=4))
    with pytest.raises(QpError):
        rig.qp_a.post_send_many(wrs)
    # Nothing was posted: the target memory is untouched after running.
    rig.sim.run()
    assert rig.mem_b.peek(0, 32) == bytes(32)


def test_post_send_many_requires_connection():
    rig = Rig()
    rig.qp_a.remote = None
    with pytest.raises(QpError):
        rig.qp_a.post_send_many([])
