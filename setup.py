"""Shim for environments without the `wheel` package (offline testbeds).

`pip install -e . --no-build-isolation` on pip 23 + setuptools 65 needs
`wheel` for PEP 660; `python setup.py develop` (or pip's legacy editable
path) works without it.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
