#!/usr/bin/env python3
"""Distributed PageRank with all graph state in the hybrid memory pool.

Run with::

    python examples/pagerank.py

Every iteration re-reads the full rank vector from the pool — exactly the
re-read-heavy pattern Gengar's hot-data cache targets.  The script runs the
same graph on Gengar and on the NVM-direct baseline and compares both the
(identical) results and the (different) virtual runtimes.
"""

import random

from repro.apps.graph import PageRankEngine, reference_pagerank
from repro.bench.experiments import bench_config, boot


def random_graph(n=200, m=5000, seed=5):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    return sorted(edges), n


def run_on(system_name: str, edges, n, iterations=10):
    system = boot(
        system_name, seed=5, num_servers=2, num_clients=2,
        config_overrides=bench_config(epoch_ns=50_000, report_every_ops=8,
                                      promote_threshold=0.5,
                                      demote_threshold=0.1),
    )
    sim = system.sim
    engine = PageRankEngine(system.clients, num_partitions=4)

    def app(sim):
        yield from engine.load(system.clients[0], edges, n)
        t0 = sim.now
        ranks = yield from engine.run(iterations=iterations)
        return ranks, sim.now - t0

    ((ranks, elapsed),) = system.run(app(sim))
    return ranks, elapsed


def main() -> None:
    edges, n = random_graph()
    print(f"graph: {n} vertices, {len(edges)} edges, 10 iterations\n")

    results = {}
    for name in ("gengar", "nvm-direct"):
        ranks, elapsed = run_on(name, edges, n)
        results[name] = (ranks, elapsed)
        print(f"{name:12s} finished in {elapsed / 1e6:.3f} ms (virtual)")

    gengar_ranks = results["gengar"][0]
    direct_ranks = results["nvm-direct"][0]
    worst = max(abs(gengar_ranks[v] - direct_ranks[v]) for v in gengar_ranks)
    print(f"\nresults identical across systems (max delta {worst:.2e})")

    expected = reference_pagerank(edges, n, iterations=10)
    worst_ref = max(abs(gengar_ranks[v] - expected[v]) for v in expected)
    print(f"matches the local reference (max delta {worst_ref:.2e})")

    top = sorted(gengar_ranks, key=gengar_ranks.get, reverse=True)[:5]
    print("\ntop-5 vertices by rank:")
    for v in top:
        print(f"  vertex {v:3d}: {gengar_ranks[v]:.5f}")

    speedup = results["nvm-direct"][1] / results["gengar"][1]
    print(f"\nGengar speedup over NVM-direct: {speedup:.2f}x "
          f"(rank vector promoted to DRAM after the first iterations)")


if __name__ == "__main__":
    main()
