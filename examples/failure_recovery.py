#!/usr/bin/env python3
"""Server crash and recovery: what NVM durability buys you.

Run with::

    python examples/failure_recovery.py

A client syncs some writes, bursts more writes (still staged in the
server's DRAM proxy ring), and then the memory server crashes.  After
recovery: everything synced is still there (it lived in NVM), the staged
burst is reported lost (it lived in DRAM), locks held across the crash are
gone, and the client replays exactly what it was told it lost.
"""

from repro.bench.experiments import bench_config, boot
from repro.sim.units import ns_to_us


def main() -> None:
    system = boot("gengar", seed=21, num_servers=1, num_clients=1,
                  config_overrides=bench_config(proxy_ring_slots=64))
    pool, sim = system.pool, system.sim
    client = system.clients[0]
    burst = 16
    size = 4000

    def phase1(sim):
        ledger = yield from client.gmalloc(128)
        yield from client.gwrite(ledger, b"balance=100" + bytes(117))
        yield from client.gsync()
        print(f"[{ns_to_us(sim.now):9.1f} us] synced the ledger to NVM")

        staged = []
        for _ in range(burst):
            staged.append((yield from client.gmalloc(size)))
        for i, g in enumerate(staged):
            yield from client.gwrite(g, bytes([i + 1]) * size)
        print(f"[{ns_to_us(sim.now):9.1f} us] burst {burst} writes "
              f"(acked, but still draining to NVM)")
        pool.servers[0].crash()
        print(f"[{ns_to_us(sim.now):9.1f} us] *** server0 CRASHED "
              f"(DRAM lost, NVM intact) ***")
        return ledger, staged

    ((ledger, staged),) = pool.run(phase1(sim))

    pool.servers[0].recover()
    dropped = pool.master.on_server_recovered(0)
    print(f"server0 recovered; master reconciled {dropped} lost DRAM copies")

    def phase2(sim):
        lost = yield from client.reattach_server(0)
        print(f"[{ns_to_us(sim.now):9.1f} us] client re-attached; "
              f"{len(lost)} writes reported lost")
        data = yield from client.gread(ledger, length=11)
        print(f"[{ns_to_us(sim.now):9.1f} us] ledger survives: {data!r}")

        survived = 0
        for i, g in enumerate(staged):
            got = yield from client.gread(g, length=size)
            if got == bytes([i + 1]) * size:
                survived += 1
        print(f"[{ns_to_us(sim.now):9.1f} us] {survived}/{burst} burst writes "
              f"had drained to NVM before the crash")

        # Replay exactly what was reported lost.
        for g in lost:
            i = staged.index(g)
            yield from client.gwrite(g, bytes([i + 1]) * size)
        yield from client.gsync()
        print(f"[{ns_to_us(sim.now):9.1f} us] replayed {len(lost)} lost writes")

        intact = 0
        for i, g in enumerate(staged):
            got = yield from client.gread(g, length=size)
            if got == bytes([i + 1]) * size:
                intact += 1
        print(f"[{ns_to_us(sim.now):9.1f} us] after replay: "
              f"{intact}/{burst} writes intact")
        assert intact == burst

    pool.run(phase2(sim))
    print("\ntakeaway: gsync'ed data == durable; the proxy ring is a DRAM "
          "staging area, and the client is told exactly what to replay.")


if __name__ == "__main__":
    main()
