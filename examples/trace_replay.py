#!/usr/bin/env python3
"""Open-loop trace replay: find the write path's queueing knee.

Run with::

    python examples/trace_replay.py

Generates a bursty, write-heavy operation trace, saves/loads it through the
text format, and replays it open-loop (ops issued at their timestamps, not
waiting for completions) against Gengar and the NVM-direct baseline.
Closed-loop benchmarks cannot expose queueing collapse; this can.
"""

import random

from repro.apps.kvstore import KvStore
from repro.bench.experiments import bench_config, boot
from repro.workloads.traces import TraceReplayer, dump_trace, generate_trace, load_trace


def replay_on(system_name: str, ops, value_size=1024):
    system = boot(system_name, seed=31, num_servers=1, num_clients=2,
                  config_overrides=bench_config(proxy_ring_slots=128))
    sim = system.sim
    store = KvStore(value_size)

    def loader(sim):
        yield from store.load(system.clients[0], range(100),
                              lambda k: bytes([k % 256]) * value_size)

    system.run(loader(sim))
    replayer = TraceReplayer(system.clients, store, value_size=value_size)
    holder = {}

    def run(sim):
        holder["result"] = yield from replayer.replay(ops)

    system.run(run(sim))
    return holder["result"]


def main() -> None:
    ops = generate_trace(
        random.Random(31),
        duration_ns=300_000,
        mean_interarrival_ns=700,     # ~1.4 Mops offered
        record_count=100,
        read_fraction=0.2,            # write heavy
        value_size=1024,
        burst_every_ns=100_000,
        burst_ops=24,
    )
    # Round-trip through the text trace format (what you'd version-control).
    ops = load_trace(dump_trace(ops))
    writes = sum(1 for op in ops if op.kind == "write")
    print(f"trace: {len(ops)} ops over {ops[-1].at_ns / 1000:.0f} us "
          f"({writes} writes, bursts of 24 every 100 us)\n")

    for name in ("gengar", "nvm-direct"):
        result = replay_on(name, ops)
        w = result.latency_by_kind["write"]
        r = result.latency_by_kind["read"]
        print(f"{name:12s} write mean {w['mean'] / 1000:6.2f} us  "
              f"p99 {w['p99'] / 1000:7.2f} us | "
              f"read p99 {r['p99'] / 1000:6.2f} us | "
              f"max outstanding {result.max_outstanding}")
    print("\nthe proxy wins on mean write latency (bursts land in DRAM); "
          "tails are comparable here because at this offered load both "
          "systems queue on shared client-side resources, not on NVM - "
          "see benchmarks/bench_x01_saturation.py for the systematic sweep.")


if __name__ == "__main__":
    main()
