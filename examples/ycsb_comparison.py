#!/usr/bin/env python3
"""Run YCSB-A and YCSB-B against Gengar and the comparator systems.

Run with::

    python examples/ycsb_comparison.py

This is a miniature of experiment E4: the same KV store and the same
operation stream (identical seeds) are driven against each DSHM design, so
throughput differences come purely from the systems' data paths.
"""

from repro.bench.experiments import bench_config, boot
from repro.bench.report import Table
from repro.bench.runner import YcsbRunner
from repro.workloads.ycsb import WORKLOADS

SYSTEMS = ("gengar", "cache-only", "proxy-only", "nvm-direct")


def main() -> None:
    table = Table(
        title="YCSB throughput (kops/s) — 300 x 1 KiB records, 4 workers",
        headers=["system", "YCSB-A (50% update)", "YCSB-B (95% read)"],
    )
    for name in SYSTEMS:
        row = [name]
        for wname in ("A", "B"):
            spec = WORKLOADS[wname].scaled(record_count=300, value_size=1024)
            system = boot(name, seed=123, num_servers=2, num_clients=2,
                          config_overrides=bench_config())
            runner = YcsbRunner(system, spec, num_workers=4,
                                ops_per_worker=150, seed_tag=f"demo.{name}.{wname}")
            runner.load()
            result = runner.run()
            row.append(result.throughput_ops_s / 1000.0)
            print(f"  ran {wname} on {name:12s}: "
                  f"{result.throughput_ops_s / 1000:8.1f} kops/s, "
                  f"hit ratio {result.cache_hit_ratio:.2f}")
        table.add_row(*row)
    print()
    print(table.render())
    print("\nExpected shape: gengar leads on A (proxy hides the NVM write "
          "path); cache-only trails even the NVM-direct baseline on A "
          "because every update pays write-through coherence.")


if __name__ == "__main__":
    main()
