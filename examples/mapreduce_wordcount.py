#!/usr/bin/env python3
"""Iterative MapReduce wordcount with shuffle data in the pool.

Run with::

    python examples/mapreduce_wordcount.py

Three wordcount jobs run back to back over the same pool-resident corpus.
Watch the per-iteration time drop as Gengar's hotness tracker promotes the
input splits into server DRAM.
"""

import random

from repro.apps.mapreduce import MapReduceEngine, wordcount_job
from repro.bench.experiments import bench_config, boot
from repro.sim.units import KIB
from repro.workloads.corpus import CorpusGenerator


def main() -> None:
    system = boot(
        "gengar", seed=7, num_servers=2, num_clients=2,
        config_overrides=bench_config(
            proxy_slot_size=128 * KIB, epoch_ns=50_000,
            report_every_ops=8, promote_threshold=0.5, demote_threshold=0.1,
        ),
    )
    sim = system.sim
    corpus = CorpusGenerator(vocab_size=200, rng=random.Random(7))
    chunks = corpus.chunks(12, 32 * KIB)
    engine = MapReduceEngine(system.clients)

    def pipeline(sim):
        addrs = yield from engine.ingest(system.clients[0], chunks)
        print(f"ingested {len(chunks)} splits "
              f"({sum(len(c) for c in chunks) // 1024} KiB) into the pool")
        last = None
        for i in range(3):
            result = yield from engine.run(wordcount_job(num_reducers=4),
                                           addrs, [len(c) for c in chunks])
            cached = sum(
                1 for a in addrs
                if system.pool.master.directory.get(a).cached
            )
            print(f"iteration {i + 1}: {result.elapsed_ns / 1e6:.3f} ms "
                  f"(map {result.map_time_ns / 1e6:.3f} / "
                  f"reduce {result.reduce_time_ns / 1e6:.3f}), "
                  f"{cached}/{len(addrs)} input splits now DRAM-cached")
            yield sim.timeout(120_000)  # let the planner promote
            last = result
        return last

    (result,) = system.run(pipeline(sim))
    top = sorted(result.output.items(), key=lambda kv: -kv[1])[:8]
    print("\ntop words:")
    for word, count in top:
        print(f"  {word:12s} {count}")
    total = sum(result.output.values())
    print(f"\ntotal words counted: {total} "
          f"(shuffle moved {result.shuffle_bytes} bytes through the pool)")


if __name__ == "__main__":
    main()
