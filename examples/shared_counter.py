#!/usr/bin/env python3
"""Multi-user sharing with consistency: locked counters and a shared log.

Run with::

    python examples/shared_counter.py

Four clients hammer one counter object under Gengar's one-sided
reader/writer locks — every increment survives — then append to a shared
log concurrently.  This demonstrates the abstract's claim that Gengar
"supports memory sharing among multiple users with data consistency
guarantee".
"""

from repro.apps.sharedlog import SharedLog
from repro.bench.experiments import boot
from repro.sim.units import ns_to_us


def main() -> None:
    system = boot("gengar", seed=99, num_servers=1, num_clients=4)
    sim = system.sim
    clients = system.clients
    increments_each = 12

    def setup(sim):
        counter = yield from clients[0].gmalloc(64)
        yield from clients[0].gwrite(counter, bytes(64))
        yield from clients[0].gsync()
        log = yield from SharedLog.create(clients[0], capacity=64, record_size=32)
        return counter, log

    ((counter, log),) = system.run(setup(sim))

    def incrementer(sim, idx):
        client = clients[idx]
        for i in range(increments_each):
            yield from client.glock(counter, write=True)
            raw = yield from client.gread(counter, length=8)
            value = int.from_bytes(raw, "little")
            yield from client.gwrite(counter, (value + 1).to_bytes(8, "little"))
            yield from client.gunlock(counter, write=True)
            record = f"c{idx}:inc{i}->{value + 1}".encode().ljust(32)
            yield from log.append(client, record)

    t0 = sim.now
    system.run(*[incrementer(sim, i) for i in range(len(clients))])
    elapsed = sim.now - t0

    def check(sim):
        raw = yield from clients[0].gread(counter, length=8)
        total = int.from_bytes(raw, "little")
        records = yield from log.read_all(clients[0])
        return total, records

    ((total, records),) = system.run(check(sim))
    expected = len(clients) * increments_each
    print(f"{len(clients)} clients x {increments_each} locked increments "
          f"in {ns_to_us(elapsed):.1f} us (virtual)")
    print(f"final counter value: {total} (expected {expected}) "
          f"{'OK' if total == expected else 'LOST UPDATES!'}")
    print(f"shared log holds {len(records)} records; first three:")
    for rec in records[:3]:
        print(f"  {rec.rstrip().decode()}")
    retries = sim.metrics.counter("pool.lock_retries").count
    acquires = sim.metrics.counter("pool.lock_acquires").count
    print(f"lock acquires: {acquires}, contended retries: {retries}")
    assert total == expected


if __name__ == "__main__":
    main()
