#!/usr/bin/env python3
"""Quickstart: boot a Gengar pool, allocate, read, write, lock, sync.

Run with::

    python examples/quickstart.py

Everything happens in a discrete-event simulation of a 2-server / 2-client
RDMA cluster with Optane-class NVM, so the printed times are *virtual*
nanoseconds on realistic hardware models.
"""

from repro.core import GengarPool
from repro.sim import Simulator
from repro.sim.units import ns_to_us


def main() -> None:
    sim = Simulator(seed=42)
    pool = GengarPool.build(sim, num_servers=2, num_clients=2)
    print(f"pool booted at t={ns_to_us(sim.now):.1f} us "
          f"({len(pool.servers)} memory servers, {len(pool.clients)} clients)")

    alice, bob = pool.clients

    def alice_app(sim):
        # Allocate a 4 KiB object in the global hybrid memory space.
        gaddr = yield from alice.gmalloc(4096)
        print(f"[{ns_to_us(sim.now):8.1f} us] alice: gmalloc -> gaddr={gaddr:#x}")

        # Writes go through the proxy: the ack arrives at DRAM latency and
        # the server drains the data to NVM in the background.
        t0 = sim.now
        yield from alice.gwrite(gaddr, b"hello, hybrid memory pool!" + bytes(4070))
        print(f"[{ns_to_us(sim.now):8.1f} us] alice: gwrite acked in "
              f"{ns_to_us(sim.now - t0):.2f} us (proxy-staged)")

        # gsync waits until the write is durable in NVM.
        t0 = sim.now
        yield from alice.gsync()
        print(f"[{ns_to_us(sim.now):8.1f} us] alice: gsync drained in "
              f"{ns_to_us(sim.now - t0):.2f} us")
        return gaddr

    (gaddr,) = pool.run(alice_app(sim))

    def bob_app(sim):
        # Bob reads Alice's object with a one-sided RDMA READ from NVM.
        t0 = sim.now
        data = yield from bob.gread(gaddr, length=26)
        print(f"[{ns_to_us(sim.now):8.1f} us] bob:   gread -> {data!r} "
              f"in {ns_to_us(sim.now - t0):.2f} us")

        # Shared access under the one-sided reader/writer lock.
        yield from bob.glock(gaddr, write=True)
        yield from bob.gwrite(gaddr, b"BOB WAS HERE".ljust(26))
        yield from bob.gunlock(gaddr, write=True)  # syncs, then releases
        print(f"[{ns_to_us(sim.now):8.1f} us] bob:   locked update done")

    pool.run(bob_app(sim))

    def alice_check(sim):
        data = yield from alice.gread(gaddr, length=26)
        print(f"[{ns_to_us(sim.now):8.1f} us] alice: sees {data!r}")
        yield from alice.gfree(gaddr)
        print(f"[{ns_to_us(sim.now):8.1f} us] alice: gfree done")

    pool.run(alice_check(sim))

    print("\npool metrics:")
    for key, value in pool.metrics_snapshot().items():
        print(f"  {key:24s} {value:,.2f}" if isinstance(value, float)
              else f"  {key:24s} {value}")


if __name__ == "__main__":
    main()
