"""E1 — read latency vs object size (reconstructed read-latency figure).

Claim validated: caching frequently-accessed data in distributed DRAM
buffers removes the NVM read-latency gap — hot Gengar reads track the
DRAM-only bound while cold reads match the NVM-direct baseline.
"""

from conftest import run_experiment

from repro.bench.experiments import e01_read_latency


def test_e01_read_latency(benchmark):
    result = run_experiment(benchmark, e01_read_latency)
    table = result.table("E1")
    rows = {row[0]: row[1:] for row in table.rows}
    # Hot (cached) reads beat cold (NVM) reads at every size of 1 KiB up.
    for i in range(2, len(rows["gengar-hot"])):
        assert rows["gengar-hot"][i] < rows["gengar-cold"][i]
    # Cold Gengar reads equal the NVM-direct baseline (same data path).
    assert rows["gengar-cold"] == rows["nvm-direct"]
    # Hot reads approach the DRAM-only bound (within 15%).
    assert rows["gengar-hot"][-1] < rows["dram-only"][-1] * 1.15
