"""X1 — open-loop saturation (extension experiment, beyond the paper).

Open-loop trace replay issues writes at their timestamps regardless of
completions — the methodology that can expose queueing collapse, which the
paper's closed-loop YCSB runs cannot.  Expected shape: Gengar's write p99
sits below NVM-direct at every offered load, and both climb as the offered
load approaches the shared NVM bandwidth ceiling.
"""

from conftest import run_experiment

from repro.bench.experiments import x01_open_loop_saturation


def test_x01_open_loop_saturation(benchmark):
    result = run_experiment(benchmark, x01_open_loop_saturation)
    table = result.table("X1")
    rows = {row[0]: row[1:] for row in table.rows}
    # Gengar's write p99 is lower at every offered load.
    assert all(g < n for g, n in zip(rows["gengar"], rows["nvm-direct"]))
    # Latency rises with offered load for both (queueing is real).
    for name in rows:
        assert rows[name][-1] > rows[name][0]
