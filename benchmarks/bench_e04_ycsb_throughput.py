"""E4 — YCSB A-F throughput across systems (the headline <=70% claim).

Claim validated: "Gengar significantly improves the performance of public
benchmarks such as MapReduce and YCSB by up to 70% compared with
state-of-the-art DSHM systems."  The largest gain lands on the write-heavy
workload (A), driven by the proxy; read-heavy gains come from the cache.
"""

from conftest import run_experiment

from repro.bench.experiments import e04_ycsb_throughput


def test_e04_ycsb_throughput(benchmark):
    result = run_experiment(benchmark, e04_ycsb_throughput)
    gain = result.table("E4b")
    speedups = dict(zip(gain.column("workload"), gain.column("speedup")))
    # The headline: a substantial win on the update-heavy workload.
    assert speedups["YCSB-A"] > 1.3
    # Read-mostly workloads still benefit from the DRAM cache.
    assert speedups["YCSB-B"] > 1.05
    # No workload collapses (worst case stays within 30% of the baseline).
    assert min(speedups.values()) > 0.7
