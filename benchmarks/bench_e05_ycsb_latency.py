"""E5 — YCSB-A operation latency (mean / p99) across systems.

Claim validated: the proxy cuts update latency and the cache cuts read
latency relative to the NVM-direct DSHM design.
"""

from conftest import run_experiment

from repro.bench.experiments import e05_ycsb_latency


def test_e05_ycsb_latency(benchmark):
    result = run_experiment(benchmark, e05_ycsb_latency)
    table = result.table("E5")
    rows = {row[0]: row[1:] for row in table.rows}
    read_mean = {name: vals[0] for name, vals in rows.items()}
    update_mean = {name: vals[2] for name, vals in rows.items()}
    # Gengar improves both op types over NVM-direct.
    assert read_mean["gengar"] < read_mean["nvm-direct"]
    assert update_mean["gengar"] < update_mean["nvm-direct"]
    # Cache-only pays the write-through coherence tax on updates.
    assert update_mean["cache-only"] > update_mean["gengar"]
