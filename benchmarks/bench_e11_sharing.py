"""E11 — multi-user sharing / consistency overhead.

Claim validated: "Gengar also supports memory sharing among multiple users
with data consistency guarantee" — throughput degrades gracefully (and
lock retries grow) as the fraction of lock-protected shared-object
operations rises from 0 to 1.
"""

from conftest import run_experiment

from repro.bench.experiments import e11_sharing


def test_e11_sharing(benchmark):
    result = run_experiment(benchmark, e11_sharing)
    table = result.table("E11")
    kops = table.column("kops/s")
    retries = table.column("lock retries")
    # Throughput decreases monotonically with the sharing ratio.
    assert all(b < a for a, b in zip(kops, kops[1:])), kops
    # Contention (retries) grows with sharing.
    assert retries[0] == 0
    assert retries[-1] > retries[1]
    # Even full serialization makes progress (no livelock).
    assert kops[-1] > 0
