"""X3 — attributing the YCSB-F regression (extension, beyond the paper).

E4 honestly reported Gengar losing YCSB-F to the NVM-direct baseline.  This
ablation proves the cause: disable the release-time gsync (weakening the
guarantee) and the proxy's advantage returns.  The regression is entirely
the synchronous drain wait that release consistency puts back on the
critical path — a real cost of combining async writes with strict sharing.
"""

from conftest import run_experiment

from repro.bench.experiments import x03_release_consistency_tax


def test_x03_release_consistency_tax(benchmark):
    result = run_experiment(benchmark, x03_release_consistency_tax)
    table = result.table("X3")
    kops = dict(zip(table.column("variant"), table.column("kops/s")))
    # The attribution: strict Gengar loses to the baseline on F...
    assert kops["gengar (sync release)"] < kops["nvm-direct"]
    # ...and removing only the release sync flips it decisively.
    assert kops["gengar (unsafe release)"] > kops["nvm-direct"] * 1.1
    assert kops["gengar (unsafe release)"] > kops["gengar (sync release)"] * 1.3
