"""X2 — rack locality on a two-tier fabric (extension, beyond the paper).

The paper's testbed is a single switch; this extension asks what happens to
a DSHM pool when clients sit across an oversubscribed core: throughput
degrades and read latency grows with the oversubscription factor — the DRAM
cache removes NVM time, not network time.
"""

from conftest import run_experiment

from repro.bench.experiments import x02_rack_locality


def test_x02_rack_locality(benchmark):
    result = run_experiment(benchmark, x02_rack_locality)
    table = result.table("X2")
    kops = table.column("kops/s")
    lat = table.column("read mean (us)")
    # Throughput: same rack > 2:1 cross rack > 8:1 cross rack.
    assert kops[0] > kops[1] > kops[2]
    # Latency: strictly the other way around.
    assert lat[0] < lat[1] < lat[2]
    placement = result.table("X2b")
    kops = dict(zip(placement.column("placement"), placement.column("kops/s")))
    msgs = dict(zip(placement.column("placement"),
                    placement.column("inter-rack msgs")))
    # Rack-local allocation wins the partitioned workload...
    assert kops["rack-local"] > kops["round-robin"] * 1.1
    # ...by actually keeping traffic off the core.
    assert msgs["rack-local"] < msgs["round-robin"] / 2
