"""E10 — MapReduce job completion time (the second headline claim).

Claim validated: iterative MapReduce over pool-resident input speeds up as
Gengar promotes the re-read splits into server DRAM; the total pipeline
beats the NVM-direct DSHM and approaches the DRAM-only bound.  Word counts
are verified identical across systems (the data plane is functional).
"""

from conftest import run_experiment

from repro.bench.experiments import e10_mapreduce


def test_e10_mapreduce(benchmark):
    result = run_experiment(benchmark, e10_mapreduce)
    summary = result.table("E10b")
    sp = dict(zip(summary.column("system"), summary.column("speedup")))
    assert sp["gengar"] > 1.05          # beats the NVM-direct DSHM
    assert sp["dram-only"] > sp["gengar"]  # bounded by the DRAM ceiling
    per_iter = result.table("E10 ")
    rows = {row[0]: row[1:-1] for row in per_iter.rows}
    # Gengar's later iterations run faster than its first (cache warmed);
    # NVM-direct shows no such learning effect.
    assert rows["gengar"][-1] < rows["gengar"][0]
    assert abs(rows["nvm-direct"][-1] - rows["nvm-direct"][0]) < 0.2 * rows["nvm-direct"][0]
