"""E2 — write latency vs object size (the proxy protocol redesign).

Claim validated: "we redesign RDMA communication protocols to reduce the
bottleneck of RDMA write latency by leveraging a proxy mechanism" — Gengar
write acks track the DRAM-only bound while direct NVM writes pay the
Optane write path inline, with the gap widening with size.
"""

from conftest import run_experiment

from repro.bench.experiments import e02_write_latency


def test_e02_write_latency(benchmark):
    result = run_experiment(benchmark, e02_write_latency)
    table = result.table("E2")
    rows = {row[0]: row[1:] for row in table.rows}
    # Proxy-staged writes beat direct NVM writes from 1 KiB up.
    for i in range(2, len(rows["gengar"])):
        assert rows["gengar"][i] < rows["nvm-direct"][i]
    # The gap grows with size (bandwidth-limited NVM path).
    gap_small = rows["nvm-direct"][2] / rows["gengar"][2]
    gap_large = rows["nvm-direct"][-1] / rows["gengar"][-1]
    assert gap_large > gap_small
    # Proxy acks stay within 25% of the DRAM-only bound.
    assert rows["gengar"][-1] < rows["dram-only"][-1] * 1.25
