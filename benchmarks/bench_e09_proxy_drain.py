"""E9 — proxy behaviour under a write burst.

Claim validated: the proxy absorbs bursts at DRAM speed (flat, low ack
latency) and drains to NVM off the critical path, while the NVM-direct
design pays the Optane write cost on every op.
"""

from conftest import run_experiment

from repro.bench.experiments import e09_proxy_drain


def test_e09_proxy_drain(benchmark):
    result = run_experiment(benchmark, e09_proxy_drain)
    series = result.table("E9 ")
    rows = {row[0]: row[1:] for row in series.rows}
    # Every bucket of the burst acks faster through the proxy.
    assert all(g < n for g, n in zip(rows["gengar"], rows["nvm-direct"]))
    drain = result.table("E9b")
    burst = dict(zip(drain.column("system"), drain.column("burst time (us)")))
    assert burst["gengar"] < burst["nvm-direct"]
    # Some residual drain remains after the burst (it really is async).
    drains = dict(zip(drain.column("system"), drain.column("drain time (us)")))
    assert drains["gengar"] > 0
