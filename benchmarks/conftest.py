"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures by running the
corresponding experiment driver exactly once (macro-benchmarks are too large
for statistical rounds) and printing the paper-style table.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_experiment(benchmark, driver):
    """Execute one experiment under pytest-benchmark, single round."""
    result = benchmark.pedantic(driver, rounds=1, iterations=1)
    print()
    print(result.render())
    return result
