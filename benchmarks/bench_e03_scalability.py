"""E3 — throughput scalability with client count.

Claim validated: the one-sided data plane scales with added clients (no
server CPU on the data path), and Gengar's advantage persists at scale.
"""

from conftest import run_experiment

from repro.bench.experiments import e03_scalability


def test_e03_scalability(benchmark):
    result = run_experiment(benchmark, e03_scalability)
    table = result.table("E3")
    rows = {row[0]: row[1:] for row in table.rows}
    # Throughput increases monotonically with client count for both systems.
    for name in ("gengar", "nvm-direct"):
        values = rows[name]
        assert all(b > a for a, b in zip(values, values[1:])), values
    # Gengar stays ahead of NVM-direct at every scale point.
    assert all(g > n for g, n in zip(rows["gengar"], rows["nvm-direct"]))
    servers = result.table("E3b")
    srows = {row[0]: row[1:] for row in servers.rows}
    # Adding memory servers raises throughput for both systems...
    for name in srows:
        assert srows[name][-1] > srows[name][0]
    # ...and Gengar's proxy advantage holds on the write-heavy mix.
    assert all(g > n for g, n in zip(srows["gengar"], srows["nvm-direct"]))
