"""E3 — throughput scalability with client count.

Claim validated: the one-sided data plane scales with added clients (no
server CPU on the data path), and Gengar's advantage persists at scale.
The E3c axis extends the paper: control-plane (metadata) throughput must
scale with master shard count — monotonically from one shard to four.
The E3d axis sweeps the attached-client fanout to 128 over 8 servers and
4 shards: the elastic shared receive pools (PROTOCOLS.md §12) must keep
YCSB throughput scaling monotonically through 64 clients — the fixed
rings they replaced wedged outright at >=16 concurrent clients.
"""

from conftest import run_experiment

from repro.bench.experiments import e03_scalability


def test_e03_scalability(benchmark):
    result = run_experiment(benchmark, e03_scalability)
    table = result.table("E3")
    rows = {row[0]: row[1:] for row in table.rows}
    # Throughput increases monotonically with client count for both systems.
    for name in ("gengar", "nvm-direct"):
        values = rows[name]
        assert all(b > a for a, b in zip(values, values[1:])), values
    # Gengar stays ahead of NVM-direct at every scale point.
    assert all(g > n for g, n in zip(rows["gengar"], rows["nvm-direct"]))
    servers = result.table("E3b")
    srows = {row[0]: row[1:] for row in servers.rows}
    # Adding memory servers raises throughput for both systems...
    for name in srows:
        assert srows[name][-1] > srows[name][0]
    # ...and Gengar's proxy advantage holds on the write-heavy mix.
    assert all(g > n for g, n in zip(srows["gengar"], srows["nvm-direct"]))
    shards = result.table("E3c")
    crows = {row[0]: row[1:] for row in shards.rows}
    kops = crows["alloc/free kops/s"]
    p99 = crows["p99 latency (us)"]
    # Sharding the control plane raises metadata throughput monotonically
    # across 1 -> 2 -> 4 shards, and never at the cost of tail latency.
    assert all(b > a for a, b in zip(kops, kops[1:])), kops
    assert all(b <= a for a, b in zip(p99, p99[1:])), p99
    fanout = result.table("E3d")
    frows = {row[0]: row[1:] for row in fanout.rows}
    counts = [int(h) for h in fanout.headers[1:]]
    fkops = frows["kops/s"]
    # Throughput scales monotonically through 64 attached clients (128 is
    # recorded but sits past the NIC knee, so it only must not collapse).
    through64 = [k for c, k in zip(counts, fkops) if c <= 64]
    assert all(b > a for a, b in zip(through64, through64[1:])), fkops
    assert fkops[-1] > fkops[0]
    # The shared receive pool grew to cover the fanout at every point.
    slots = frows["master pool slots"]
    assert all(s > c for s, c in zip(slots, counts)), (slots, counts)
