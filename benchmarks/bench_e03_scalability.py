"""E3 — throughput scalability with client count.

Claim validated: the one-sided data plane scales with added clients (no
server CPU on the data path), and Gengar's advantage persists at scale.
The E3c axis extends the paper: control-plane (metadata) throughput must
scale with master shard count — monotonically from one shard to four.
"""

from conftest import run_experiment

from repro.bench.experiments import e03_scalability


def test_e03_scalability(benchmark):
    result = run_experiment(benchmark, e03_scalability)
    table = result.table("E3")
    rows = {row[0]: row[1:] for row in table.rows}
    # Throughput increases monotonically with client count for both systems.
    for name in ("gengar", "nvm-direct"):
        values = rows[name]
        assert all(b > a for a, b in zip(values, values[1:])), values
    # Gengar stays ahead of NVM-direct at every scale point.
    assert all(g > n for g, n in zip(rows["gengar"], rows["nvm-direct"]))
    servers = result.table("E3b")
    srows = {row[0]: row[1:] for row in servers.rows}
    # Adding memory servers raises throughput for both systems...
    for name in srows:
        assert srows[name][-1] > srows[name][0]
    # ...and Gengar's proxy advantage holds on the write-heavy mix.
    assert all(g > n for g, n in zip(srows["gengar"], srows["nvm-direct"]))
    shards = result.table("E3c")
    crows = {row[0]: row[1:] for row in shards.rows}
    kops = crows["alloc/free kops/s"]
    p99 = crows["p99 latency (us)"]
    # Sharding the control plane raises metadata throughput monotonically
    # across 1 -> 2 -> 4 shards, and never at the cost of tail latency.
    assert all(b > a for a, b in zip(kops, kops[1:])), kops
    assert all(b <= a for a, b in zip(p99, p99[1:])), p99
