"""E8 — quality of RDMA-semantics hot-data identification.

Claim validated: "we propose to exploit semantics of RDMA primitives to
identify frequently-accessed data" — the epoch-decay policy fed by client
access reports beats recency- and random-placement comparators, and decay
keeps it competitive when the hot set shifts.
"""

from conftest import run_experiment

from repro.bench.experiments import e08_hotness_policy


def test_e08_hotness_policy(benchmark):
    result = run_experiment(benchmark, e08_hotness_policy)
    table = result.table("E8 ")
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    hit = {name: v[0] for name, v in rows.items()}
    # Frequency-informed placement beats recency, random, and none.
    assert hit["gengar-epoch-decay"] > hit["lru"]
    assert hit["gengar-epoch-decay"] > 3 * hit["random"]
    assert hit["no-cache"] == 0
    # After a hot-set shift, decay keeps adapting (stays near the best).
    shift = result.table("E8b")
    s = dict(zip(shift.column("policy"), shift.column("phase-2 hit ratio")))
    assert s["gengar-epoch-decay"] > s["random"] * 3
    assert s["gengar-epoch-decay"] > 0.8 * max(s.values())
