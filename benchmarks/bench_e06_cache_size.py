"""E6 — sensitivity to the DRAM buffer size.

Claim validated: the distributed DRAM buffer converts capacity into hit
ratio until the hot working set fits, after which returns flatten.
"""

from conftest import run_experiment

from repro.bench.experiments import e06_cache_size


def test_e06_cache_size(benchmark):
    result = run_experiment(benchmark, e06_cache_size)
    table = result.table("E6")
    hit_ratios = table.column("hit ratio")
    # Hit ratio grows with cache size...
    assert hit_ratios[0] < hit_ratios[-2]
    # ...and saturates once the working set fits (last two within 5 points).
    assert abs(hit_ratios[-1] - hit_ratios[-2]) < 0.05
    # A working-set-sized cache delivers a solid majority of hits.
    assert hit_ratios[-1] > 0.6
