"""E12 — design-choice ablations.

Claim validated: both mechanisms matter and they compose — the proxy
carries write-heavy workloads, the cache carries read-heavy ones, the
cache *without* the proxy loses its gains to write-through coherence, and
short hotness epochs adapt faster than long ones.
"""

from conftest import run_experiment

from repro.bench.experiments import e12_ablation


def test_e12_ablation(benchmark):
    result = run_experiment(benchmark, e12_ablation)
    mech = result.table("E12 ")
    kops = dict(zip(mech.column("variant"), mech.column("kops/s")))
    # On write-heavy YCSB-A: proxy variants dominate; cache alone hurts.
    assert kops["gengar"] > kops["nvm-direct"] * 1.2
    assert kops["proxy-only"] > kops["nvm-direct"] * 1.2
    assert kops["cache-only"] < kops["nvm-direct"]
    epochs = result.table("E12b")
    ratios = epochs.column("hit ratio")
    # Shorter epochs adapt faster (higher hit ratio within the run).
    assert ratios[0] > ratios[-1]
    rings = result.table("E12c")
    lat = rings.column("avg ack latency (us)")
    # Bigger rings absorb the burst better (monotone non-increasing).
    assert lat[0] >= lat[1] >= lat[2]
    meta = result.table("E12d")
    kops_meta = dict(zip(meta.column("metadata cache"), meta.column("kops/s")))
    lookups = dict(zip(meta.column("metadata cache"), meta.column("lookup RPCs")))
    # Without the client metadata cache every op pays a lookup RPC.
    assert kops_meta["on"] > kops_meta["off"] * 1.2
    assert lookups["off"] > 5 * lookups["on"]
    journal = result.table("E12e")
    cost = dict(zip(journal.column("journal"),
                    journal.column("gmalloc mean (us)")))
    # Journaled allocation is measurably slower, but not catastrophically.
    assert cost["on"] > cost["off"] * 1.2
    assert cost["on"] < cost["off"] * 4
