"""E7 — sensitivity to access skew (zipfian theta sweep).

Claim validated: hot-data caching pays off in proportion to skew — at low
skew there is no stable hot set to cache; at YCSB-default skew (0.99) the
cache captures a large fraction of accesses.
"""

from conftest import run_experiment

from repro.bench.experiments import e07_skew


def test_e07_skew(benchmark):
    result = run_experiment(benchmark, e07_skew)
    hits = result.table("E7b")
    ratios = hits.column("hit ratio")
    # Hit ratio rises monotonically with skew.
    assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
    table = result.table("E7 ")
    rows = {row[0]: row[1:] for row in table.rows}
    # At the highest skew Gengar's lead over NVM-direct is at its largest.
    lead = [g / n for g, n in zip(rows["gengar"], rows["nvm-direct"])]
    assert lead[-1] == max(lead)
