"""Comparator systems.

The paper evaluates Gengar against state-of-the-art DSHM designs.  We
re-implement the relevant design points rather than mocking them:

* ``nvm-direct`` — Octopus-class: one-sided RDMA straight to NVM, no DRAM
  cache, no proxy (a :class:`~repro.core.config.GengarConfig` ablation).
* ``dram-only`` — everything in server DRAM; the performance upper bound
  with a capacity ceiling.
* ``client-replica`` — Hotpot-class: clients keep lease-based local replicas
  of objects they read; writes go straight to NVM.
* ``gengar`` / ``cache-only`` / ``proxy-only`` — the paper's system and its
  two single-mechanism ablations.

All systems expose the same client operations, so application drivers
(YCSB, MapReduce) are system-agnostic.
"""

from repro.baselines.client_replica import ReplicaClient
from repro.baselines.common import SYSTEM_NAMES, BuiltSystem, build_system

__all__ = ["build_system", "BuiltSystem", "SYSTEM_NAMES", "ReplicaClient"]
