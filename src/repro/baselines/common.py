"""The uniform DSHM system interface used by every benchmark.

``build_system(name, sim, ...)`` boots the named system and returns a
:class:`BuiltSystem` whose ``clients`` all speak the Gengar client API
(``gmalloc``/``gfree``/``gread``/``gwrite``/``gsync``/``glock``/``gunlock``
as generator methods).  Benchmarks never special-case a system beyond its
name, which keeps the comparison apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.baselines.client_replica import ReplicaClient
from repro.core.api import GengarPool
from repro.core.config import (
    CACHE_ONLY,
    DRAM_ONLY,
    FULL,
    NVM_DIRECT,
    PROXY_ONLY,
    GengarConfig,
)


@dataclass
class BuiltSystem:
    """A booted system ready to run workloads."""

    name: str
    pool: GengarPool
    clients: List  # objects speaking the Gengar client API

    @property
    def sim(self) -> "Simulator":
        return self.pool.sim

    def run(self, *generators, max_events: Optional[int] = None) -> list:
        """Run application processes to completion (see GengarPool.run)."""
        return self.pool.run(*generators, max_events=max_events)


def _gengar_variant(config: GengarConfig) -> Callable:
    def factory(sim, num_servers, num_clients, config_overrides=None, **kw):
        cfg = config_overrides(config) if config_overrides else config
        pool = GengarPool.build(sim, num_servers=num_servers,
                                num_clients=num_clients, config=cfg, **kw)
        return pool, list(pool.clients)

    return factory


def _client_replica(sim, num_servers, num_clients, config_overrides=None,
                    lease_ns: int = 200_000, replica_bytes: int = 4 * 1024 * 1024, **kw):
    cfg = config_overrides(NVM_DIRECT) if config_overrides else NVM_DIRECT
    pool = GengarPool.build(sim, num_servers=num_servers,
                            num_clients=num_clients, config=cfg, **kw)
    clients = [
        ReplicaClient(inner, lease_ns=lease_ns, capacity_bytes=replica_bytes)
        for inner in pool.clients
    ]
    return pool, clients


_FACTORIES: Dict[str, Callable] = {
    "gengar": _gengar_variant(FULL),
    "cache-only": _gengar_variant(CACHE_ONLY),
    "proxy-only": _gengar_variant(PROXY_ONLY),
    "nvm-direct": _gengar_variant(NVM_DIRECT),
    "dram-only": _gengar_variant(DRAM_ONLY),
    "client-replica": _client_replica,
}

#: All system names, in the order benchmark tables report them.
SYSTEM_NAMES = tuple(_FACTORIES)


def build_system(
    name: str,
    sim: "Simulator",
    num_servers: int = 2,
    num_clients: int = 2,
    config_overrides: Optional[Callable[[GengarConfig], GengarConfig]] = None,
    **kw,
) -> BuiltSystem:
    """Boot the named system.

    Args:
        name: one of :data:`SYSTEM_NAMES`.
        config_overrides: optional function applied to the system's base
            config (for sweeps: cache size, ring slots, thresholds) — it must
            preserve the mechanism switches that define the system.
        kw: forwarded to :meth:`GengarPool.build` (device specs, link, ...).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown system {name!r}; choose from {SYSTEM_NAMES}") from None
    pool, clients = factory(sim, num_servers, num_clients,
                            config_overrides=config_overrides, **kw)
    return BuiltSystem(name=name, pool=pool, clients=clients)
