"""Hotpot-class comparator: client-local replicas with lease expiry.

This design point caches whole objects *at the client* after a read.  Repeat
reads within the lease window are local (no network at all); after the lease
expires the next read re-fetches.  Writes go straight to the NVM home (this
system has no proxy) and update the local replica.

Compared with Gengar this wins on single-client re-read latency but:

* every client pays DRAM for its own replicas (no sharing of cache space),
* cross-client freshness is only lease-bounded (Gengar's server-side cache
  has a single authoritative copy), and
* writes still eat the full NVM latency.

Lock operations delegate to the underlying one-sided lock protocol and
invalidate the local replica on acquire, so locked accesses are coherent —
the same guarantee Gengar provides.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.client import GengarClient


@dataclass
class _Replica:
    data: bytes
    fetched_at: int


class ReplicaClient:
    """Wraps a (NVM-direct) Gengar client with client-local replication."""

    def __init__(self, inner: GengarClient, lease_ns: int = 200_000,
                 capacity_bytes: int = 4 * 1024 * 1024):
        if lease_ns <= 0 or capacity_bytes <= 0:
            raise ValueError("lease and capacity must be positive")
        self.inner = inner
        self.sim = inner.sim
        self.name = f"{inner.name}.replica"
        self.lease_ns = lease_ns
        self.capacity_bytes = capacity_bytes
        self._replicas: "OrderedDict[int, _Replica]" = OrderedDict()
        self._bytes = 0
        m = self.sim.metrics
        self.replica_hits = m.counter("replica.hits")
        self.replica_misses = m.counter("replica.misses")

    # ------------------------------------------------------------------
    # Replica cache maintenance
    # ------------------------------------------------------------------
    def _fresh(self, gaddr: int) -> Optional[_Replica]:
        rep = self._replicas.get(gaddr)
        if rep is None:
            return None
        if self.sim.now - rep.fetched_at > self.lease_ns:
            self._drop(gaddr)
            return None
        self._replicas.move_to_end(gaddr)  # LRU touch
        return rep

    def _store(self, gaddr: int, data: bytes) -> None:
        self._drop(gaddr)
        while self._bytes + len(data) > self.capacity_bytes and self._replicas:
            victim, rep = self._replicas.popitem(last=False)
            self._bytes -= len(rep.data)
        if self._bytes + len(data) <= self.capacity_bytes:
            self._replicas[gaddr] = _Replica(data=data, fetched_at=self.sim.now)
            self._bytes += len(data)

    def _drop(self, gaddr: int) -> None:
        rep = self._replicas.pop(gaddr, None)
        if rep is not None:
            self._bytes -= len(rep.data)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def gmalloc(self, size: int) -> Generator[Any, Any, int]:
        gaddr = yield from self.inner.gmalloc(size)
        return gaddr

    def gfree(self, gaddr: int) -> Generator[Any, Any, None]:
        self._drop(gaddr)
        yield from self.inner.gfree(gaddr)

    def gread(self, gaddr: int, offset: int = 0,
              length: Optional[int] = None) -> Generator[Any, Any, bytes]:
        rep = self._fresh(gaddr)
        if rep is not None and (length is None or offset + length <= len(rep.data)):
            yield from self.inner.node.cpu_work()  # local copy still costs CPU
            self.replica_hits.add()
            end = len(rep.data) if length is None else offset + length
            return rep.data[offset:end]
        self.replica_misses.add()
        # Fetch the whole object so future reads of any range hit locally.
        data = yield from self.inner.gread(gaddr)
        self._store(gaddr, data)
        if length is None:
            return data[offset:]
        return data[offset : offset + length]

    def gwrite(self, gaddr: int, data: bytes, offset: int = 0) -> Generator[Any, Any, None]:
        yield from self.inner.gwrite(gaddr, data, offset=offset)
        rep = self._replicas.get(gaddr)
        if rep is not None:
            if offset + len(data) <= len(rep.data):
                patched = bytearray(rep.data)
                patched[offset : offset + len(data)] = data
                rep.data = bytes(patched)
                rep.fetched_at = self.sim.now
            else:
                self._drop(gaddr)

    def gsync(self, server_id: Optional[int] = None) -> Generator[Any, Any, None]:
        yield from self.inner.gsync(server_id=server_id)

    def glock(self, gaddr: int, write: bool = True) -> Generator[Any, Any, None]:
        yield from self.inner.glock(gaddr, write=write)
        # Coherence under locks: never trust a pre-lock replica.
        self._drop(gaddr)

    def gunlock(self, gaddr: int, write: bool = True) -> Generator[Any, Any, None]:
        yield from self.inner.gunlock(gaddr, write=write)

    # Pass-throughs benchmarks rely on.
    @property
    def node(self):
        return self.inner.node

    @property
    def config(self):
        return self.inner.config
