"""Synthetic text corpus for the MapReduce experiments.

Real MapReduce evaluations run wordcount/grep/sort over text; we generate a
deterministic corpus whose word popularity is zipfian (like natural
language), so the reduce-side key distribution is realistically skewed and
the word counts are exactly verifiable.
"""

from __future__ import annotations

from typing import List

from repro.workloads.zipf import ZipfianGenerator

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _make_word(idx: int) -> str:
    """A pronounceable, unique word for vocabulary slot ``idx``."""
    chars = []
    n = idx
    while True:
        chars.append(_CONSONANTS[n % len(_CONSONANTS)])
        n //= len(_CONSONANTS)
        chars.append(_VOWELS[n % len(_VOWELS)])
        n //= len(_VOWELS)
        if n == 0:
            break
    return "".join(chars)


class CorpusGenerator:
    """Deterministic zipfian-text generator."""

    def __init__(self, vocab_size: int = 500, theta: float = 0.9, rng=None):
        if vocab_size < 1:
            raise ValueError("vocabulary must be non-empty")
        if rng is None:
            raise ValueError("pass an explicit rng for determinism")
        self.vocab: List[str] = [_make_word(i) for i in range(vocab_size)]
        if len(set(self.vocab)) != vocab_size:
            raise AssertionError("vocabulary collision")  # _make_word is injective
        self._zipf = ZipfianGenerator(vocab_size, theta, rng)
        self.rng = rng

    def words(self, count: int) -> List[str]:
        """Draw ``count`` words."""
        return [self.vocab[self._zipf.next()] for _ in range(count)]

    def chunk(self, approx_bytes: int) -> bytes:
        """One input split of roughly ``approx_bytes`` of text."""
        parts: List[str] = []
        size = 0
        while size < approx_bytes:
            word = self.vocab[self._zipf.next()]
            parts.append(word)
            size += len(word) + 1
        return " ".join(parts).encode()

    def chunks(self, num_chunks: int, approx_bytes: int) -> List[bytes]:
        """A whole input: ``num_chunks`` splits."""
        return [self.chunk(approx_bytes) for _ in range(num_chunks)]
