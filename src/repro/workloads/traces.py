"""Operation traces: generation, (de)serialization, and replay.

YCSB's closed-loop generators cover the standard mixes; traces cover
everything else — production-like streams with bursts, diurnal phases, or
hand-crafted adversarial patterns.  A trace is a list of timestamped
:class:`TraceOp` records that can be saved to a compact text format,
inspected, and replayed open-loop against any DSHM system's KV store.

Open-loop replay (issue at the trace's timestamps, don't wait for the
previous op) is what exposes queueing collapse; the closed-loop YCSB runner
can never drive a system past saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.workloads.zipf import ScrambledZipfianGenerator, UniformGenerator

#: Trace op kinds (a trace is data-plane only: no allocation ops).
KINDS = ("read", "write")


class TraceError(Exception):
    """Malformed trace record or replay misuse."""


@dataclass(frozen=True)
class TraceOp:
    """One trace record."""

    at_ns: int
    kind: str
    key: int
    size: int = 0  # writes: payload size; reads: 0 = whole record

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise TraceError(f"unknown trace op kind {self.kind!r}")
        if self.at_ns < 0 or self.key < 0 or self.size < 0:
            raise TraceError("trace fields must be non-negative")

    def encode(self) -> str:
        return f"{self.at_ns} {self.kind} {self.key} {self.size}"

    @classmethod
    def decode(cls, line: str) -> "TraceOp":
        parts = line.split()
        if len(parts) != 4:
            raise TraceError(f"bad trace line: {line!r}")
        return cls(at_ns=int(parts[0]), kind=parts[1],
                   key=int(parts[2]), size=int(parts[3]))


def dump_trace(ops: Iterable[TraceOp]) -> str:
    """Serialize a trace to its text form (one op per line)."""
    return "\n".join(op.encode() for op in ops)


def load_trace(text: str) -> List[TraceOp]:
    """Parse a trace; validates monotone timestamps."""
    ops = [TraceOp.decode(line) for line in text.splitlines() if line.strip()]
    for a, b in zip(ops, ops[1:]):
        if b.at_ns < a.at_ns:
            raise TraceError(f"timestamps go backwards at t={b.at_ns}")
    return ops


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def generate_trace(
    rng,
    duration_ns: int,
    mean_interarrival_ns: int,
    record_count: int,
    read_fraction: float = 0.9,
    value_size: int = 1024,
    distribution: str = "zipfian",
    zipf_theta: float = 0.99,
    burst_every_ns: Optional[int] = None,
    burst_ops: int = 0,
) -> List[TraceOp]:
    """A Poisson-ish open-loop trace, optionally with periodic bursts.

    Arrivals are exponential with the given mean; every ``burst_every_ns``
    an extra back-to-back clump of ``burst_ops`` operations is injected —
    the pattern that stresses the proxy ring and the NVM drain.
    """
    if duration_ns <= 0 or mean_interarrival_ns <= 0 or record_count < 1:
        raise TraceError("duration, interarrival, and record count must be positive")
    if not 0.0 <= read_fraction <= 1.0:
        raise TraceError("read fraction must be in [0, 1]")
    if distribution == "zipfian":
        keygen = ScrambledZipfianGenerator(record_count, zipf_theta, rng)
    elif distribution == "uniform":
        keygen = UniformGenerator(record_count, rng)
    else:
        raise TraceError(f"unknown distribution {distribution!r}")

    ops: List[TraceOp] = []
    now = 0
    next_burst = burst_every_ns if burst_every_ns else None
    while now < duration_ns:
        now += max(1, round(rng.expovariate(1.0 / mean_interarrival_ns)))
        if next_burst is not None and now >= next_burst:
            for _ in range(burst_ops):
                ops.append(TraceOp(at_ns=next_burst, kind="write",
                                   key=keygen.next(), size=value_size))
            next_burst += burst_every_ns
        kind = "read" if rng.random() < read_fraction else "write"
        ops.append(TraceOp(at_ns=now, kind=kind, key=keygen.next(),
                           size=0 if kind == "read" else value_size))
    return ops


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
@dataclass
class ReplayResult:
    """Open-loop replay measurements."""

    issued: int
    elapsed_ns: int
    latency_by_kind: Dict[str, Dict[str, float]]
    max_outstanding: int


class TraceReplayer:
    """Replays a trace open-loop against one KV store.

    Operations are issued at their trace timestamps regardless of whether
    earlier ones finished, spread round-robin over the given clients.
    """

    def __init__(self, clients: List, store, value_size: int = 1024):
        if not clients:
            raise TraceError("need at least one client")
        self.clients = clients
        self.store = store
        self.value_size = value_size

    def replay(self, ops: List[TraceOp]) -> Generator[Any, Any, ReplayResult]:
        from repro.sim.stats import Histogram

        sim = self.clients[0].sim
        start = sim.now
        hists = {kind: Histogram(f"trace.{kind}") for kind in KINDS}
        state = {"outstanding": 0, "peak": 0}
        procs = []

        def one_op(op: TraceOp, client):
            state["outstanding"] += 1
            state["peak"] = max(state["peak"], state["outstanding"])
            t0 = sim.now
            try:
                if op.kind == "read":
                    yield from self.store.get(client, op.key)
                else:
                    yield from self.store.put(
                        client, op.key, bytes([op.key % 256]) * self.value_size)
                hists[op.kind].record(sim.now - t0)
            finally:
                state["outstanding"] -= 1

        def dispatcher(sim):
            for i, op in enumerate(ops):
                due = start + op.at_ns
                if due > sim.now:
                    yield sim.timeout(due - sim.now)
                procs.append(sim.spawn(one_op(op, self.clients[i % len(self.clients)]),
                                       name="trace.op"))
            if procs:
                yield sim.all_of(procs)

        main = sim.spawn(dispatcher(sim), name="trace.dispatch")
        yield main
        return ReplayResult(
            issued=len(ops),
            elapsed_ns=sim.now - start,
            latency_by_kind={k: h.snapshot() for k, h in hists.items() if h.count},
            max_outstanding=state["peak"],
        )
