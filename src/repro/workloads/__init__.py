"""Workload generators: YCSB-style key-value mixes, text corpora, and a
Jepsen-style transactional bank."""

from repro.workloads.bank import (
    BankSpec,
    bank_read_balances,
    bank_setup,
    bank_total,
    bank_transfer,
    decode_balance,
    encode_balance,
)
from repro.workloads.corpus import CorpusGenerator
from repro.workloads.traces import (
    ReplayResult,
    TraceOp,
    TraceReplayer,
    dump_trace,
    generate_trace,
    load_trace,
)
from repro.workloads.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WORKLOADS,
    Op,
    WorkloadSpec,
    YcsbGenerator,
)
from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

__all__ = [
    "BankSpec",
    "bank_setup",
    "bank_transfer",
    "bank_read_balances",
    "bank_total",
    "encode_balance",
    "decode_balance",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "LatestGenerator",
    "WorkloadSpec",
    "YcsbGenerator",
    "Op",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "WORKLOADS",
    "CorpusGenerator",
    "TraceOp",
    "TraceReplayer",
    "ReplayResult",
    "generate_trace",
    "dump_trace",
    "load_trace",
]
