"""Jepsen-style bank-transfer workload over ``repro.txn``.

A fixed set of accounts, each an 8-byte big-endian balance in its own
global object.  Workers pick random ``(src, dst)`` pairs and move a
random amount with a two-object transaction (read both, write both).
Money is never created or destroyed *by a transfer*, so the workload
carries a single global invariant the chaos soak can audit byte-for-byte
after any amount of mid-commit carnage:

    sum(balances) == accounts * initial_balance

A torn transfer — one account debited, the other never credited because
the client died between applies — breaks conservation immediately, which
makes this the sharpest end-to-end probe of the intent-record
roll-forward/roll-back machinery.  Balances may legitimately go negative
(we don't read-check-skip); only the total is invariant.

The transfer driver also feeds :mod:`repro.check.serialize` through the
ordinary history hooks: every transfer is a txn with a 2-key read-set and
2-key write-set, so serializability violations (e.g. two transfers both
reading the same pre-balance) surface in the audit as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Sequence

__all__ = ["BankSpec", "encode_balance", "decode_balance", "bank_setup",
           "bank_transfer", "bank_read_balances", "bank_total"]

BALANCE_BYTES = 8


@dataclass(frozen=True)
class BankSpec:
    """Sizing for one bank run."""

    accounts: int = 16
    initial_balance: int = 1000
    max_transfer: int = 100

    def __post_init__(self) -> None:
        if self.accounts < 2:
            raise ValueError("bank needs at least 2 accounts")
        if self.initial_balance < 0 or self.max_transfer < 1:
            raise ValueError("initial balance must be >= 0, max transfer >= 1")

    @property
    def expected_total(self) -> int:
        return self.accounts * self.initial_balance


def encode_balance(value: int) -> bytes:
    """Balances are signed (transfers may overdraw); two's complement."""
    return value.to_bytes(BALANCE_BYTES, "big", signed=True)


def decode_balance(data: bytes) -> int:
    return int.from_bytes(data[:BALANCE_BYTES], "big", signed=True)


def bank_setup(client, spec: BankSpec) -> Generator[Any, Any, List[int]]:
    """Allocate and initialise the accounts; returns their gaddrs."""
    gaddrs: List[int] = []
    for _ in range(spec.accounts):
        gaddr = yield from client.gmalloc(BALANCE_BYTES)
        yield from client.gwrite(gaddr, encode_balance(spec.initial_balance))
        gaddrs.append(gaddr)
    yield from client.gsync()
    return gaddrs


def bank_transfer(client, src: int, dst: int,
                  amount: int) -> Generator[Any, Any, int]:
    """Move ``amount`` from account ``src`` to ``dst`` (gaddrs) in one
    transaction.  Returns the source's post-transfer balance."""

    def body(txn):
        src_raw = yield from txn.read(src, length=BALANCE_BYTES)
        dst_raw = yield from txn.read(dst, length=BALANCE_BYTES)
        new_src = decode_balance(src_raw) - amount
        txn.write(src, encode_balance(new_src))
        txn.write(dst, encode_balance(decode_balance(dst_raw) + amount))
        return new_src

    return (yield from client.txn.run((src, dst), body))


def bank_read_balances(client,
                       gaddrs: Sequence[int]) -> Generator[Any, Any, Dict[int, int]]:
    """Read every balance outside any transaction (audit helper).

    Uses the untraced read path so the audit itself doesn't pollute a
    recorded history with single-register reads of txn-managed keys.
    """
    balances: Dict[int, int] = {}
    for gaddr in gaddrs:
        raw = yield from client._gread_traced(gaddr, 0, BALANCE_BYTES)
        balances[gaddr] = decode_balance(raw)
    return balances


def bank_total(balances: Dict[int, int]) -> int:
    return sum(balances.values())
