"""YCSB core workloads A-F.

Op mixes, record/value sizing, and request distributions follow the YCSB
core-workload definitions:

====  =============================  =======================  ============
name  mix                            distribution             paper's use
====  =============================  =======================  ============
A     50% read / 50% update          zipfian                  update-heavy
B     95% read / 5% update           zipfian                  read-mostly
C     100% read                      zipfian                  read-only
D     95% read / 5% insert           latest                   read-latest
E     95% scan / 5% insert           zipfian (scan starts)    short scans
F     50% read / 50% read-mod-write  zipfian                  RMW
====  =============================  =======================  ============

Point READs are independent, so the driver
(:class:`repro.bench.runner.YcsbRunner`) coalesces each worker's runs of
consecutive READ ops into one batched ``multi_get`` (the client's
doorbell-batched ``gread_many``); SCAN ranges batch the same way.  The op
*stream* produced here is identical either way — batching only changes how
the driver issues it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)


class Op(enum.Enum):
    """One YCSB operation kind."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "rmw"


@dataclass(frozen=True)
class WorkloadSpec:
    """One YCSB core workload's parameters."""

    name: str
    read_prop: float = 0.0
    update_prop: float = 0.0
    insert_prop: float = 0.0
    scan_prop: float = 0.0
    rmw_prop: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    record_count: int = 1000
    value_size: int = 1024
    max_scan_len: int = 16
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        total = (self.read_prop + self.update_prop + self.insert_prop
                 + self.scan_prop + self.rmw_prop)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: op mix sums to {total}, not 1")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.record_count < 1 or self.value_size < 1:
            raise ValueError("record count and value size must be positive")

    def scaled(self, record_count: int = None, value_size: int = None,
               zipf_theta: float = None) -> "WorkloadSpec":
        """A copy with different sizing (for sweeps)."""
        from dataclasses import replace

        kw = {}
        if record_count is not None:
            kw["record_count"] = record_count
        if value_size is not None:
            kw["value_size"] = value_size
        if zipf_theta is not None:
            kw["zipf_theta"] = zipf_theta
        return replace(self, **kw)


WORKLOAD_A = WorkloadSpec(name="A", read_prop=0.5, update_prop=0.5)
WORKLOAD_B = WorkloadSpec(name="B", read_prop=0.95, update_prop=0.05)
WORKLOAD_C = WorkloadSpec(name="C", read_prop=1.0)
WORKLOAD_D = WorkloadSpec(name="D", read_prop=0.95, insert_prop=0.05,
                          distribution="latest")
WORKLOAD_E = WorkloadSpec(name="E", scan_prop=0.95, insert_prop=0.05)
WORKLOAD_F = WorkloadSpec(name="F", read_prop=0.5, rmw_prop=0.5)

WORKLOADS = {w.name: w for w in
             (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D, WORKLOAD_E, WORKLOAD_F)}


class YcsbGenerator:
    """Streams ``(op, key_id, scan_len)`` tuples for one worker.

    Each worker gets its own generator (seeded independently) so concurrent
    workers don't interleave draws nondeterministically.
    """

    def __init__(self, spec: WorkloadSpec, rng):
        self.spec = spec
        self.rng = rng
        self._inserted = spec.record_count
        if spec.distribution == "zipfian":
            self._keygen = ScrambledZipfianGenerator(spec.record_count,
                                                     spec.zipf_theta, rng)
        elif spec.distribution == "uniform":
            self._keygen = UniformGenerator(spec.record_count, rng)
        else:  # latest
            self._keygen = LatestGenerator(spec.record_count, spec.zipf_theta, rng)

    @property
    def inserted(self) -> int:
        """Total records including dynamic inserts."""
        return self._inserted

    def next_op(self) -> Tuple[Op, int, int]:
        """Draw one operation: ``(op, key_id, scan_len)``."""
        spec = self.spec
        r = self.rng.random()
        if r < spec.read_prop:
            return (Op.READ, self._next_key(), 0)
        r -= spec.read_prop
        if r < spec.update_prop:
            return (Op.UPDATE, self._next_key(), 0)
        r -= spec.update_prop
        if r < spec.rmw_prop:
            return (Op.RMW, self._next_key(), 0)
        r -= spec.rmw_prop
        if r < spec.scan_prop:
            scan_len = self.rng.randrange(1, spec.max_scan_len + 1)
            return (Op.SCAN, self._next_key(), scan_len)
        # insert
        key = self._inserted
        self._inserted += 1
        if isinstance(self._keygen, LatestGenerator):
            self._keygen.advance()
        return (Op.INSERT, key, 0)

    def _next_key(self) -> int:
        key = self._keygen.next()
        # Inserts grow the space; clamp reads into what exists.
        return min(key, self._inserted - 1)

    def ops(self, count: int) -> Iterator[Tuple[Op, int, int]]:
        """Stream ``count`` operations."""
        for _ in range(count):
            yield self.next_op()

    def value(self, key_id: int, version: int = 0) -> bytes:
        """A deterministic value body for ``key_id`` (verifiable in tests)."""
        stamp = f"k{key_id}v{version}|".encode()
        reps = self.spec.value_size // len(stamp) + 1
        return (stamp * reps)[: self.spec.value_size]
