"""Key-distribution generators, matching YCSB's semantics.

* :class:`ZipfianGenerator` — the Gray et al. rejection-free algorithm YCSB
  uses, favouring low-numbered items with skew ``theta``.
* :class:`ScrambledZipfianGenerator` — zipfian popularity spread over the
  key space by hashing, so hot keys are not clustered (YCSB's default).
* :class:`UniformGenerator` — uniform over the key space.
* :class:`LatestGenerator` — zipfian over recency: the most recently
  inserted keys are hottest (YCSB workload D).
"""

from __future__ import annotations

from typing import Dict, Tuple

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 bytes (YCSB's key scrambler)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) % (1 << 64)
        value >>= 8
    return h


# zeta(n, theta) is O(n); memoize since sweeps rebuild generators often.
_zeta_cache: Dict[Tuple[int, float], float] = {}


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number sum_{i=1..n} 1/i^theta."""
    key = (n, theta)
    cached = _zeta_cache.get(key)
    if cached is not None:
        return cached
    total = 0.0
    for i in range(1, n + 1):
        total += 1.0 / (i**theta)
    _zeta_cache[key] = total
    return total


class ZipfianGenerator:
    """Draws items 0..n-1 with zipfian popularity (item 0 hottest)."""

    def __init__(self, n: int, theta: float = 0.99, rng=None):
        if n < 1:
            raise ValueError("need at least one item")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        if rng is None:
            raise ValueError("pass an explicit rng for determinism")
        self.n = n
        self.theta = theta
        self.rng = rng
        self._zetan = zeta(n, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if n > 2:
            zeta2 = zeta(2, theta)
            self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / self._zetan)
        else:
            # Unused: for n <= 2 the first branches of next() cover the
            # whole space (zetan == 1 + 0.5**theta when n == 2), and the
            # eta formula degenerates to 0/0 there.
            self._eta = 0.0

    def next(self) -> int:
        """One draw in [0, n)."""
        if self.n == 1:
            return 0
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1.0) ** self._alpha))


class ScrambledZipfianGenerator:
    """Zipfian popularity scattered across the key space by FNV hashing."""

    def __init__(self, n: int, theta: float = 0.99, rng=None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n


class UniformGenerator:
    """Uniform draws over [0, n)."""

    def __init__(self, n: int, rng=None):
        if n < 1:
            raise ValueError("need at least one item")
        if rng is None:
            raise ValueError("pass an explicit rng for determinism")
        self.n = n
        self.rng = rng

    def next(self) -> int:
        return self.rng.randrange(self.n)


class LatestGenerator:
    """Zipfian over recency: item ``max_item`` is hottest (YCSB 'latest').

    Call :meth:`advance` whenever an insert extends the key space.
    """

    def __init__(self, n: int, theta: float = 0.99, rng=None):
        self._zipf = ZipfianGenerator(n, theta, rng)
        self.max_item = n - 1

    def advance(self) -> int:
        """Register one insert; returns the new hottest item id."""
        self.max_item += 1
        return self.max_item

    def next(self) -> int:
        # Distance-from-latest is zipfian; clamp into the live range.
        back = self._zipf.next()
        return max(0, self.max_item - back)
