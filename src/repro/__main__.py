"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — version, systems, experiment ids.
* ``demo`` — the quickstart walkthrough (same as examples/quickstart.py).
* ``experiments [IDS...]`` — regenerate reconstructed tables/figures.
* ``ycsb --workload A --system gengar`` — one YCSB run with knobs.
* ``trace --out trace.json`` — instrumented YCSB run, exported as Chrome
  ``trace_event`` JSON (load in Perfetto / ``chrome://tracing``).
* ``metrics --format prom`` — one YCSB run, metric registry rendered as
  Prometheus text (or a versioned JSON snapshot).
* ``check HISTORY.jsonl`` — audit a recorded op history (see
  ``bench/chaos.py --check-linearizable``) for per-key linearizability
  and lock-model violations; histories containing transactions are
  additionally checked for atomicity + strict serializability.  Exits
  non-zero with a minimal counterexample on failure.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.baselines.common import SYSTEM_NAMES
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.workloads.ycsb import WORKLOADS

    print(f"gengar reproduction v{__version__}")
    print(f"systems:     {', '.join(SYSTEM_NAMES)}")
    print(f"workloads:   YCSB {', '.join(sorted(WORKLOADS))}")
    print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core import GengarPool
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    pool = GengarPool.build(sim, num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.gwrite(gaddr, b"demo payload" + bytes(1012))
        data = yield from client.gread(gaddr, length=12)
        yield from client.gsync()
        return gaddr, data

    ((gaddr, data),) = pool.run(app(sim))
    print(f"allocated {gaddr:#x}, wrote+read back: {data!r}")
    print(f"virtual time elapsed: {sim.now / 1000:.1f} us")
    for key, value in pool.metrics_snapshot().items():
        print(f"  {key:24s} {value}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.run_all import main as run_all

    return run_all(args.ids)


def _cmd_ycsb(args: argparse.Namespace) -> int:
    from repro.bench.experiments import bench_config, boot
    from repro.bench.runner import YcsbRunner
    from repro.workloads.ycsb import WORKLOADS

    spec = WORKLOADS[args.workload.upper()].scaled(
        record_count=args.records, value_size=args.value_size)
    # The interactive demo runs the full system — including prefetch, which
    # bench_config() switches off for the paper-reproduction experiments.
    system = boot(args.system, seed=args.seed, num_servers=args.servers,
                  num_clients=args.clients,
                  config_overrides=bench_config(prefetch_depth=8))
    runner = YcsbRunner(system, spec, num_workers=args.clients,
                        ops_per_worker=args.ops)
    runner.load()
    result = runner.run()
    print(f"system={result.system} workload=YCSB-{result.workload}")
    print(f"throughput: {result.throughput_ops_s / 1000:.1f} kops/s "
          f"({result.total_ops} ops in {result.elapsed_ns / 1e6:.2f} ms virtual)")
    print(f"cache hit ratio: {result.cache_hit_ratio:.3f}")
    for kind, snap in sorted(result.latency_ns.items()):
        print(f"  {kind:8s} mean {snap['mean'] / 1000:7.2f} us   "
              f"p99 {snap['p99'] / 1000:7.2f} us   n={snap['count']}")
    return 0


def _instrumented_ycsb(args: argparse.Namespace):
    """Boot one system, attach a span recorder, run a YCSB pass.

    Returns ``(system, runner_result, recorder)``; ``recorder`` is None when
    the obs layer's kill switch is off.
    """
    from repro import obs
    from repro.bench.experiments import bench_config, boot
    from repro.bench.runner import YcsbRunner
    from repro.workloads.ycsb import WORKLOADS

    spec = WORKLOADS[args.workload.upper()].scaled(
        record_count=args.records, value_size=args.value_size)
    # Instrumented demo: full system, prefetch included (bench_config()
    # switches it off for the paper-reproduction experiments only).
    system = boot(args.system, seed=args.seed, num_servers=args.servers,
                  num_clients=args.clients,
                  config_overrides=bench_config(prefetch_depth=8))
    recorder = obs.install(system.sim)
    runner = YcsbRunner(system, spec, num_workers=args.clients,
                        ops_per_worker=args.ops)
    runner.load()
    result = runner.run()
    return system, result, recorder


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    system, result, recorder = _instrumented_ycsb(args)
    if recorder is None:
        print("observability layer is disabled (repro.obs.ENABLED=False)",
              file=sys.stderr)
        return 1
    with open(args.out, "w") as fh:
        json.dump(obs.chrome_trace(recorder), fh)
    print(f"wrote {args.out}: {len(recorder)} spans "
          f"({recorder.dropped} dropped) over {len(recorder.tracks())} tracks "
          f"from {result.total_ops} YCSB-{result.workload} ops")
    if args.spans:
        with open(args.spans, "w") as fh:
            fh.write(obs.spans_jsonl(recorder))
        print(f"wrote {args.spans}: one JSON object per span")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    system, _result, _recorder = _instrumented_ycsb(args)
    if args.format == "prom":
        sys.stdout.write(obs.prometheus_text(system.sim.metrics))
    else:
        json.dump(obs.registry_snapshot(system.sim.metrics), sys.stdout,
                  indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import check_history, check_txn_history, load_history

    ops = load_history(args.history)
    result = check_history(ops, max_states=args.max_states)
    stats = result.stats
    print(f"{args.history}: {stats['ops']} ops, "
          f"{stats['register_keys']} register keys, "
          f"{stats['lock_keys']} lock keys")
    if stats["undecided_keys"]:
        print(f"undecided (state cap): "
              f"{[hex(k) for k in stats['undecided_keys']]}", file=sys.stderr)
    results = [result]
    if any("txn" in rec for rec in ops):
        txn_result = check_txn_history(ops, max_states=args.max_states)
        ts = txn_result.stats
        print(f"transactions: {ts['txns']} "
              f"({ts['committed']} committed, {ts['aborted']} aborted, "
              f"{ts['indeterminate']} indeterminate) "
              f"over {ts['components']} key components")
        if ts["undecided_components"]:
            print(f"undecided txn components (state cap): "
                  f"{ts['undecided_components']}", file=sys.stderr)
        results.append(txn_result)
    if all(r.ok for r in results):
        if len(results) > 1:
            print("history is linearizable and strictly serializable "
                  "(atomicity + lock audits pass)")
        else:
            print("history is linearizable (and lock audits pass)")
        return 0
    for r in results:
        for v in r.violations:
            print(f"FAIL: {v}", file=sys.stderr)
    if args.counterexample:
        failing = next(r for r in results if not r.ok)
        n = failing.dump_counterexample(args.counterexample)
        print(f"wrote minimal counterexample ({n} ops) to "
              f"{args.counterexample}", file=sys.stderr)
    return 1


def _add_ycsb_knobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="A", choices=list("ABCDEFabcdef"))
    p.add_argument("--system", default="gengar")
    p.add_argument("--records", type=int, default=300)
    p.add_argument("--value-size", type=int, default=1024)
    p.add_argument("--servers", type=int, default=2)
    p.add_argument("--clients", type=int, default=2)
    p.add_argument("--ops", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, systems, experiment ids")
    sub.add_parser("demo", help="30-second pool walkthrough")

    p_exp = sub.add_parser("experiments", help="regenerate tables/figures")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")

    p_ycsb = sub.add_parser("ycsb", help="one YCSB run")
    _add_ycsb_knobs(p_ycsb)

    p_trace = sub.add_parser(
        "trace", help="instrumented YCSB run -> Chrome trace JSON")
    _add_ycsb_knobs(p_trace)
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace_event output path")
    p_trace.add_argument("--spans", default=None,
                         help="also dump the raw span log as JSONL here")

    p_metrics = sub.add_parser(
        "metrics", help="one YCSB run -> metric registry dump")
    _add_ycsb_knobs(p_metrics)
    p_metrics.add_argument("--format", default="prom",
                           choices=["prom", "json"])

    p_check = sub.add_parser(
        "check", help="audit a recorded op history for linearizability "
                      "(+ txn serializability)")
    p_check.add_argument("history", help="JSONL history file "
                         "(bench/chaos.py --history-out, or any recorder dump)")
    p_check.add_argument("--counterexample", default=None,
                         help="write the minimal failing op set here (JSONL)")
    p_check.add_argument("--max-states", type=int, default=200_000,
                         help="per-key search state cap before 'undecided'")

    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "experiments": _cmd_experiments,
        "ycsb": _cmd_ycsb,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "check": _cmd_check,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
