"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — version, systems, experiment ids.
* ``demo`` — the quickstart walkthrough (same as examples/quickstart.py).
* ``experiments [IDS...]`` — regenerate reconstructed tables/figures.
* ``ycsb --workload A --system gengar`` — one YCSB run with knobs.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.baselines.common import SYSTEM_NAMES
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.workloads.ycsb import WORKLOADS

    print(f"gengar reproduction v{__version__}")
    print(f"systems:     {', '.join(SYSTEM_NAMES)}")
    print(f"workloads:   YCSB {', '.join(sorted(WORKLOADS))}")
    print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core import GengarPool
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    pool = GengarPool.build(sim, num_servers=2, num_clients=1)
    client = pool.clients[0]

    def app(sim):
        gaddr = yield from client.gmalloc(1024)
        yield from client.gwrite(gaddr, b"demo payload" + bytes(1012))
        data = yield from client.gread(gaddr, length=12)
        yield from client.gsync()
        return gaddr, data

    ((gaddr, data),) = pool.run(app(sim))
    print(f"allocated {gaddr:#x}, wrote+read back: {data!r}")
    print(f"virtual time elapsed: {sim.now / 1000:.1f} us")
    for key, value in pool.metrics_snapshot().items():
        print(f"  {key:24s} {value}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.run_all import main as run_all

    return run_all(args.ids)


def _cmd_ycsb(args: argparse.Namespace) -> int:
    from repro.bench.experiments import bench_config, boot
    from repro.bench.runner import YcsbRunner
    from repro.workloads.ycsb import WORKLOADS

    spec = WORKLOADS[args.workload.upper()].scaled(
        record_count=args.records, value_size=args.value_size)
    system = boot(args.system, seed=args.seed, num_servers=args.servers,
                  num_clients=args.clients, config_overrides=bench_config())
    runner = YcsbRunner(system, spec, num_workers=args.clients,
                        ops_per_worker=args.ops)
    runner.load()
    result = runner.run()
    print(f"system={result.system} workload=YCSB-{result.workload}")
    print(f"throughput: {result.throughput_ops_s / 1000:.1f} kops/s "
          f"({result.total_ops} ops in {result.elapsed_ns / 1e6:.2f} ms virtual)")
    print(f"cache hit ratio: {result.cache_hit_ratio:.3f}")
    for kind, snap in sorted(result.latency_ns.items()):
        print(f"  {kind:8s} mean {snap['mean'] / 1000:7.2f} us   "
              f"p99 {snap['p99'] / 1000:7.2f} us   n={snap['count']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, systems, experiment ids")
    sub.add_parser("demo", help="30-second pool walkthrough")

    p_exp = sub.add_parser("experiments", help="regenerate tables/figures")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")

    p_ycsb = sub.add_parser("ycsb", help="one YCSB run")
    p_ycsb.add_argument("--workload", default="A", choices=list("ABCDEFabcdef"))
    p_ycsb.add_argument("--system", default="gengar")
    p_ycsb.add_argument("--records", type=int, default=300)
    p_ycsb.add_argument("--value-size", type=int, default=1024)
    p_ycsb.add_argument("--servers", type=int, default=2)
    p_ycsb.add_argument("--clients", type=int, default=2)
    p_ycsb.add_argument("--ops", type=int, default=200)
    p_ycsb.add_argument("--seed", type=int, default=1)

    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "experiments": _cmd_experiments,
        "ycsb": _cmd_ycsb,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
