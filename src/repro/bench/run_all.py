"""Regenerate every reconstructed table/figure in one go.

Run with::

    python -m repro.bench.run_all            # all experiments
    python -m repro.bench.run_all E4 E10     # a subset
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    wanted = [a.upper() for a in argv] or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; have {list(ALL_EXPERIMENTS)}")
        return 2
    for exp_id in wanted:
        start = time.time()
        result = ALL_EXPERIMENTS[exp_id]()
        print(result.render())
        print(f"[{exp_id} regenerated in {time.time() - start:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
