"""The YCSB driver: loads a KV store and runs closed-loop workers.

The driver is system-agnostic: it only uses the uniform client API, so every
comparator runs exactly the same operation stream (same seeds, same keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator

from repro.apps.kvstore import KvStore
from repro.baselines.common import BuiltSystem
from repro.sim.stats import Histogram
from repro.sim.units import ops_per_sec
from repro.workloads.ycsb import Op, WorkloadSpec, YcsbGenerator


@dataclass
class YcsbResult:
    """Measurements from one YCSB run."""

    system: str
    workload: str
    total_ops: int
    elapsed_ns: int
    throughput_ops_s: float
    latency_ns: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cache_hit_ratio: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_latency_ns(self) -> float:
        overall = self.latency_ns.get("overall")
        return overall["mean"] if overall else 0.0


class YcsbRunner:
    """Runs one workload against one built system."""

    def __init__(self, system: BuiltSystem, spec: WorkloadSpec,
                 num_workers: int = 4, ops_per_worker: int = 250,
                 seed_tag: str = "ycsb", read_batch: int = 8):
        if num_workers < 1 or ops_per_worker < 1:
            raise ValueError("workers and ops must be positive")
        if read_batch < 1:
            raise ValueError("read_batch must be >= 1")
        self.system = system
        self.spec = spec
        self.num_workers = num_workers
        self.ops_per_worker = ops_per_worker
        self.seed_tag = seed_tag
        #: Consecutive READ ops per worker are coalesced into one
        #: doorbell-batched ``multi_get`` of up to this many keys — the
        #: pipelining a real closed-loop YCSB client gets from issuing its
        #: independent point reads back to back.  1 restores the fully
        #: serial historical behaviour.
        self.read_batch = read_batch
        self.store = KvStore(spec.value_size)
        sim = system.sim
        self._hists: Dict[str, Histogram] = {
            kind: Histogram(f"{seed_tag}.{kind}")
            for kind in ("overall", "read", "update", "insert", "scan", "rmw")
        }
        self._rng_registry = sim.rng

    # ------------------------------------------------------------------
    def load(self) -> None:
        """Bulk-load the records, spread across all clients in parallel."""
        clients = self.system.clients
        spec = self.spec
        loader_gen = YcsbGenerator(spec, self._rng_registry.stream(f"{self.seed_tag}.load"))

        def load_shard(client, keys):
            yield from self.store.load(client, keys,
                                       lambda k: loader_gen.value(k, version=0))

        shards = [
            load_shard(clients[i % len(clients)],
                       range(i, spec.record_count, len(clients)))
            for i in range(len(clients))
        ]
        self.system.run(*shards)

    # ------------------------------------------------------------------
    def run(self) -> YcsbResult:
        """Execute the measurement phase; returns the aggregated result."""
        sim = self.system.sim
        clients = self.system.clients
        start = sim.now
        hit_base = sim.metrics.counter("pool.cache_hits").count
        read_base = sim.metrics.counter("pool.reads").count

        workers = [
            self._worker(i, clients[i % len(clients)])
            for i in range(self.num_workers)
        ]
        self.system.run(*workers)
        elapsed = sim.now - start

        total_ops = self.num_workers * self.ops_per_worker
        hits = sim.metrics.counter("pool.cache_hits").count - hit_base
        reads = sim.metrics.counter("pool.reads").count - read_base
        latency = {
            kind: hist.snapshot()
            for kind, hist in self._hists.items()
            if hist.count
        }
        return YcsbResult(
            system=self.system.name,
            workload=self.spec.name,
            total_ops=total_ops,
            elapsed_ns=elapsed,
            throughput_ops_s=ops_per_sec(total_ops, elapsed),
            latency_ns=latency,
            cache_hit_ratio=hits / reads if reads else 0.0,
        )

    # ------------------------------------------------------------------
    def _worker(self, index: int, client) -> Generator[Any, Any, None]:
        sim = self.system.sim
        gen = YcsbGenerator(
            self.spec, self._rng_registry.stream(f"{self.seed_tag}.w{index}")
        )
        insert_seq = 0
        pending_reads: list = []  # run of consecutive READ keys

        def flush_reads():
            """Issue the accumulated read run as one batched multi_get.

            Each member op's histogram sample is the batch's elapsed time —
            the latency an individual read *observed* (issue to harvest),
            which is what a pipelined closed-loop client experiences.
            """
            t0 = sim.now
            yield from self.store.multi_get(client, pending_reads)
            dt = sim.now - t0
            for _ in pending_reads:
                self._hists["overall"].record(dt)
                self._hists[Op.READ.value].record(dt)
            pending_reads.clear()

        for op, key, scan_len in gen.ops(self.ops_per_worker):
            if op is Op.READ:
                pending_reads.append(self._existing_key(key))
                if len(pending_reads) >= self.read_batch:
                    yield from flush_reads()
                continue
            if pending_reads:
                yield from flush_reads()
            t0 = sim.now
            if op is Op.UPDATE:
                key = self._existing_key(key)
                yield from self.store.put(client, key,
                                          gen.value(key, version=1 + index))
            elif op is Op.INSERT:
                # Workers own disjoint insert key ranges so ids never clash.
                new_key = (self.spec.record_count
                           + index + self.num_workers * insert_seq)
                insert_seq += 1
                if new_key not in self.store:
                    yield from self.store.insert(client, new_key,
                                                 gen.value(new_key, version=0))
            elif op is Op.SCAN:
                key = self._existing_key(key)
                yield from self.store.scan(client, key, scan_len)
            elif op is Op.RMW:
                key = self._existing_key(key)
                yield from self.store.read_modify_write(client, key, self._bump)
            dt = sim.now - t0
            self._hists["overall"].record(dt)
            self._hists[op.value].record(dt)
        if pending_reads:
            yield from flush_reads()

    def _existing_key(self, key: int) -> int:
        # Dynamic inserts from other workers may not be indexed yet when the
        # generator references them; clamp to the loaded range in that case.
        if key in self.store:
            return key
        return key % self.spec.record_count

    def _bump(self, old: bytes) -> bytes:
        value = int.from_bytes(old[:8], "little") + 1
        return value.to_bytes(8, "little") + old[8:]
