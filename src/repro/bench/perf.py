"""Wall-clock performance harness for the simulator fast path.

Every experiment in this reproduction funnels through the discrete-event
kernel and the Gengar client data path, so *wall-clock cost per simulated
op* bounds how large a sweep we can afford.  This module measures that cost
directly and records the trajectory across PRs in ``BENCH_perf.json`` at the
repo root:

* **kernel microbenchmark** — raw event-loop throughput (dispatched events
  per wall-clock second) with many concurrent timeout-driven processes;
* **YCSB-B macro runs** — operations per wall-clock second for a full
  Gengar deployment at two scales;
* **control-plane scale-out** — virtual metadata throughput and p99 vs
  the number of master shards (1/2/4/8), the scaling record for the
  sharded control plane;
* **client-fanout scale-out** — YCSB-B virtual throughput vs the number
  of attached clients (16/32/64/128 over 8 servers x 4 shards), the
  scaling record for the elastic shared receive pool, plus a legacy pin
  (fixed 16-slot rings, credits off) that must stay byte-identical to
  the committed ``ycsb_medium`` virtual time.

Alongside each wall-clock figure the harness records the run's *virtual*
results (final virtual time, simulated throughput).  Optimisations must be
semantics-preserving: the virtual numbers must not move when only the
wall-clock numbers improve (see ``tests/core/test_determinism.py``).

Usage::

    PYTHONPATH=src python -m repro.bench.perf                 # update "current"
    PYTHONPATH=src python -m repro.bench.perf --set-baseline  # (re)capture baseline
    PYTHONPATH=src python -m repro.bench.perf --smoke         # tiny CI smoke run
    PYTHONPATH=src python -m repro.bench.perf --guard-against BENCH_perf.json

``--guard-against`` is the CI regression gate: it re-measures the kernel
microbenchmark and the medium YCSB run, compares against the committed
file's ``current`` section, and exits non-zero if either the kernel's
``events_per_sec`` or ycsb_medium's ``sim_throughput_ops_s`` regressed
more than 10%.  It never writes the JSON file.

``__slots__`` note: the per-object bookkeeping types on the hot path
(``Counter``, ``ObjectStats``, WRs, span tuples) all declare ``__slots__``.
Measured on this container (CPython 3.11, 64 live ``ObjectStats`` with
20k attribute-churn iterations, best of 5): attribute access is at parity
with dict-backed instances (0.95-1.05x — modern CPython inline caches close
the gap), but the footprint is 80 bytes/object vs 176 with ``__dict__``,
a 2.2x shrink that keeps the master's directory and hotness tables (one
record per allocated object, thousands live in the medium run) cache-
resident.  The win is memory and allocation rate, not raw access latency.

The JSON layout::

    {
      "schema": 1,
      "baseline": {"kernel": {...}, "ycsb_small": {...}, "ycsb_medium": {...}},
      "current":  {... same shape ...},
      "speedup":  {"kernel_events_per_sec": 3.1, ...}
    }
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.baselines.common import build_system
from repro.bench.runner import YcsbRunner
from repro.sim.kernel import Simulator
from repro.workloads.ycsb import WORKLOAD_B

SCHEMA_VERSION = 1

#: Default output location: the repo root (two levels above ``src/repro``).
DEFAULT_OUT = "BENCH_perf.json"


# ----------------------------------------------------------------------
# Kernel microbenchmark
# ----------------------------------------------------------------------
def bench_kernel(num_procs: int = 64, timeouts_per_proc: int = 2000,
                 repeats: int = 3) -> Dict[str, Any]:
    """Event-loop throughput: many processes ping-ponging through timeouts.

    Reports the best of ``repeats`` runs (wall-clock noise only shrinks the
    number, never inflates it).  ``events_per_sec`` counts actual kernel
    dispatches, not just timeouts, so it tracks the full per-event overhead
    (heap ops, callback dispatch, process resume).
    """

    def worker(sim: Simulator, n: int):
        # Prefer the pooled sleep() fast path (the API all hot hardware
        # models use); fall back to timeout() on kernels without it.
        wait = getattr(sim, "sleep", None) or sim.timeout
        for _ in range(n):
            yield wait(10)

    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        sim = Simulator(seed=1)
        for _i in range(num_procs):
            sim.spawn(worker(sim, timeouts_per_proc))
        base = getattr(sim, "total_dispatched", 0)
        t0 = time.perf_counter()
        sim.run()
        dt = time.perf_counter() - t0
        dispatched = getattr(sim, "total_dispatched", 0) - base
        if not dispatched:
            # Seed kernels without the dispatch counter: fall back to the
            # known timeout count so the metric stays comparable.
            dispatched = num_procs * timeouts_per_proc
        sample = {
            "processes": num_procs,
            "timeouts_per_proc": timeouts_per_proc,
            "dispatched_events": dispatched,
            "seconds": dt,
            "events_per_sec": dispatched / dt if dt > 0 else 0.0,
            "virtual_time_ns": sim.now,
        }
        if best is None or sample["events_per_sec"] > best["events_per_sec"]:
            best = sample
    assert best is not None
    return best


# ----------------------------------------------------------------------
# YCSB-B macro runs
# ----------------------------------------------------------------------
def bench_ycsb(record_count: int, num_workers: int, ops_per_worker: int,
               seed: int = 42, value_size: int = 128,
               repeats: int = 1) -> Dict[str, Any]:
    """One full YCSB-B run on the Gengar system; wall-clock + virtual stats.

    With ``repeats > 1`` the wall-clock figure is the best of N runs (noise
    only slows a run down); the virtual-side numbers are asserted identical
    across repeats — same seed, same simulation, bit for bit.
    """
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        sim = Simulator(seed=seed)
        system = build_system("gengar", sim, num_servers=2, num_clients=2)
        spec = WORKLOAD_B.scaled(record_count=record_count, value_size=value_size)
        runner = YcsbRunner(system, spec, num_workers=num_workers,
                            ops_per_worker=ops_per_worker)
        runner.load()
        t0 = time.perf_counter()
        result = runner.run()
        dt = time.perf_counter() - t0
        batches = sim.metrics.histogram("pool.read_batch")
        depth = (batches.snapshot()["mean"] if batches.count else 1.0)
        sample = {
            "record_count": record_count,
            "num_workers": num_workers,
            "ops_per_worker": ops_per_worker,
            "total_ops": result.total_ops,
            "seconds": dt,
            "ops_per_sec_wallclock": result.total_ops / dt if dt > 0 else 0.0,
            # Virtual-side invariants: must not move under wall-clock-only work.
            "virtual_time_ns": sim.now,
            "sim_throughput_ops_s": result.throughput_ops_s,
            "cache_hit_ratio": result.cache_hit_ratio,
            #: Mean RDMA READs per gread_many doorbell — effective pipelining.
            "read_pipeline_depth": round(depth, 2),
        }
        if best is not None:
            for key in ("virtual_time_ns", "sim_throughput_ops_s",
                        "cache_hit_ratio", "read_pipeline_depth"):
                assert sample[key] == best[key], (
                    f"non-deterministic virtual metric {key}: "
                    f"{sample[key]} != {best[key]}")
        if best is None or sample["ops_per_sec_wallclock"] > best["ops_per_sec_wallclock"]:
            best = sample
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Hot-path microbenchmarks: RPC round trips and doorbell batches
# ----------------------------------------------------------------------
def _two_node_rig(seed: int = 7):
    """A minimal two-endpoint rig (no Gengar stack) for verb-layer benches."""
    from repro.hardware.memory import MemoryDevice
    from repro.hardware.network import Fabric
    from repro.hardware.nic import Nic
    from repro.hardware.specs import CONNECTX5_NIC, LinkSpec, MemorySpec
    from repro.rdma import RdmaEndpoint, connect

    def dram(name):
        return MemorySpec(name=name, kind="dram", capacity_bytes=1 << 22,
                          read_latency_ns=80, write_latency_ns=80,
                          read_bw=16.0, write_bw=16.0, channels=4)

    sim = Simulator(seed=seed)
    fabric = Fabric(sim, LinkSpec(bandwidth=12.5, propagation_ns=500))
    mem_a = MemoryDevice(sim, dram("a.mem"), name="a.mem")
    mem_b = MemoryDevice(sim, dram("b.mem"), name="b.mem")
    ep_a = RdmaEndpoint(sim, "a", Nic(sim, CONNECTX5_NIC, "a.nic"), fabric)
    ep_b = RdmaEndpoint(sim, "b", Nic(sim, CONNECTX5_NIC, "b.nic"), fabric)
    qp_a, qp_b = connect(ep_a, ep_b)
    return sim, (ep_a, mem_a, qp_a), (ep_b, mem_b, qp_b)


def bench_rpc(calls: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """Wall-clock cost of an RPC round trip (control-plane hot path).

    One client process issues ``calls`` sequential echo RPCs; the per-call
    and per-event ns figures expose the full stack cost — framing, SEND/RECV
    verb state machines, CQ delivery, demux — per kernel dispatch.
    """
    from repro.rdma import RpcClient, RpcServer

    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        sim, (ep_a, mem_a, qp_a), (ep_b, mem_b, qp_b) = _two_node_rig()
        server = RpcServer(ep_b, mem_b, base=0, name="srv.rpc")
        server.register("echo", lambda req: req)
        server.serve(qp_b)
        client = RpcClient(ep_a, qp_a, mem_a, base=0, name="cli.rpc")

        def caller(sim, n):
            for i in range(n):
                yield from client.call("echo", i)

        proc = sim.spawn(caller(sim, calls))
        base = sim.total_dispatched
        t0 = time.perf_counter()
        sim.run_until_complete(proc)
        dt = time.perf_counter() - t0
        events = sim.total_dispatched - base
        sample = {
            "calls": calls,
            "seconds": dt,
            "calls_per_sec": calls / dt if dt > 0 else 0.0,
            "ns_per_call": dt / calls * 1e9,
            "dispatched_events": events,
            "events_per_call": round(events / calls, 2),
            "ns_per_event": dt / events * 1e9 if events else 0.0,
            "virtual_time_ns": sim.now,
        }
        if best is None or sample["calls_per_sec"] > best["calls_per_sec"]:
            best = sample
    assert best is not None
    return best


def bench_doorbell(batches: int = 120, batch_size: int = 16,
                   repeats: int = 3) -> Dict[str, Any]:
    """Wall-clock cost of doorbell-batched one-sided reads.

    Each iteration posts ``batch_size`` RDMA READs with one
    ``post_send_many`` doorbell (timers armed via one batched kernel call)
    and consumes completions out of order through a :class:`CompletionMux` —
    the data-plane fast path ``gread_many`` drives.  Reported per-WR and
    per-event ns make trampoline regressions visible in isolation from the
    Gengar client logic.
    """
    from repro.rdma import Opcode, WorkRequest
    from repro.rdma.cq import CompletionMux
    from repro.rdma.mr import AccessFlags

    best: Optional[Dict[str, Any]] = None
    total_wrs = batches * batch_size
    for _ in range(max(1, repeats)):
        sim, (ep_a, mem_a, qp_a), (ep_b, mem_b, qp_b) = _two_node_rig()
        local_mr = ep_a.register_mr(mem_a, 0, 1 << 20, access=AccessFlags.ALL,
                                    name="db.local")
        remote_mr = ep_b.register_mr(mem_b, 0, 1 << 20, access=AccessFlags.ALL,
                                     name="db.remote")

        def driver(sim):
            for _b in range(batches):
                wrs = [
                    WorkRequest(
                        opcode=Opcode.RDMA_READ,
                        remote_rkey=remote_mr.rkey,
                        remote_offset=i * 64,
                        local_mr=local_mr,
                        local_offset=i * 64,
                        length=64,
                        wr_id=i,
                    )
                    for i in range(batch_size)
                ]
                mux = CompletionMux(sim, name="db.mux")
                for i, ev in enumerate(qp_a.post_send_many(wrs)):
                    mux.add(ev, tag=i)
                for _ in range(batch_size):
                    yield mux.next_event()

        proc = sim.spawn(driver(sim))
        base = sim.total_dispatched
        t0 = time.perf_counter()
        sim.run_until_complete(proc)
        dt = time.perf_counter() - t0
        events = sim.total_dispatched - base
        sample = {
            "batches": batches,
            "batch_size": batch_size,
            "wrs": total_wrs,
            "seconds": dt,
            "wrs_per_sec": total_wrs / dt if dt > 0 else 0.0,
            "ns_per_wr": dt / total_wrs * 1e9,
            "dispatched_events": events,
            "events_per_wr": round(events / total_wrs, 2),
            "ns_per_event": dt / events * 1e9 if events else 0.0,
            "virtual_time_ns": sim.now,
        }
        if best is None or sample["wrs_per_sec"] > best["wrs_per_sec"]:
            best = sample
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Control-plane scale-out: throughput vs master shard count
# ----------------------------------------------------------------------
def bench_scaleout(shard_counts=(1, 2, 4, 8), num_servers: int = 8,
                   num_clients: int = 8, num_workers: int = 64,
                   ops_per_worker: int = 50, seed: int = 53) -> Dict[str, Any]:
    """Metadata throughput and p99 latency vs ``num_master_shards``.

    Pure alloc/free loops: every op is a master RPC and the data plane is
    never touched, so the sweep isolates the control plane.  One master
    serialises the whole fleet on its NIC; shards split the directory by
    home server and serve in parallel.  All figures here are *virtual*
    (simulated ns), hence machine-independent and deterministic — the knee
    past 4 shards is real (client NICs saturate), not measurement noise.
    """
    from repro.core import GengarConfig, GengarPool

    points = []
    for shards in shard_counts:
        sim = Simulator(seed=seed)
        pool = GengarPool.build(sim, num_servers=num_servers,
                                num_clients=num_clients,
                                config=GengarConfig(num_master_shards=shards))
        latencies: list = []

        def worker(i, pool=pool, sim=sim, latencies=latencies):
            client = pool.clients[i % len(pool.clients)]
            for _ in range(ops_per_worker):
                t0 = sim.now
                gaddr = yield from client.gmalloc(128)
                yield from client.gfree(gaddr)
                latencies.append(sim.now - t0)

        t0 = time.perf_counter()
        pool.run(*[worker(i) for i in range(num_workers)])
        dt = time.perf_counter() - t0
        total = num_workers * ops_per_worker
        latencies.sort()
        p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
        points.append({
            "shards": shards,
            "total_ops": total,
            "virtual_time_ns": sim.now,
            "ops_per_sec_virtual": round(total / (sim.now / 1e9), 1),
            "p99_latency_ns": p99,
            "seconds": dt,
        })
    return {
        "num_servers": num_servers,
        "num_clients": num_clients,
        "num_workers": num_workers,
        "ops_per_worker": ops_per_worker,
        "points": points,
    }


def bench_scaleout_clients(client_counts=(16, 32, 64, 128),
                           num_servers: int = 8, shards: int = 4,
                           record_count: int = 256, ops_per_worker: int = 20,
                           seed: int = 61,
                           legacy_pin: bool = True) -> Dict[str, Any]:
    """YCSB-B throughput vs *attached-client* count (the E3c fanout axis).

    Every client attaches a control QP to every master shard and every
    server, so the binding resource is the servers' RPC receive pools.
    With the elastic shared receive pool (``rpc_ring_slots="auto"``,
    the default) each pool grows in powers of two as clients attach and
    credit-based flow control bounds each client's outstanding requests,
    so the sweep completes at every point; with the legacy fixed-depth
    rings the >=16-client points wedge (see
    ``tests/rdma/test_ring_elastic.py``).  All recorded figures are
    virtual (simulated ns) and therefore deterministic.

    Each point also snapshots the first master shard's
    :meth:`RpcServer.pool_stats` so the growth trajectory (capacity,
    grow count, peak occupancy) is part of the committed record.

    ``legacy_pin`` additionally re-runs the 2-client ``ycsb_medium``
    shape with the elastic ring and credits *disabled*
    (``rpc_ring_slots=16, rpc_credits=False``) and records its final
    virtual time.  That figure must stay byte-identical to the committed
    ``ycsb_medium`` virtual time: at depths the fixed rings can serve,
    the elastic data plane is a no-op on the event schedule.
    """
    from dataclasses import replace

    points = []
    for n in client_counts:
        sim = Simulator(seed=seed)
        system = build_system(
            "gengar", sim, num_servers=num_servers, num_clients=n,
            config_overrides=lambda c: replace(c, num_master_shards=shards))
        spec = WORKLOAD_B.scaled(record_count=record_count, value_size=128)
        runner = YcsbRunner(system, spec, num_workers=n,
                            ops_per_worker=ops_per_worker)
        runner.load()
        t0 = time.perf_counter()
        result = runner.run()
        dt = time.perf_counter() - t0
        stats = system.pool.master.rpc.pool_stats()
        points.append({
            "clients": n,
            "total_ops": result.total_ops,
            "virtual_time_ns": sim.now,
            "ops_per_sec_virtual": result.throughput_ops_s,
            "seconds": dt,
            "master_pool": {
                "qps": stats["qps"],
                "capacity": stats["capacity"],
                "grows": stats["grows"],
                "peak_occupancy": stats["peak_occupancy"],
            },
        })
    out: Dict[str, Any] = {
        "num_servers": num_servers,
        "shards": shards,
        "record_count": record_count,
        "ops_per_worker": ops_per_worker,
        "points": points,
    }
    if legacy_pin:
        sim = Simulator(seed=42)
        system = build_system(
            "gengar", sim, num_servers=2, num_clients=2,
            config_overrides=lambda c: replace(c, rpc_ring_slots=16,
                                               rpc_credits=False))
        spec = WORKLOAD_B.scaled(record_count=1000, value_size=128)
        runner = YcsbRunner(system, spec, num_workers=8, ops_per_worker=500)
        runner.load()
        runner.run()
        out["legacy_pin"] = {
            "rpc_ring_slots": 16,
            "rpc_credits": False,
            "virtual_time_ns": sim.now,
        }
    return out


# ----------------------------------------------------------------------
# Transaction commit microbenchmark
# ----------------------------------------------------------------------
def bench_txn(txns: int = 400, accounts: int = 16, seed: int = 42,
              repeats: int = 3) -> Dict[str, Any]:
    """Wall-clock cost of the distributed-commit fast path.

    One client, two servers, bank-transfer-shaped transactions (two locks
    in gaddr order, two traced reads, intent append, per-server applies,
    intent clear, unlock) — the whole crash-atomic pipeline with no
    contention, so the figure isolates protocol overhead rather than
    wait-die backoff.  Virtual-side numbers are invariants: the commit
    path must not gain or lose simulated events under wall-clock work.
    """
    from repro.core import GengarConfig, GengarPool
    from repro.workloads.bank import BankSpec, bank_setup, bank_transfer

    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        sim = Simulator(seed=seed)
        pool = GengarPool.build(sim, num_servers=2, num_clients=1,
                                config=GengarConfig(enable_txn=True))
        client = pool.clients[0]
        spec = BankSpec(accounts=accounts, initial_balance=1000,
                        max_transfer=10)
        holder: Dict[str, Any] = {}

        def setup(sim):
            holder["gaddrs"] = yield from bank_setup(client, spec)

        pool.run(setup(sim))
        gaddrs = holder["gaddrs"]
        rng = sim.rng.stream("bench.txn")

        def driver(sim):
            for _i in range(txns):
                i = rng.randrange(accounts)
                j = (i + 1 + rng.randrange(accounts - 1)) % accounts
                yield from bank_transfer(client, gaddrs[i], gaddrs[j], 1)

        vt0 = sim.now
        t0 = time.perf_counter()
        pool.run(driver(sim))
        dt = time.perf_counter() - t0
        commits = sim.metrics.counter("pool.txn_commits").count
        sample = {
            "txns": txns,
            "accounts": accounts,
            "committed": commits,
            "seconds": dt,
            "txns_per_sec_wallclock": txns / dt if dt > 0 else 0.0,
            "virtual_time_ns": sim.now,
            "virtual_ns_per_txn": round((sim.now - vt0) / txns, 1),
        }
        if best is not None:
            for key in ("committed", "virtual_time_ns", "virtual_ns_per_txn"):
                assert sample[key] == best[key], (
                    f"non-deterministic virtual metric {key}: "
                    f"{sample[key]} != {best[key]}")
        if best is None or (sample["txns_per_sec_wallclock"]
                            > best["txns_per_sec_wallclock"]):
            best = sample
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Observability artifacts
# ----------------------------------------------------------------------
def export_trace(trace_out: Optional[Path], span_log: Optional[Path],
                 seed: int = 42) -> None:
    """Run one *separate* instrumented smoke-size YCSB-B pass and export it.

    Deliberately not the measured run: attaching the span recorder would
    taint the wall-clock numbers, so the artifacts come from their own
    small pass (identical virtual behaviour — spans add no simulated
    events — just extra Python work).
    """
    if trace_out is None and span_log is None:
        return
    from repro import obs

    sim = Simulator(seed=seed)
    system = build_system("gengar", sim, num_servers=2, num_clients=2)
    recorder = obs.install(sim)
    spec = WORKLOAD_B.scaled(record_count=64, value_size=128)
    runner = YcsbRunner(system, spec, num_workers=2, ops_per_worker=50)
    runner.load()
    runner.run()
    if recorder is None:
        print("observability layer disabled; no trace artifacts written")
        return
    if trace_out is not None:
        trace_out.write_text(json.dumps(obs.chrome_trace(recorder)))
        print(f"wrote {trace_out}: {len(recorder)} spans")
    if span_log is not None:
        span_log.write_text(obs.spans_jsonl(recorder))
        print(f"wrote {span_log}")


# ----------------------------------------------------------------------
# Harness plumbing
# ----------------------------------------------------------------------
def measure(smoke: bool = False) -> Dict[str, Any]:
    """Run the full suite (or the tiny smoke variant) and return the shape
    stored under ``baseline`` / ``current``."""
    if smoke:
        kernel = bench_kernel(num_procs=8, timeouts_per_proc=200, repeats=1)
        rpc = bench_rpc(calls=100, repeats=1)
        doorbell = bench_doorbell(batches=15, batch_size=8, repeats=1)
        txn = bench_txn(txns=60, accounts=8, repeats=1)
        scaleout = bench_scaleout(shard_counts=(1, 2), num_servers=2,
                                  num_clients=2, num_workers=8,
                                  ops_per_worker=20)
        scaleout_clients = bench_scaleout_clients(
            client_counts=(4, 8), num_servers=2, shards=2,
            record_count=64, ops_per_worker=10, legacy_pin=False)
        ycsb_small = bench_ycsb(record_count=64, num_workers=2, ops_per_worker=50)
        ycsb_medium = None
    else:
        kernel = bench_kernel()
        rpc = bench_rpc()
        doorbell = bench_doorbell()
        txn = bench_txn(repeats=2)
        scaleout = bench_scaleout()
        scaleout_clients = bench_scaleout_clients()
        ycsb_small = bench_ycsb(record_count=200, num_workers=4,
                                ops_per_worker=250, repeats=2)
        ycsb_medium = bench_ycsb(record_count=1000, num_workers=8,
                                 ops_per_worker=500, repeats=3)
    out: Dict[str, Any] = {
        "captured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "smoke": smoke,
        "kernel": kernel,
        "rpc": rpc,
        "doorbell": doorbell,
        "txn": txn,
        "scaleout": scaleout,
        "scaleout_clients": scaleout_clients,
        "ycsb_small": ycsb_small,
    }
    if ycsb_medium is not None:
        out["ycsb_medium"] = ycsb_medium
    return out


def _ratio(new: Optional[Dict], old: Optional[Dict], key: str) -> Optional[float]:
    if not new or not old or not old.get(key):
        return None
    return round(new[key] / old[key], 3)


def compute_speedup(current: Dict[str, Any], baseline: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "kernel_events_per_sec": _ratio(
            current.get("kernel"), baseline.get("kernel"), "events_per_sec"),
        "rpc_calls_per_sec": _ratio(
            current.get("rpc"), baseline.get("rpc"), "calls_per_sec"),
        "doorbell_wrs_per_sec": _ratio(
            current.get("doorbell"), baseline.get("doorbell"), "wrs_per_sec"),
        "txn_commits_per_sec": _ratio(
            current.get("txn"), baseline.get("txn"),
            "txns_per_sec_wallclock"),
        "ycsb_small_ops_per_sec": _ratio(
            current.get("ycsb_small"), baseline.get("ycsb_small"),
            "ops_per_sec_wallclock"),
        "ycsb_medium_ops_per_sec": _ratio(
            current.get("ycsb_medium"), baseline.get("ycsb_medium"),
            "ops_per_sec_wallclock"),
    }


def run_harness(out_path: Path, set_baseline: bool = False,
                smoke: bool = False) -> Dict[str, Any]:
    """Measure, merge with any existing file, and write ``out_path``."""
    existing: Dict[str, Any] = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except (OSError, ValueError):
            existing = {}

    current = measure(smoke=smoke)
    baseline = current if set_baseline else existing.get("baseline") or current
    doc = {
        "schema": SCHEMA_VERSION,
        "baseline": baseline,
        "current": current,
        "speedup": compute_speedup(current, baseline),
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


#: Regression tolerance for ``--guard-against`` (fraction of committed value).
GUARD_FLOOR = 0.9


def run_guard(guard_path: Path) -> int:
    """CI regression gate: re-measure and compare against a committed file.

    Runs the full-size kernel microbenchmark and the medium YCSB pass
    regardless of ``--smoke`` — ``sim_throughput_ops_s`` is a virtual
    (machine-independent) number, so it only compares against the committed
    figure when measured at the committed run shape.  The control-plane
    scale-out section is re-run at full shape too and checked exactly
    (virtual times per shard count, plus monotonic ops/s through 4 shards).
    Exits 1 on a >10% regression of a guarded wall-clock metric or any
    virtual-metric drift; never writes the JSON file.
    """
    try:
        committed = json.loads(guard_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"perf-guard: cannot read {guard_path}: {exc}")
        return 1
    ref = committed.get("current") or {}

    kernel = bench_kernel()
    medium = bench_ycsb(record_count=1000, num_workers=8, ops_per_worker=500,
                        repeats=2)

    checks = []
    for label, got, want in (
        ("kernel events_per_sec", kernel["events_per_sec"],
         (ref.get("kernel") or {}).get("events_per_sec")),
        ("ycsb_medium sim_throughput_ops_s", medium["sim_throughput_ops_s"],
         (ref.get("ycsb_medium") or {}).get("sim_throughput_ops_s")),
    ):
        if not want:
            print(f"perf-guard: no committed reference for {label}; skipped")
            continue
        ratio = got / want
        ok = ratio >= GUARD_FLOOR
        print(f"perf-guard {label}: {got:,.0f} vs committed {want:,.0f} "
              f"(x{ratio:.3f}) {'OK' if ok else 'REGRESSION'}")
        checks.append(ok)
    # Determinism guard (noise-free, machine-independent): the medium run's
    # final virtual time must match the committed figure exactly — any drift
    # means event ordering changed, not just wall-clock speed.
    want_vt = (ref.get("ycsb_medium") or {}).get("virtual_time_ns")
    if want_vt:
        ok = medium["virtual_time_ns"] == want_vt
        print(f"perf-guard ycsb_medium virtual_time_ns: "
              f"{medium['virtual_time_ns']} vs committed {want_vt} "
              f"{'OK' if ok else 'ORDERING DRIFT'}")
        checks.append(ok)
    # Scale-out guard: all-virtual, so both checks are exact.  The sharded
    # control plane must keep scaling monotonically through 4 shards, and
    # each point's final virtual time must match the committed capture —
    # any drift means the multi-shard event ordering changed.
    want_scale = (ref.get("scaleout") or {}).get("points")
    if want_scale:
        scale = bench_scaleout()
        by_shards = {p["shards"]: p for p in scale["points"]}
        for want in want_scale:
            got = by_shards.get(want["shards"])
            if got is None:
                continue
            ok = got["virtual_time_ns"] == want["virtual_time_ns"]
            print(f"perf-guard scaleout {want['shards']} shard(s) "
                  f"virtual_time_ns: {got['virtual_time_ns']} vs committed "
                  f"{want['virtual_time_ns']} {'OK' if ok else 'ORDERING DRIFT'}")
            checks.append(ok)
        curve = [p["ops_per_sec_virtual"] for p in scale["points"]
                 if p["shards"] <= 4]
        ok = all(b > a for a, b in zip(curve, curve[1:]))
        print(f"perf-guard scaleout ops/s 1->4 shards: "
              f"{[f'{v:,.0f}' for v in curve]} "
              f"{'MONOTONIC' if ok else 'NOT MONOTONIC'}")
        checks.append(ok)
    # Client-fanout guard: the E3c sweep along the attached-client axis.
    # All-virtual again, so three exact checks: per-point virtual times,
    # YCSB throughput monotonic 16->32->64 clients (the elastic receive
    # pool must keep scaling; 128 is recorded but past the NIC knee), and
    # the legacy pin — with elastic rings and credits disabled the
    # 2-client medium shape must stay byte-identical to the committed
    # ycsb_medium virtual time.
    want_fanout = (ref.get("scaleout_clients") or {}).get("points")
    if want_fanout:
        fanout = bench_scaleout_clients()
        by_clients = {p["clients"]: p for p in fanout["points"]}
        for want in want_fanout:
            got = by_clients.get(want["clients"])
            if got is None:
                continue
            ok = got["virtual_time_ns"] == want["virtual_time_ns"]
            print(f"perf-guard scaleout_clients {want['clients']} client(s) "
                  f"virtual_time_ns: {got['virtual_time_ns']} vs committed "
                  f"{want['virtual_time_ns']} {'OK' if ok else 'ORDERING DRIFT'}")
            checks.append(ok)
        curve = [p["ops_per_sec_virtual"] for p in fanout["points"]
                 if p["clients"] <= 64]
        ok = all(b > a for a, b in zip(curve, curve[1:]))
        print(f"perf-guard scaleout_clients ops/s 16->64 clients: "
              f"{[f'{v:,.0f}' for v in curve]} "
              f"{'MONOTONIC' if ok else 'NOT MONOTONIC'}")
        checks.append(ok)
        pin = fanout.get("legacy_pin")
        want_pin = ((ref.get("scaleout_clients") or {}).get("legacy_pin")
                    or {}).get("virtual_time_ns") or want_vt
        if pin and want_pin:
            ok = pin["virtual_time_ns"] == want_pin
            print(f"perf-guard legacy-pin (rpc_ring_slots=16, credits off) "
                  f"virtual_time_ns: {pin['virtual_time_ns']} vs committed "
                  f"{want_pin} {'OK' if ok else 'ORDERING DRIFT'}")
            checks.append(ok)
    print(f"perf-guard ycsb_medium cache_hit_ratio: "
          f"{medium['cache_hit_ratio']:.4f}, "
          f"read_pipeline_depth: {medium['read_pipeline_depth']}")
    if checks and all(checks):
        print("perf-guard: PASS")
        return 0
    print(f"perf-guard: FAIL (regression beyond x{GUARD_FLOOR} "
          f"of the committed current section)")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--set-baseline", action="store_true",
                        help="record this run as the comparison baseline")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI smoke testing")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    parser.add_argument("--trace-out", default=None,
                        help="also emit a Chrome trace from a separate "
                             "instrumented smoke run")
    parser.add_argument("--span-log", default=None,
                        help="also emit a JSONL span dump from that run")
    parser.add_argument("--guard-against", default=None, metavar="PATH",
                        help="regression-gate mode: compare a fresh "
                             "measurement against this committed JSON's "
                             "'current' section and exit 1 on a >10%% "
                             "regression (writes nothing)")
    args = parser.parse_args(argv)

    if args.guard_against:
        return run_guard(Path(args.guard_against))

    doc = run_harness(Path(args.out), set_baseline=args.set_baseline,
                      smoke=args.smoke)
    export_trace(Path(args.trace_out) if args.trace_out else None,
                 Path(args.span_log) if args.span_log else None)
    cur, spd = doc["current"], doc["speedup"]
    print(f"kernel: {cur['kernel']['events_per_sec']:,.0f} events/s "
          f"(x{spd['kernel_events_per_sec'] or 1.0} vs baseline)")
    if cur.get("rpc"):
        print(f"rpc: {cur['rpc']['ns_per_call']:,.0f} ns/call "
              f"({cur['rpc']['events_per_call']} events/call, "
              f"{cur['rpc']['ns_per_event']:,.0f} ns/event)")
    if cur.get("doorbell"):
        print(f"doorbell: {cur['doorbell']['ns_per_wr']:,.0f} ns/WR "
              f"({cur['doorbell']['events_per_wr']} events/WR, "
              f"{cur['doorbell']['ns_per_event']:,.0f} ns/event)")
    if cur.get("txn"):
        print(f"txn: {cur['txn']['txns_per_sec_wallclock']:,.0f} commits/s "
              f"wall-clock ({cur['txn']['virtual_ns_per_txn']:,.0f} "
              f"virtual ns/txn)")
    if cur.get("scaleout"):
        for pt in cur["scaleout"]["points"]:
            print(f"scaleout {pt['shards']} shard(s): "
                  f"{pt['ops_per_sec_virtual']:,.0f} metadata ops/s virtual, "
                  f"p99 {pt['p99_latency_ns']:,} ns")
    if cur.get("scaleout_clients"):
        for pt in cur["scaleout_clients"]["points"]:
            mp = pt["master_pool"]
            print(f"scaleout {pt['clients']} client(s): "
                  f"{pt['ops_per_sec_virtual']:,.0f} YCSB ops/s virtual, "
                  f"pool {mp['capacity']} slots ({mp['grows']} grows, "
                  f"peak occupancy {mp['peak_occupancy']:.0f})")
        pin = cur["scaleout_clients"].get("legacy_pin")
        if pin:
            print(f"legacy pin (fixed rings, credits off): "
                  f"virtual_time_ns {pin['virtual_time_ns']}")
    for scale in ("ycsb_small", "ycsb_medium"):
        if cur.get(scale):
            print(f"{scale}: {cur[scale]['ops_per_sec_wallclock']:,.1f} ops/s "
                  f"wall-clock, virtual {cur[scale]['sim_throughput_ops_s']:,.0f} ops/s "
                  f"(x{spd[f'{scale}_ops_per_sec'] or 1.0} vs baseline), "
                  f"hit ratio {cur[scale]['cache_hit_ratio']:.4f}, "
                  f"pipeline depth {cur[scale]['read_pipeline_depth']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
