"""Closed-form latency models and simulator calibration.

Every data-path operation has an analytic uncontended latency that follows
directly from the device specs.  This module states those formulas once and
checks the simulator against them, which serves three purposes:

1. **Calibration** — the cost models can be sanity-checked against published
   hardware numbers without running workloads.
2. **Regression guard** — `tests/bench/test_calibration.py` asserts the
   simulator tracks the closed forms within tolerance, so an accidental
   double-charge (or dropped charge) in a protocol path fails CI.
3. **Documentation** — the formulas *are* the cost model, in one place.

Formulas model the uncontended single-op path; queueing effects are what the
simulator adds on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.protocol import CACHE_TAG_BYTES, PROXY_HEADER_BYTES
from repro.hardware.specs import LinkSpec, MemorySpec, NicSpec
from repro.rdma.qp import READ_REQUEST_BYTES
from repro.rdma.wr import ATOMIC_REQUEST_BYTES, ATOMIC_RESPONSE_BYTES


@dataclass(frozen=True)
class PathModel:
    """The spec triple a data path runs over."""

    nic: NicSpec
    link: LinkSpec
    client_dram: MemorySpec
    server_dram: MemorySpec
    server_nvm: MemorySpec


def _wire_ns(link: LinkSpec, payload: int) -> float:
    """One-way fabric time: serialization of payload+headers + propagation."""
    return max(1.0, (payload + link.header_bytes) / link.bandwidth) + link.propagation_ns


def _mem_read_ns(spec: MemorySpec, nbytes: int) -> float:
    """Uncontended device read: latency + transfer at per-channel bandwidth."""
    return spec.read_latency_ns + nbytes / (spec.read_bw / spec.channels)


def _mem_write_ns(spec: MemorySpec, nbytes: int) -> float:
    return spec.write_latency_ns + nbytes / (spec.write_bw / spec.channels)


def expected_rdma_read_ns(model: PathModel, nbytes: int, from_nvm: bool = True) -> float:
    """One-sided READ of ``nbytes`` from server NVM (or DRAM).

    Path: client NIC tx -> wire(request) -> server NIC rx -> server memory
    read (DMA) -> wire(data) -> client NIC rx -> client memory write (DMA).
    """
    device = model.server_nvm if from_nvm else model.server_dram
    return (
        model.nic.processing_ns
        + _wire_ns(model.link, READ_REQUEST_BYTES)
        + model.nic.processing_ns
        + _mem_read_ns(device, nbytes)
        + _wire_ns(model.link, nbytes)
        + model.nic.processing_ns
        + _mem_write_ns(model.client_dram, nbytes)
    )


def expected_rdma_write_ns(model: PathModel, nbytes: int, to_nvm: bool = True,
                           inline: bool = False) -> float:
    """One-sided WRITE of ``nbytes`` to server NVM (or DRAM).

    Path: client NIC tx (+ local DMA read unless inline) -> wire(data) ->
    server NIC rx -> server memory write -> wire(ack) -> client NIC rx.
    """
    device = model.server_nvm if to_nvm else model.server_dram
    local_dma = 0.0 if (inline or nbytes <= model.nic.max_inline_bytes) \
        else _mem_read_ns(model.client_dram, nbytes)
    return (
        model.nic.processing_ns
        + local_dma
        + _wire_ns(model.link, nbytes)
        + model.nic.processing_ns
        + _mem_write_ns(device, nbytes)
        + _wire_ns(model.link, 0)
        + model.nic.processing_ns
    )


def expected_atomic_ns(model: PathModel) -> float:
    """CAS/FAA round trip: request -> remote 8B read(+write) -> response."""
    return (
        model.nic.processing_ns
        + _wire_ns(model.link, ATOMIC_REQUEST_BYTES)
        + model.nic.processing_ns
        + _mem_read_ns(model.server_dram, 8)
        + _mem_write_ns(model.server_dram, 8)
        + _wire_ns(model.link, ATOMIC_RESPONSE_BYTES)
        + model.nic.processing_ns
    )


def expected_hot_read_ns(model: PathModel, nbytes: int, cpu_op_ns: int = 150) -> float:
    """A Gengar cached read: client CPU + READ of tag+payload from DRAM."""
    return cpu_op_ns + expected_rdma_read_ns(
        model, CACHE_TAG_BYTES + nbytes, from_nvm=False
    )


def expected_cold_read_ns(model: PathModel, nbytes: int, cpu_op_ns: int = 150) -> float:
    """A Gengar uncached read: client CPU + READ from NVM."""
    return cpu_op_ns + expected_rdma_read_ns(model, nbytes, from_nvm=True)


def expected_proxy_write_ns(model: PathModel, nbytes: int, cpu_op_ns: int = 150) -> float:
    """A Gengar proxy write ack: WRITE_WITH_IMM of header+payload into the
    server's DRAM ring (the NVM drain is off this path by design)."""
    return cpu_op_ns + expected_rdma_write_ns(
        model, PROXY_HEADER_BYTES + nbytes, to_nvm=False
    )


def expected_direct_write_ns(model: PathModel, nbytes: int, cpu_op_ns: int = 150) -> float:
    """An NVM-direct write: the full Optane write path, inline with the op."""
    return cpu_op_ns + expected_rdma_write_ns(model, nbytes, to_nvm=True)


def calibration_report(model: PathModel,
                       sizes=(64, 1024, 4096, 65536)) -> Dict[str, Dict[int, float]]:
    """All closed forms over a size sweep (microseconds), for reports."""
    return {
        "cold_read_us": {s: expected_cold_read_ns(model, s) / 1000 for s in sizes},
        "hot_read_us": {s: expected_hot_read_ns(model, s) / 1000 for s in sizes},
        "proxy_write_us": {s: expected_proxy_write_ns(model, s) / 1000 for s in sizes},
        "direct_write_us": {s: expected_direct_write_ns(model, s) / 1000 for s in sizes},
        "atomic_us": {8: expected_atomic_ns(model) / 1000},
    }
