"""Paper-style result rendering.

Every benchmark regenerates its table/figure as plain text: a :class:`Table`
for tables and :func:`render_series` for line-plot figures (one column per
x value, one row per series — the same rows the paper's plots encode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled table with aligned text rendering."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table {self.title!r} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(cells)

    def column(self, name: str) -> List[Any]:
        """Extract one column by header name (for assertions in tests)."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {list(self.headers)}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_table(title: str, headers: Sequence[str], rows: List[Sequence[Any]],
                 notes: Sequence[str] = ()) -> str:
    """One-shot table rendering."""
    table = Table(title=title, headers=headers)
    for row in rows:
        table.add_row(*row)
    table.notes.extend(notes)
    return table.render()


def render_series(title: str, x_label: str, x_values: Sequence[Any],
                  series: Dict[str, Sequence[Any]], notes: Sequence[str] = ()) -> str:
    """Render a figure's data: one row per named series over the x values."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    table = Table(title=title, headers=headers)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
        table.add_row(name, *values)
    table.notes.extend(notes)
    return table.render()


def speedup(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (1.0 = equal).

    For throughput-like metrics (higher is better): improved / baseline.
    """
    if baseline <= 0:
        return 0.0
    return improved / baseline
