"""Experiment drivers E1-E12: one function per reconstructed table/figure.

Each function builds fresh deployments, runs the experiment, and returns an
:class:`ExperimentResult` holding paper-style tables.  The benchmark files
under ``benchmarks/`` are thin wrappers that execute these drivers under
pytest-benchmark and print the tables; ``EXPERIMENTS.md`` records the claim
each experiment validates and the measured shape.

Scale disclaimer: op counts are sized so the full suite finishes in minutes
of host time while still spanning several hotness epochs of virtual time.
Absolute numbers are simulation outputs; the *shape* (orderings, crossovers,
relative factors) is the reproduction target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.apps.mapreduce import MapReduceEngine, distributed_sort, wordcount_job
from repro.baselines.common import BuiltSystem, build_system
from repro.bench.report import Table, speedup
from repro.bench.runner import YcsbRunner
from repro.core.config import GengarConfig
from repro.core.hotness import (
    EpochDecayPolicy,
    LfuPolicy,
    LruPolicy,
    NeverCachePolicy,
    RandomPolicy,
)
from repro.sim import Simulator
from repro.sim.units import KIB, MIB, ops_per_sec
from repro.workloads.corpus import CorpusGenerator
from repro.workloads.ycsb import WORKLOADS


@dataclass
class ExperimentResult:
    """One experiment's regenerated tables."""

    exp_id: str
    title: str
    tables: List[Table] = field(default_factory=list)

    def render(self) -> str:
        head = f"### {self.exp_id}: {self.title}"
        return "\n\n".join([head] + [t.render() for t in self.tables])

    def table(self, title_fragment: str = "") -> Table:
        """First table whose title contains the fragment."""
        for t in self.tables:
            if title_fragment in t.title:
                return t
        raise KeyError(f"no table matching {title_fragment!r}")


# ---------------------------------------------------------------------------
# Shared construction helpers
# ---------------------------------------------------------------------------
def bench_config(**overrides) -> Callable[[GengarConfig], GengarConfig]:
    """Config-override hook preserving each system's mechanism switches.

    Client-driven prefetch is *off* here: the paper experiments measure
    the paper's epoch-based hot-data identification, and prefetch would
    promote hot objects for every placement policy alike (contaminating
    E8's comparison and the E6/E7 hit-ratio sweeps).  The prefetch path
    is an extension, measured by ``bench/perf.py`` / ``BENCH_perf.json``.
    """

    def apply(base: GengarConfig) -> GengarConfig:
        tuned = replace(
            base,
            cache_capacity=4 * MIB,
            epoch_ns=100_000,
            report_every_ops=32,
            promote_threshold=2.0,
            demote_threshold=0.5,
            proxy_ring_slots=32,
            proxy_slot_size=4 * KIB,
            prefetch_depth=0,
        )
        return replace(tuned, **overrides)

    return apply


def boot(name: str, seed: int, num_servers: int = 2, num_clients: int = 2,
         config_overrides: Optional[Callable] = None, **kw) -> BuiltSystem:
    sim = Simulator(seed=seed)
    return build_system(
        name, sim, num_servers=num_servers, num_clients=num_clients,
        config_overrides=config_overrides or bench_config(), **kw,
    )


def _measure_op(sim, gen_factory: Callable[[], Generator], reps: int) -> float:
    """Average virtual-time latency of ``reps`` sequential operations."""
    total = {"ns": 0}

    def runner(sim):
        for _ in range(reps):
            t0 = sim.now
            yield from gen_factory()
            total["ns"] += sim.now - t0

    proc = sim.spawn(runner(sim))
    sim.run_until_complete(proc)
    return total["ns"] / reps


# ---------------------------------------------------------------------------
# E1 — read latency vs object size
# ---------------------------------------------------------------------------
def e01_read_latency(sizes: Sequence[int] = (64, 256, 1024, 4096, 16384, 65536),
                     reps: int = 12, seed: int = 701) -> ExperimentResult:
    """Reconstructs the read-latency figure: hot (DRAM-cached) Gengar reads
    vs cold (NVM) reads vs the NVM-direct baseline vs the DRAM-only bound."""
    variants = ("gengar-hot", "gengar-cold", "nvm-direct", "dram-only")
    table = Table(
        title="E1 read latency (us) vs object size (bytes)",
        headers=["system"] + [str(s) for s in sizes],
    )
    for variant in variants:
        name = "gengar" if variant.startswith("gengar") else variant
        system = boot(name, seed, num_servers=1, num_clients=1)
        client = system.clients[0]
        sim = system.sim
        row: List[float] = []
        for size in sizes:
            holder: Dict[str, int] = {}

            def setup(sim, size=size):
                gaddr = yield from client.gmalloc(size)
                yield from client.gwrite(gaddr, b"\xab" * size)
                yield from client.gsync()
                if variant == "gengar-hot":
                    yield from system.pool.master.pin(gaddr)
                    # Refresh the client's location metadata post-pin.
                    client._invalidate_meta(gaddr)
                # Warmup read so one-time metadata lookups stay out of the
                # measurement window.
                yield from client.gread(gaddr, length=1)
                holder["gaddr"] = gaddr

            system.run(setup(sim))
            gaddr = holder["gaddr"]
            avg = _measure_op(sim, lambda g=gaddr: client.gread(g), reps)
            row.append(avg / 1000.0)
        table.add_row(variant, *row)
    table.notes.append("hot = object pinned in home-server DRAM cache")
    return ExperimentResult("E1", "read latency vs object size", [table])


# ---------------------------------------------------------------------------
# E2 — write latency vs object size (the proxy redesign claim)
# ---------------------------------------------------------------------------
def e02_write_latency(sizes: Sequence[int] = (64, 256, 1024, 4096, 16384, 65536),
                      reps: int = 12, seed: int = 702) -> ExperimentResult:
    overrides = bench_config(proxy_slot_size=128 * KIB, proxy_ring_slots=8)
    table = Table(
        title="E2 write latency (us) vs object size (bytes)",
        headers=["system"] + [str(s) for s in sizes],
    )
    for name in ("gengar", "nvm-direct", "dram-only"):
        system = boot(name, seed, num_servers=1, num_clients=1,
                      config_overrides=overrides)
        client = system.clients[0]
        sim = system.sim
        row: List[float] = []
        for size in sizes:
            holder: Dict[str, int] = {}

            def setup(sim, size=size):
                holder["gaddr"] = yield from client.gmalloc(size)

            system.run(setup(sim))
            gaddr = holder["gaddr"]
            payload = b"\xcd" * size

            def one_write(g=gaddr, p=payload):
                yield from client.gwrite(g, p)
                # Pace so ring occupancy never throttles the measurement.
                yield sim.timeout(30_000)

            avg = _measure_op(sim, one_write, reps) - 30_000
            row.append(max(avg, 0) / 1000.0)
        table.add_row(name, *row)
    table.notes.append("paced writes: ack latency, drains off the critical path")
    return ExperimentResult("E2", "write latency vs object size", [table])


# ---------------------------------------------------------------------------
# E3 — throughput scalability with client count
# ---------------------------------------------------------------------------
def e03_scalability(client_counts: Sequence[int] = (1, 2, 4, 8),
                    server_counts: Sequence[int] = (1, 2, 4),
                    ops_per_worker: int = 150, seed: int = 703) -> ExperimentResult:
    spec = WORKLOADS["B"].scaled(record_count=200, value_size=1024)
    table = Table(
        title="E3 YCSB-B throughput (kops/s) vs clients",
        headers=["system"] + [str(c) for c in client_counts],
    )
    for name in ("gengar", "nvm-direct"):
        row: List[float] = []
        for count in client_counts:
            system = boot(name, seed + count, num_servers=2, num_clients=count)
            runner = YcsbRunner(system, spec, num_workers=count,
                                ops_per_worker=ops_per_worker,
                                seed_tag=f"e3.{name}.{count}")
            runner.load()
            result = runner.run()
            row.append(result.throughput_ops_s / 1000.0)
        table.add_row(name, *row)

    # Second axis: memory-server scaling under a fixed, saturating client
    # population — more servers add NVM channels, NICs, and ingress ports.
    servers = Table(
        title="E3b throughput (kops/s) vs memory servers (8 workers)",
        headers=["system"] + [str(s) for s in server_counts],
    )
    heavy = WORKLOADS["A"].scaled(record_count=240, value_size=4096)
    for name in ("gengar", "nvm-direct"):
        row = []
        for count in server_counts:
            # 4 KiB payloads need >4 KiB slots or every write bypasses
            # the proxy (header + payload must fit).
            system = boot(name, seed + 100 + count, num_servers=count,
                          num_clients=4,
                          config_overrides=bench_config(proxy_slot_size=8 * KIB))
            runner = YcsbRunner(system, heavy, num_workers=8,
                                ops_per_worker=ops_per_worker,
                                seed_tag=f"e3b.{name}.{count}")
            runner.load()
            result = runner.run()
            row.append(result.throughput_ops_s / 1000.0)
        servers.add_row(name, *row)
    servers.notes.append("write-heavy 4 KiB ops: added servers widen the "
                         "aggregate NVM write path")

    # Third axis: control-plane scale-out.  Pure alloc/free loops hammer the
    # master with metadata RPCs and never touch the data plane, so the curve
    # isolates master-shard scaling — one master saturates its NIC, shards
    # split the metadata by home server (sid % N) and serve in parallel.
    shard_counts: Sequence[int] = (1, 2, 4)
    shard_workers, shard_ops = 64, 40
    shards_t = Table(
        title="E3c metadata throughput vs master shards (64 workers)",
        headers=["metric"] + [str(s) for s in shard_counts],
    )
    ops_row: List[float] = []
    p99_row: List[float] = []
    for count in shard_counts:
        system = boot("gengar", seed + 200 + count, num_servers=8,
                      num_clients=8,
                      config_overrides=bench_config(num_master_shards=count))
        sim = system.sim
        lat: List[int] = []

        def worker(i, system=system, sim=sim, lat=lat):
            client = system.clients[i % len(system.clients)]
            for _ in range(shard_ops):
                t0 = sim.now
                gaddr = yield from client.gmalloc(128)
                yield from client.gfree(gaddr)
                lat.append(sim.now - t0)

        start = sim.now
        system.run(*[worker(i) for i in range(shard_workers)])
        elapsed = sim.now - start
        lat.sort()
        total = shard_workers * shard_ops
        ops_row.append(total / (elapsed / 1e9) / 1000.0)
        p99_row.append(lat[min(len(lat) - 1, int(len(lat) * 0.99))] / 1000.0)
    shards_t.add_row("alloc/free kops/s", *ops_row)
    shards_t.add_row("p99 latency (us)", *p99_row)
    shards_t.notes.append("metadata-only ops: shards parallelise the master; "
                          "the knee appears once client NICs saturate")

    # Fourth axis: client fanout.  Every client attaches a control QP to
    # every master shard and every server, so this sweeps the servers' RPC
    # receive pools — the elastic shared pool (PROTOCOLS.md §12) grows in
    # powers of two as clients attach, where the historical fixed 16-slot
    # rings wedged at >=16 concurrent clients.
    fanout_counts: Sequence[int] = (16, 32, 64, 128)
    fanout_spec = WORKLOADS["B"].scaled(record_count=256, value_size=128)
    fanout_t = Table(
        title="E3d YCSB-B throughput vs attached clients "
              "(8 servers, 4 shards)",
        headers=["metric"] + [str(c) for c in fanout_counts],
    )
    kops_row: List[float] = []
    slots_row: List[float] = []
    for count in fanout_counts:
        system = boot("gengar", seed + 300 + count, num_servers=8,
                      num_clients=count,
                      config_overrides=bench_config(num_master_shards=4))
        runner = YcsbRunner(system, fanout_spec, num_workers=count,
                            ops_per_worker=20, seed_tag=f"e3d.{count}")
        runner.load()
        result = runner.run()
        kops_row.append(result.throughput_ops_s / 1000.0)
        slots_row.append(
            float(system.pool.master.rpc.pool_stats()["capacity"]))
    fanout_t.add_row("kops/s", *kops_row)
    fanout_t.add_row("master pool slots", *slots_row)
    fanout_t.notes.append("shared receive pools double as clients attach; "
                          "throughput keeps scaling through 64 clients and "
                          "flattens past the NIC knee at 128")
    return ExperimentResult("E3", "throughput scalability",
                            [table, servers, shards_t, fanout_t])


# ---------------------------------------------------------------------------
# E4 — YCSB A-F throughput across systems (the <=70% headline claim)
# ---------------------------------------------------------------------------
def e04_ycsb_throughput(
    workload_names: Sequence[str] = ("A", "B", "C", "D", "E", "F"),
    systems: Sequence[str] = ("gengar", "cache-only", "proxy-only",
                              "nvm-direct", "client-replica"),
    num_workers: int = 4, ops_per_worker: int = 150, seed: int = 704,
) -> ExperimentResult:
    table = Table(
        title="E4 YCSB throughput (kops/s) by system",
        headers=["system"] + [f"YCSB-{w}" for w in workload_names],
    )
    cells: Dict[tuple, float] = {}
    for name in systems:
        row: List[float] = []
        for wname in workload_names:
            spec = WORKLOADS[wname].scaled(record_count=300, value_size=1024)
            system = boot(name, seed + ord(wname), num_servers=2, num_clients=2)
            runner = YcsbRunner(system, spec, num_workers=num_workers,
                                ops_per_worker=ops_per_worker,
                                seed_tag=f"e4.{name}.{wname}")
            runner.load()
            result = runner.run()
            kops = result.throughput_ops_s / 1000.0
            cells[(name, wname)] = kops
            row.append(kops)
        table.add_row(name, *row)

    gain = Table(
        title="E4b Gengar speedup over NVM-direct (paper claims up to 1.7x)",
        headers=["workload", "speedup"],
    )
    for wname in workload_names:
        gain.add_row(f"YCSB-{wname}",
                     speedup(cells[("nvm-direct", wname)], cells[("gengar", wname)]))
    return ExperimentResult("E4", "YCSB A-F throughput", [table, gain])


# ---------------------------------------------------------------------------
# E5 — YCSB latency distribution
# ---------------------------------------------------------------------------
def e05_ycsb_latency(systems: Sequence[str] = ("gengar", "cache-only", "proxy-only",
                                               "nvm-direct"),
                     seed: int = 705) -> ExperimentResult:
    spec = WORKLOADS["A"].scaled(record_count=300, value_size=1024)
    table = Table(
        title="E5 YCSB-A latency (us)",
        headers=["system", "read mean", "read p99", "update mean", "update p99"],
    )
    for name in systems:
        system = boot(name, seed, num_servers=2, num_clients=2)
        runner = YcsbRunner(system, spec, num_workers=4, ops_per_worker=150,
                            seed_tag=f"e5.{name}")
        runner.load()
        result = runner.run()
        read = result.latency_ns.get("read", {})
        update = result.latency_ns.get("update", {})
        table.add_row(
            name,
            read.get("mean", 0) / 1000.0, read.get("p99", 0) / 1000.0,
            update.get("mean", 0) / 1000.0, update.get("p99", 0) / 1000.0,
        )
    return ExperimentResult("E5", "YCSB-A latency distribution", [table])


# ---------------------------------------------------------------------------
# E6 — sensitivity to DRAM cache size
# ---------------------------------------------------------------------------
def e06_cache_size(cache_sizes: Sequence[int] = (64 * KIB, 128 * KIB, 256 * KIB,
                                                 512 * KIB, 1 * MIB),
                   seed: int = 706) -> ExperimentResult:
    spec = WORKLOADS["C"].scaled(record_count=400, value_size=1024)
    table = Table(
        title="E6 cache-size sensitivity (YCSB-C, 400 x 1 KiB records)",
        headers=["cache bytes", "hit ratio", "kops/s"],
    )
    for size in cache_sizes:
        system = boot("gengar", seed, num_servers=1, num_clients=2,
                      config_overrides=bench_config(cache_capacity=size,
                                                    epoch_ns=50_000,
                                                    report_every_ops=16,
                                                    promote_threshold=0.5,
                                                    demote_threshold=0.1))
        runner = YcsbRunner(system, spec, num_workers=4, ops_per_worker=500,
                            seed_tag=f"e6.{size}")
        runner.load()
        result = runner.run()
        table.add_row(size, result.cache_hit_ratio,
                      result.throughput_ops_s / 1000.0)
    table.notes.append("working set ~400 KiB: hit ratio saturates once it fits")
    return ExperimentResult("E6", "DRAM buffer size sensitivity", [table])


# ---------------------------------------------------------------------------
# E7 — sensitivity to access skew
# ---------------------------------------------------------------------------
def e07_skew(thetas: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
             seed: int = 707) -> ExperimentResult:
    table = Table(
        title="E7 skew sensitivity (YCSB-C)",
        headers=["system"] + [f"theta={t}" for t in thetas],
    )
    hits = Table(
        title="E7b Gengar cache hit ratio vs skew",
        headers=["theta", "hit ratio"],
    )
    for name in ("gengar", "nvm-direct"):
        row: List[float] = []
        for theta in thetas:
            spec = WORKLOADS["C"].scaled(record_count=400, value_size=1024,
                                         zipf_theta=theta)
            system = boot(name, seed, num_servers=1, num_clients=2,
                          config_overrides=bench_config(cache_capacity=128 * KIB))
            runner = YcsbRunner(system, spec, num_workers=4, ops_per_worker=150,
                                seed_tag=f"e7.{name}.{theta}")
            runner.load()
            result = runner.run()
            row.append(result.throughput_ops_s / 1000.0)
            if name == "gengar":
                hits.add_row(theta, result.cache_hit_ratio)
        table.add_row(name, *row)
    table.notes.append("cache sized below the working set: skew decides its value")
    return ExperimentResult("E7", "zipfian skew sensitivity", [table, hits])


# ---------------------------------------------------------------------------
# E8 — hot-data identification policy comparison
# ---------------------------------------------------------------------------
def e08_hotness_policy(seed: int = 708) -> ExperimentResult:
    # Large values make the DRAM/NVM read gap dominate, so placement quality
    # shows directly in throughput, not just hit ratio.
    spec = WORKLOADS["B"].scaled(record_count=300, value_size=4096)
    policies: Dict[str, Callable] = {
        "gengar-epoch-decay": lambda: EpochDecayPolicy(
            decay=0.5, promote_threshold=0.5, demote_threshold=0.1),
        "lru": LruPolicy,
        "lfu": lambda: LfuPolicy(promote_threshold=2.0),
        "random": lambda: RandomPolicy(random.Random(seed), churn=8),
        "no-cache": NeverCachePolicy,
    }
    table = Table(
        title="E8 placement policy comparison (YCSB-B, 4 KiB values, 256 KiB cache)",
        headers=["policy", "hit ratio", "kops/s"],
    )
    for pname, factory in policies.items():
        sim = Simulator(seed=seed)
        system = build_system(
            "gengar", sim, num_servers=1, num_clients=2,
            config_overrides=bench_config(cache_capacity=256 * KIB,
                                          epoch_ns=50_000,
                                          report_every_ops=16),
            policy_factory=factory,
        )
        runner = YcsbRunner(system, spec, num_workers=4, ops_per_worker=400,
                            seed_tag=f"e8.{pname}")
        runner.load()
        result = runner.run()
        table.add_row(pname, result.cache_hit_ratio,
                      result.throughput_ops_s / 1000.0)

    # Second table: the hot set *shifts* halfway through.  Decay adapts;
    # undecayed lifetime counts (LFU) keep caching yesterday's hot keys.
    shift = Table(
        title="E8b hit ratio after a hot-set shift (phase-2 only)",
        headers=["policy", "phase-2 hit ratio"],
    )
    from repro.apps.kvstore import KvStore
    from repro.workloads.zipf import ZipfianGenerator

    for pname, factory in policies.items():
        if pname == "no-cache":
            continue
        sim = Simulator(seed=seed + 1)
        system = build_system(
            "gengar", sim, num_servers=1, num_clients=2,
            config_overrides=bench_config(cache_capacity=256 * KIB,
                                          epoch_ns=50_000,
                                          report_every_ops=16),
            policy_factory=factory,
        )
        store = KvStore(4096)
        n = 300

        def load(sim):
            yield from store.load(system.clients[0], range(n),
                                  lambda k: b"\x11" * 4096)

        system.run(load(sim))

        def phase(worker_idx: int, rotate: int, ops: int):
            client = system.clients[worker_idx % len(system.clients)]
            zipf = ZipfianGenerator(
                n, 0.99, sim.rng.stream(f"e8b.{pname}.{worker_idx}.{rotate}"))
            for _ in range(ops):
                key = (zipf.next() + rotate) % n
                yield from store.get(client, key)

        system.run(*[phase(i, 0, 300) for i in range(4)])
        hits0 = sim.metrics.counter("pool.cache_hits").count
        reads0 = sim.metrics.counter("pool.reads").count
        system.run(*[phase(i, n // 2, 300) for i in range(4)])
        hits = sim.metrics.counter("pool.cache_hits").count - hits0
        reads = sim.metrics.counter("pool.reads").count - reads0
        shift.add_row(pname, hits / reads if reads else 0.0)

    return ExperimentResult("E8", "hot-data identification quality",
                            [table, shift])


# ---------------------------------------------------------------------------
# E9 — proxy behaviour under write bursts
# ---------------------------------------------------------------------------
def e09_proxy_drain(burst: int = 64, write_size: int = 2048,
                    seed: int = 709) -> ExperimentResult:
    bucket_size = 8
    buckets = burst // bucket_size
    series = Table(
        title="E9 ack latency (us) during a write burst (per 8-op bucket)",
        headers=["system"] + [f"ops {i * bucket_size}-{(i + 1) * bucket_size - 1}"
                              for i in range(buckets)],
    )
    drain = Table(
        title="E9b burst absorption",
        headers=["system", "burst time (us)", "drain time (us)", "peak ring occupancy"],
    )
    for name in ("gengar", "nvm-direct"):
        system = boot(name, seed, num_servers=1, num_clients=1,
                      config_overrides=bench_config(proxy_ring_slots=32))
        client = system.clients[0]
        sim = system.sim
        latencies: List[int] = []
        info: Dict[str, int] = {}

        def app(sim):
            gaddr = yield from client.gmalloc(write_size)
            t_start = sim.now
            for i in range(burst):
                t0 = sim.now
                yield from client.gwrite(gaddr, bytes([i % 256]) * write_size)
                latencies.append(sim.now - t0)
            info["burst_time"] = sim.now - t_start
            t0 = sim.now
            yield from client.gsync()
            info["drain_time"] = sim.now - t0

        system.run(app(sim))
        row = [
            sum(latencies[i * bucket_size:(i + 1) * bucket_size]) / bucket_size / 1000.0
            for i in range(buckets)
        ]
        series.add_row(name, *row)
        occupancy = sim.metrics.level("server0.proxy.occupancy").peak if name == "gengar" else 0
        drain.add_row(name, info["burst_time"] / 1000.0,
                      info["drain_time"] / 1000.0, occupancy)
    series.notes.append("gengar absorbs the burst at DRAM speed until the ring fills")
    return ExperimentResult("E9", "proxy burst absorption and drain", [series, drain])


# ---------------------------------------------------------------------------
# E10 — MapReduce job time (the second headline claim)
# ---------------------------------------------------------------------------
def e10_mapreduce(systems: Sequence[str] = ("gengar", "cache-only", "proxy-only",
                                            "nvm-direct", "dram-only"),
                  num_chunks: int = 16, chunk_bytes: int = 64 * KIB,
                  iterations: int = 4, sort_records: int = 6000,
                  seed: int = 710) -> ExperimentResult:
    """Iterative analytics over pool-resident input, the paper's MapReduce
    scenario: successive jobs re-read the same input splits, so Gengar's
    hot-data cache progressively moves them into server DRAM."""
    per_iter = Table(
        title="E10 iterative wordcount: per-iteration time (ms)",
        headers=["system"] + [f"iter {i + 1}" for i in range(iterations)] + ["sort"],
    )
    summary = Table(
        title="E10b total pipeline time (ms) and speedup vs NVM-direct",
        headers=["system", "total", "speedup"],
    )
    totals: Dict[str, float] = {}
    rows: Dict[str, List[float]] = {}
    reference_output: Dict[str, Any] = {}
    for name in systems:
        # Input chunks are read once per iteration: promote on low scores.
        system = boot(name, seed, num_servers=2, num_clients=2,
                      config_overrides=bench_config(proxy_slot_size=128 * KIB,
                                                    proxy_ring_slots=16,
                                                    epoch_ns=50_000,
                                                    report_every_ops=8,
                                                    promote_threshold=0.5,
                                                    demote_threshold=0.1))
        corpus = CorpusGenerator(vocab_size=200, rng=random.Random(seed))
        chunks = corpus.chunks(num_chunks, chunk_bytes)
        engine = MapReduceEngine(system.clients)
        sim = system.sim
        outcome: Dict[str, Any] = {"iters": []}

        def pipeline(sim):
            addrs = yield from engine.ingest(system.clients[0], chunks)
            for _ in range(iterations):
                result = yield from engine.run(wordcount_job(num_reducers=4),
                                               addrs, [len(c) for c in chunks])
                outcome["iters"].append(result)
                # Inter-job gap: planner epochs fire, promotions land.
                yield sim.timeout(120_000)
            outcome["wc"] = outcome["iters"][-1]

        def sort_app(sim):
            rng = random.Random(seed + 1)
            records = [rng.randrange(10**9) for _ in range(sort_records)]
            ordered, elapsed = yield from distributed_sort(
                system.clients, records, num_partitions=4)
            assert ordered == sorted(records)
            outcome["sort_ns"] = elapsed

        system.run(pipeline(sim))
        system.run(sort_app(sim))
        iter_ms = [r.elapsed_ns / 1e6 for r in outcome["iters"]]
        rows[name] = iter_ms + [outcome["sort_ns"] / 1e6]
        totals[name] = sum(iter_ms)
        if reference_output:
            assert outcome["wc"].output == reference_output["wc"], (
                f"system {name} computed different word counts"
            )
        else:
            reference_output["wc"] = outcome["wc"].output
    for name in systems:
        per_iter.add_row(name, *rows[name])
        summary.add_row(name, totals[name],
                        speedup(totals[name], totals["nvm-direct"]))
    per_iter.notes.append(
        "iterations 2+ re-read input that Gengar has promoted into DRAM"
    )
    return ExperimentResult("E10", "MapReduce job completion time",
                            [per_iter, summary])


# ---------------------------------------------------------------------------
# E11 — multi-user sharing / consistency overhead
# ---------------------------------------------------------------------------
def e11_sharing(share_ratios: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
                num_clients: int = 4, ops_per_worker: int = 80,
                seed: int = 711) -> ExperimentResult:
    table = Table(
        title="E11 throughput (kops/s) vs fraction of locked shared-object ops",
        headers=["share ratio", "kops/s", "lock retries"],
    )
    for ratio in share_ratios:
        system = boot("gengar", seed, num_servers=1, num_clients=num_clients)
        sim = system.sim
        setupd: Dict[str, Any] = {}

        def setup(sim):
            shared = yield from system.clients[0].gmalloc(1024)
            yield from system.clients[0].gwrite(shared, bytes(1024))
            yield from system.clients[0].gsync()
            privates = []
            for client in system.clients:
                g = yield from client.gmalloc(1024)
                yield from client.gwrite(g, bytes(1024))
                privates.append(g)
            setupd["shared"] = shared
            setupd["privates"] = privates

        system.run(setup(sim))
        retries_base = sim.metrics.counter("pool.lock_retries").count

        def worker(idx: int):
            client = system.clients[idx]
            rng = sim.rng.stream(f"e11.{ratio}.{idx}")
            for i in range(ops_per_worker):
                if rng.random() < ratio:
                    g = setupd["shared"]
                    yield from client.glock(g, write=True)
                    yield from client.gwrite(g, bytes([i % 256]) * 1024)
                    yield from client.gunlock(g, write=True)
                else:
                    yield from client.gwrite(setupd["privates"][idx],
                                             bytes([i % 256]) * 1024)

        t0 = sim.now
        system.run(*[worker(i) for i in range(num_clients)])
        elapsed = sim.now - t0
        total_ops = num_clients * ops_per_worker
        retries = sim.metrics.counter("pool.lock_retries").count - retries_base
        table.add_row(ratio, ops_per_sec(total_ops, elapsed) / 1000.0, retries)
    table.notes.append("ratio 0 = embarrassingly parallel; 1 = fully serialized")
    return ExperimentResult("E11", "sharing/consistency overhead", [table])


# ---------------------------------------------------------------------------
# E12 — design-choice ablations
# ---------------------------------------------------------------------------
def e12_ablation(seed: int = 712) -> ExperimentResult:
    spec = WORKLOADS["A"].scaled(record_count=300, value_size=1024)

    mech = Table(
        title="E12 mechanism ablation (YCSB-A kops/s, mean of 3 seeds)",
        headers=["variant", "kops/s", "hit ratio"],
    )
    for name in ("gengar", "cache-only", "proxy-only", "nvm-direct"):
        kops: List[float] = []
        hit: List[float] = []
        for s in range(3):
            system = boot(name, seed + s, num_servers=2, num_clients=2)
            runner = YcsbRunner(system, spec, num_workers=4, ops_per_worker=150,
                                seed_tag=f"e12m.{name}.{s}")
            runner.load()
            result = runner.run()
            kops.append(result.throughput_ops_s / 1000.0)
            hit.append(result.cache_hit_ratio)
        mech.add_row(name, sum(kops) / len(kops), sum(hit) / len(hit))

    epochs = Table(
        title="E12b hotness epoch length (YCSB-C hit ratio)",
        headers=["epoch (us)", "hit ratio", "kops/s"],
    )
    cspec = WORKLOADS["C"].scaled(record_count=300, value_size=1024)
    for epoch_ns in (50_000, 200_000, 1_000_000):
        system = boot("gengar", seed, num_servers=1, num_clients=2,
                      config_overrides=bench_config(epoch_ns=epoch_ns))
        runner = YcsbRunner(system, cspec, num_workers=4, ops_per_worker=150,
                            seed_tag=f"e12e.{epoch_ns}")
        runner.load()
        result = runner.run()
        epochs.add_row(epoch_ns / 1000, result.cache_hit_ratio,
                       result.throughput_ops_s / 1000.0)

    rings = Table(
        title="E12c proxy ring size under a 64-write burst",
        headers=["ring slots", "avg ack latency (us)"],
    )
    for slots in (4, 16, 64):
        system = boot("gengar", seed, num_servers=1, num_clients=1,
                      config_overrides=bench_config(proxy_ring_slots=slots,
                                                    enable_cache=False))
        client = system.clients[0]
        sim = system.sim
        lat: List[int] = []

        def app(sim):
            gaddr = yield from client.gmalloc(2048)
            for i in range(64):
                t0 = sim.now
                yield from client.gwrite(gaddr, bytes([i % 256]) * 2048)
                lat.append(sim.now - t0)

        system.run(app(sim))
        rings.add_row(slots, sum(lat) / len(lat) / 1000.0)

    meta = Table(
        title="E12d client metadata cache (YCSB-C kops/s)",
        headers=["metadata cache", "kops/s", "lookup RPCs"],
    )
    for enabled in (True, False):
        system = boot("gengar", seed, num_servers=1, num_clients=2,
                      config_overrides=bench_config(metadata_cache=enabled))
        runner = YcsbRunner(system, cspec, num_workers=4, ops_per_worker=100,
                            seed_tag=f"e12md.{enabled}")
        runner.load()
        result = runner.run()
        lookups = system.sim.metrics.counter("pool.lookups").count
        meta.add_row("on" if enabled else "off",
                     result.throughput_ops_s / 1000.0, lookups)

    journal = Table(
        title="E12e metadata journal cost (gmalloc latency, us)",
        headers=["journal", "gmalloc mean (us)"],
    )
    for enabled in (False, True):
        system = boot("gengar", seed, num_servers=1, num_clients=1,
                      config_overrides=bench_config(metadata_journal=enabled))
        client = system.clients[0]
        sim = system.sim
        lat: List[int] = []

        def alloc_app(sim):
            for _ in range(40):
                t0 = sim.now
                yield from client.gmalloc(256)
                lat.append(sim.now - t0)

        system.run(alloc_app(sim))
        journal.add_row("on" if enabled else "off",
                        sum(lat) / len(lat) / 1000.0)
    journal.notes.append("durability of allocation metadata costs one "
                         "journal RPC + NVM write per gmalloc")

    return ExperimentResult("E12", "design-choice ablations",
                            [mech, epochs, rings, meta, journal])


# ---------------------------------------------------------------------------
# X1 — extension beyond the paper: open-loop saturation
# ---------------------------------------------------------------------------
def x01_open_loop_saturation(
    offered_kops: Sequence[int] = (200, 1000, 1600, 2000),
    duration_ns: int = 400_000, seed: int = 801,
) -> ExperimentResult:
    """Offered-load sweep with an open-loop trace replayer.

    Closed-loop YCSB can never push a system past saturation; an open-loop
    trace (ops issued at their timestamps regardless of completions) can.
    We sweep the offered write-heavy load and watch p99 latency: the system
    whose write path is slower (NVM-direct) collapses earlier than Gengar's
    proxy-staged path.  This validates C2 from a direction the paper's own
    figures cannot.
    """
    import random as _random

    from repro.apps.kvstore import KvStore
    from repro.workloads.traces import TraceReplayer, generate_trace

    table = Table(
        title="X1 write p99 latency (us) vs offered load (kops/s, open loop)",
        headers=["system"] + [str(k) for k in offered_kops],
    )
    for name in ("gengar", "nvm-direct"):
        row: List[float] = []
        for kops in offered_kops:
            system = boot(name, seed, num_servers=1, num_clients=2,
                          config_overrides=bench_config(proxy_ring_slots=128))
            sim = system.sim
            store = KvStore(1024)

            def load(sim):
                yield from store.load(system.clients[0], range(100),
                                      lambda k: bytes([k % 256]) * 1024)

            system.run(load(sim))
            interarrival = max(1, round(1e9 / (kops * 1000)))
            ops = generate_trace(
                _random.Random(seed), duration_ns=duration_ns,
                mean_interarrival_ns=interarrival, record_count=100,
                read_fraction=0.2, value_size=1024,
            )
            replayer = TraceReplayer(system.clients, store, value_size=1024)
            holder: Dict[str, Any] = {}

            def run(sim):
                holder["result"] = yield from replayer.replay(ops)

            system.run(run(sim))
            result = holder["result"]
            write_lat = result.latency_by_kind.get("write", {})
            row.append(write_lat.get("p99", 0.0) / 1000.0)
        table.add_row(name, *row)
    table.notes.append("extension experiment (not a paper figure): open-loop "
                       "replay exposes the write path's queueing behaviour "
                       "approaching the NVM bandwidth ceiling (~2.2 Mops of "
                       "1 KiB); past that ceiling both systems are NVM-bound")
    return ExperimentResult("X1", "open-loop saturation (extension)", [table])


# ---------------------------------------------------------------------------
# X2 — extension beyond the paper: rack locality on a two-tier fabric
# ---------------------------------------------------------------------------
def x02_rack_locality(value_size: int = 4096, seed: int = 802,
                      ops_per_worker: int = 150) -> ExperimentResult:
    """Same workload, three placements on an oversubscribed two-tier fabric:
    clients co-racked with the servers, clients across the core, and
    cross-rack with the core heavily oversubscribed.  Quantifies how much of
    Gengar's behaviour survives leaving the rack."""
    from repro.hardware.specs import DEFAULT_LINK, LinkSpec

    spec = WORKLOADS["C"].scaled(record_count=200, value_size=value_size)
    table = Table(
        title="X2 YCSB-C on a two-tier fabric (kops/s / read mean us)",
        headers=["placement", "kops/s", "read mean (us)"],
    )
    placements = {
        "same rack": ({"server0": "r0", "server1": "r0",
                       "client0": "r0", "client1": "r0", "master": "r0"}, None),
        "cross rack (2:1 core)": ({"server0": "r0", "server1": "r0",
                                   "client0": "r1", "client1": "r1",
                                   "master": "r1"},
                                  DEFAULT_LINK.bandwidth / 2),
        "cross rack (8:1 core)": ({"server0": "r0", "server1": "r0",
                                   "client0": "r1", "client1": "r1",
                                   "master": "r1"},
                                  DEFAULT_LINK.bandwidth / 8),
    }
    for label, (plan, core_bw) in placements.items():
        link = LinkSpec(
            bandwidth=DEFAULT_LINK.bandwidth,
            propagation_ns=DEFAULT_LINK.propagation_ns,
            header_bytes=DEFAULT_LINK.header_bytes,
            core_bandwidth=core_bw,
            core_hop_ns=300,
        )
        system = boot("gengar", seed, num_servers=2, num_clients=2,
                      link=link, rack_plan=plan)
        runner = YcsbRunner(system, spec, num_workers=4,
                            ops_per_worker=ops_per_worker,
                            seed_tag=f"x2.{label}")
        runner.load()
        result = runner.run()
        read = result.latency_ns.get("read", {})
        table.add_row(label, result.throughput_ops_s / 1000.0,
                      read.get("mean", 0) / 1000.0)
    table.notes.append("extension experiment: the DRAM cache cuts NVM time "
                       "but cannot cut core-network time — locality still "
                       "dominates on oversubscribed fabrics")

    # X2b: rack-local placement on a partitioned workload (each client
    # churns its own objects) - the case affinity-aware allocation targets.
    placement_tbl = Table(
        title="X2b partitioned workload: placement policy (kops/s)",
        headers=["placement", "kops/s", "inter-rack msgs"],
    )
    for policy_name in ("round-robin", "rack-local"):
        link = LinkSpec(
            bandwidth=DEFAULT_LINK.bandwidth,
            propagation_ns=DEFAULT_LINK.propagation_ns,
            header_bytes=DEFAULT_LINK.header_bytes,
            core_bandwidth=DEFAULT_LINK.bandwidth / 8,
            core_hop_ns=300,
        )
        system = boot("gengar", seed + 7, num_servers=2, num_clients=2,
                      link=link,
                      rack_plan={"server0": "r0", "server1": "r1",
                                 "client0": "r0", "client1": "r1",
                                 "master": "r0"},
                      config_overrides=bench_config(placement=policy_name,
                                                    proxy_slot_size=8 * KIB))
        sim = system.sim
        per_worker = 120
        value = 4096

        def worker(idx):
            client = system.clients[idx]
            addrs = []
            for _ in range(10):
                g = yield from client.gmalloc(value)
                addrs.append(g)
            for i in range(per_worker):
                g = addrs[i % len(addrs)]
                if i % 3 == 0:
                    yield from client.gwrite(g, bytes([i % 256]) * value)
                else:
                    yield from client.gread(g)

        t0 = sim.now
        system.run(*[worker(i) for i in range(2)])
        elapsed = sim.now - t0
        placement_tbl.add_row(
            policy_name,
            ops_per_sec(2 * per_worker, elapsed) / 1000.0,
            system.pool.cluster.fabric.inter_rack_messages.count,
        )
    placement_tbl.notes.append("rack-local allocation keeps each client's "
                               "working set behind its own ToR")
    return ExperimentResult("X2", "rack locality (extension)",
                            [table, placement_tbl])


# ---------------------------------------------------------------------------
# X3 — extension: attributing the YCSB-F regression to release consistency
# ---------------------------------------------------------------------------
def x03_release_consistency_tax(seed: int = 803,
                                ops_per_worker: int = 150) -> ExperimentResult:
    """E4 found Gengar *losing* on YCSB-F (locked read-modify-writes).  This
    ablation attributes the loss: with the release-time gsync disabled
    (weaker guarantee), the proxy's advantage returns — i.e. the regression
    is entirely the synchronous drain wait that release consistency puts
    back on the critical path."""
    spec = WORKLOADS["F"].scaled(record_count=300, value_size=1024)
    table = Table(
        title="X3 YCSB-F throughput (kops/s) vs release-consistency mode",
        headers=["variant", "kops/s", "rmw mean (us)"],
    )
    variants = {
        "gengar (sync release)": ("gengar", True),
        "gengar (unsafe release)": ("gengar", False),
        "nvm-direct": ("nvm-direct", True),
    }
    for label, (name, sync_release) in variants.items():
        system = boot(name, seed, num_servers=2, num_clients=2,
                      config_overrides=bench_config(
                          sync_on_release=sync_release))
        runner = YcsbRunner(system, spec, num_workers=4,
                            ops_per_worker=ops_per_worker,
                            seed_tag=f"x3.{label}")
        runner.load()
        result = runner.run()
        rmw = result.latency_ns.get("rmw", {})
        table.add_row(label, result.throughput_ops_s / 1000.0,
                      rmw.get("mean", 0) / 1000.0)
    table.notes.append("unsafe release drops the guarantee that the next "
                       "lock holder sees the writes; measurement only")
    return ExperimentResult("X3", "release-consistency tax (extension)", [table])


#: All experiments in id order, for the harness and docs.
ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": e01_read_latency,
    "E2": e02_write_latency,
    "E3": e03_scalability,
    "E4": e04_ycsb_throughput,
    "E5": e05_ycsb_latency,
    "E6": e06_cache_size,
    "E7": e07_skew,
    "E8": e08_hotness_policy,
    "E9": e09_proxy_drain,
    "E10": e10_mapreduce,
    "E11": e11_sharing,
    "E12": e12_ablation,
    # Extension experiments (beyond the paper's figures).
    "X1": x01_open_loop_saturation,
    "X2": x02_rack_locality,
    "X3": x03_release_consistency_tax,
}
