"""Benchmark harness: experiment drivers and paper-style reporting."""

from repro.bench.report import Table, render_series, render_table
from repro.bench.runner import YcsbResult, YcsbRunner

__all__ = ["YcsbRunner", "YcsbResult", "Table", "render_table", "render_series"]
