"""Chaos soak: YCSB traffic under a deterministic fault plan.

The harness boots a resilient pool (retries + deadline + auto-reattach +
degraded mode), bulk-loads a key space, arms a :class:`FaultPlan` with
server crashes, a lossy window, a latency spike, and a ring stall, and runs
closed-loop YCSB-B workers straight through the faults.  Afterwards it
audits the durability contract:

* every value read parses back to a version this harness actually wrote
  (no torn or fabricated data, ever);
* no key regresses below its last *safely synced* version — a gsync that
  completed with no re-attach in between is a durability promise;
* staged writes lost to a crash are reported in the client's fault log
  exactly once (a re-report without an intervening ack is a violation);
* no operation outruns its deadline without raising the typed error.

Every probabilistic choice draws from the simulator's seeded RNG registry,
so the same ``--seed`` reproduces a bit-identical soak — counters, fault
timings, and all (``--check-determinism`` proves it by running twice).

Run it::

    PYTHONPATH=src python -m repro.bench.chaos --seed 7 --check-determinism
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core import GengarConfig, GengarPool
from repro.core.errors import (
    ClientError,
    DeadlineExceededError,
    FencedError,
    RetryableError,
)
from repro.faults import (
    ClientCrash,
    ClientRecover,
    FaultPlan,
    LatencySpike,
    LossyLink,
    MasterCrash,
    MasterRecover,
    Partition,
    RingStall,
    ServerCrash,
    ServerRecover,
)
from repro.hardware.specs import TEST_DRAM, TEST_NVM
from repro.sim import Simulator
from repro.sim.trace import Tracer, trace
from repro.workloads.bank import (
    BankSpec,
    bank_read_balances,
    bank_setup,
    bank_total,
    bank_transfer,
)
from repro.workloads.ycsb import WORKLOAD_B, Op, YcsbGenerator

#: Virtual-time slack allowed past a deadline before we call it a miss
#: (the watchdog wakes at the next event boundary, never mid-verb).
_DEADLINE_SLACK_NS = 5_000


class _MidCommitKill(Exception):
    """Raised out of a victim's commit hook to unwind its worker after
    the crash landed — the simulated analogue of the process dying with
    the commit half-done."""


def soak_config(smoke: bool = False, kill_clients: bool = False,
                crash_master: bool = False,
                nemesis: bool = False, txn: bool = False,
                shards: int = 1) -> GengarConfig:
    """The resilient profile the soak runs under.

    ``kill_clients`` arms the lease/fencing/torn-slot machinery;
    ``crash_master`` arms the metadata journal so a restarted master can
    rebuild; ``nemesis`` arms the full partition-tolerant control plane
    (journal + terms + leases + phi-accrual failure detector) for the
    Jepsen-style partition phase; ``txn`` arms distributed transactions
    (intent records + leases + the journal, so both the lease sweep and a
    rebuilt master's orphan sweep can roll intents forward); ``shards``
    partitions the control plane across that many master shards and arms
    the per-shard failover stack (journal + terms + leases) for the
    shard-kill phase.  All default off, keeping the base soak
    byte-identical.
    """
    extras: Dict[str, Any] = {}
    if kill_clients:
        extras.update(client_lease_ns=120_000, proxy_commit=True)
    if crash_master:
        extras.update(metadata_journal=True)
    if nemesis:
        extras.update(client_lease_ns=120_000, metadata_journal=True,
                      master_terms=True, failure_detector=True)
    if txn:
        extras.update(enable_txn=True, client_lease_ns=120_000,
                      metadata_journal=True,
                      lock_acquire_timeout_ns=100_000)
    if shards > 1:
        # Same resilient control-plane stack as the nemesis profile (the
        # phi-accrual detector keeps the base soak's lossy windows from
        # reading as client death), partitioned across N shards.
        extras.update(num_master_shards=shards, client_lease_ns=120_000,
                      metadata_journal=True, master_terms=True,
                      failure_detector=True)
    return GengarConfig(
        cache_capacity=256 * 1024,
        epoch_ns=50_000,
        report_every_ops=16,
        proxy_ring_slots=8,
        proxy_slot_size=4 * 1024,
        lock_table_entries=1024,
        retry_timeout_ns=20_000,
        retry_max_attempts=8,
        retry_base_backoff_ns=2_000,
        retry_max_backoff_ns=50_000,
        op_deadline_ns=400_000,
        auto_reattach=True,
        degraded_mode=True,
        degraded_patience_polls=4,
        **extras,
    )


def soak_plan(t0: int, smoke: bool = False) -> FaultPlan:
    """Two crash/recover cycles, one lossy window, a spike, and a stall,
    anchored at ``t0`` (virtual ns; typically the end of the load phase)."""
    scale = 0.35 if smoke else 1.0

    def at(us: float) -> int:
        return t0 + int(us * 1_000 * scale)

    return FaultPlan.of(
        # Freeze server0's drains just before killing it, so staged writes
        # are still in the ring when the crash lands (the lost-write path).
        RingStall(at_ns=at(100), duration_ns=int(60_000 * scale), server_id=0),
        ServerCrash(at_ns=at(150), server_id=0),
        ServerRecover(at_ns=at(280), server_id=0),
        LossyLink(start_ns=at(350), end_ns=at(500), drop_prob=0.25),
        LatencySpike(start_ns=at(550), end_ns=at(650), extra_ns=3_000),
        RingStall(at_ns=at(700), duration_ns=int(120_000 * scale), server_id=1),
        ServerCrash(at_ns=at(900), server_id=1),
        ServerRecover(at_ns=at(1030), server_id=1),
    )


class ChaosSoak:
    """One soak run: load, fault, verify."""

    def __init__(self, seed: int = 7, smoke: bool = False,
                 dump_trace: bool = False, kill_clients: bool = False,
                 crash_master: bool = False, record_spans: bool = False,
                 prefetch: bool = False, nemesis: bool = False,
                 check_linearizable: bool = False,
                 kill_mid_commit: bool = False,
                 check_serializable: bool = False,
                 shards: int = 1, fanout_clients: int = 0):
        self.seed = seed
        self.smoke = smoke
        self.kill_clients = kill_clients
        self.crash_master = crash_master
        self.prefetch = prefetch
        self.shards = shards
        self.fanout_clients = fanout_clients
        #: High-fanout phase outcome (None unless --clients armed it).
        self.fanout_report: Optional[Dict[str, Any]] = None
        # Sharded runs route the consistency audit through the shard-kill
        # phase instead of the (single-master) standby-promotion nemesis.
        self.nemesis = (nemesis or check_linearizable) and shards == 1
        self.check_linearizable = check_linearizable
        self.kill_mid_commit = kill_mid_commit or check_serializable
        self.check_serializable = check_serializable
        self.records = 24 if smoke else 48
        self.value_size = 512
        self.num_workers = 2 if smoke else 4
        self.ops_per_worker = 80 if smoke else 400
        self.config = soak_config(smoke, kill_clients=kill_clients,
                                  crash_master=crash_master,
                                  nemesis=self.nemesis,
                                  txn=self.kill_mid_commit,
                                  shards=shards)
        self.sim = Simulator(seed=seed)
        self.recorder = None
        if record_spans:
            from repro import obs
            self.recorder = obs.install(self.sim)
        if dump_trace:
            self.sim.tracer = Tracer(
                self.sim, capacity=50_000,
                categories={"fault", "retry", "failover", "degraded",
                            "lease", "fence", "partition", "term", "check",
                            "txn"})
        self.pool = GengarPool.build(
            self.sim, num_servers=max(2, self.shards),
            num_clients=3 if (kill_clients or self.kill_mid_commit) else 2,
            config=self.config,
            dram=TEST_DRAM, nvm=TEST_NVM,
            standby_master=self.nemesis,
        )
        spec = WORKLOAD_B.scaled(record_count=self.records,
                                 value_size=self.value_size)
        self.spec = spec
        self._gen0 = YcsbGenerator(spec, self.sim.rng.stream("chaos.values"))

        self.gaddrs: Dict[int, int] = {}
        self._key_of: Dict[int, int] = {}  # gaddr -> key
        self.attempted: Dict[int, set] = {}
        self.acked: Dict[int, int] = {}
        self.synced: Dict[int, int] = {}
        self.tainted: set = set()
        #: (client_name, gaddr) -> ack times, for the exactly-once audit.
        self.ack_times: Dict[Tuple[str, int], List[int]] = {}
        self.violations: List[str] = []
        self.ops_ok = 0
        self.ops_typed_failures = 0
        #: Partition-phase state: the op-history recorder (when
        #: ``check_linearizable``), the checker's verdict, and the version
        #: counters the nemesis workers hand out under their write locks.
        self.history_recorder = None
        self.check_result = None
        self.linearizable: Optional[bool] = None
        self._nemesis_versions: Dict[int, int] = {}
        #: Transaction-phase state: the txn-history recorder (when
        #: ``check_serializable``), the auditor's verdict, and the bank
        #: phase's conservation outcome.
        self.txn_history_recorder = None
        self.txn_check_result = None
        self.serializable: Optional[bool] = None
        self.bank_total_ok: Optional[bool] = None

    # ------------------------------------------------------------------
    def encode(self, key: int, version: int) -> bytes:
        return self._gen0.value(key, version)

    def parse(self, key: int, data: bytes) -> Optional[int]:
        """The version encoded in ``data``, or None if it is not a value
        this harness could have written for ``key``."""
        head, _, _rest = data.partition(b"|")
        if not head.startswith(b"k") or b"v" not in head:
            return None
        k_part, _, v_part = head[1:].partition(b"v")
        try:
            k, v = int(k_part), int(v_part)
        except ValueError:
            return None
        if k != key or self.encode(key, v) != data:
            return None
        return v

    # ------------------------------------------------------------------
    def load(self) -> None:
        def loader(client):
            for key in range(self.records):
                gaddr = yield from client.gmalloc(self.value_size)
                self.gaddrs[key] = gaddr
                self._key_of[gaddr] = key
                yield from client.gwrite(gaddr, self.encode(key, 0))
                self.attempted[key] = {0}
                self.acked[key] = 0
            yield from client.gsync()
            for key in range(self.records):
                self.synced[key] = 0

        self.pool.run(loader(self.pool.clients[0]))

    # ------------------------------------------------------------------
    def _check_read(self, key: int, data: bytes) -> None:
        version = self.parse(key, data)
        if version is None or version not in self.attempted[key]:
            self.violations.append(
                f"key {key}: read returned bytes of no attempted version "
                f"(head={data[:24]!r})")
        elif key not in self.tainted and version < self.synced.get(key, 0):
            self.violations.append(
                f"key {key}: read v{version} regressed below synced "
                f"v{self.synced[key]}")

    def _absorb_losses(self, client, seen: int, shard: set) -> int:
        """Fold new fault-log records into the worker's bookkeeping.

        A staged write reported lost voids the ack for its key: the durable
        version is unknown (some earlier drained one) until the worker
        writes the key again.  Returns the new fault-log cursor.
        """
        for rec in client.fault_log[seen:]:
            for gaddr in rec["lost"]:
                key = self._key_of.get(gaddr)
                if key in shard:
                    self.acked[key] = None
        return len(client.fault_log)

    def _mark_synced(self, client, keys, acked_at_sync: Dict[int, Optional[int]],
                     fault_log_len: int) -> None:
        # A sync only counts as a durability promise if no failover happened
        # while it ran (a re-attach turns staged writes into reported losses
        # and lets the sync complete trivially).
        if len(client.fault_log) != fault_log_len or client._reattach_gates:
            return
        for key in keys:
            acked = acked_at_sync[key]
            if acked is not None:
                self.synced[key] = max(self.synced.get(key, 0), acked)

    def worker(self, index: int, client, mode: str) -> Generator[Any, Any, None]:
        """One closed-loop worker over its own key shard.

        Modes: ``burst`` hammers zipfian updates and never syncs mid-run
        (staged writes are always in flight when a crash lands); ``rr``
        sweeps its shard round-robin with updates (distinct keys, so a full
        stalled ring is hit on keys with no overlay entry — the degraded
        direct-write path); ``ycsb`` runs plain YCSB-B.
        """
        sim = self.sim
        shard = [k for k in range(self.records)
                 if k % self.num_workers == index]
        shard_set = set(shard)
        gen = YcsbGenerator(self.spec, sim.rng.stream(f"chaos.w{index}"))
        next_version = {k: 1 for k in shard}
        sync_every = 10**9 if mode == "burst" else 24
        seen_log = 0
        deadline = self.config.op_deadline_ns
        for i in range(self.ops_per_worker):
            op, key_id, _scan = gen.next_op()
            if mode == "rr":
                key = shard[i % len(shard)]
            else:
                key = shard[key_id % len(shard)]
            gaddr = self.gaddrs[key]
            do_write = mode in ("burst", "rr") or op is Op.UPDATE
            t0 = sim.now
            typed = False
            try:
                if do_write:
                    version = next_version[key]
                    next_version[key] = version + 1
                    self.attempted[key].add(version)
                    yield from client.gwrite(gaddr, self.encode(key, version))
                    self.acked[key] = version
                    self.ack_times.setdefault((client.name, gaddr), []).append(sim.now)
                else:
                    data = yield from client.gread(gaddr)
                    self._check_read(key, data)
                self.ops_ok += 1
            except DeadlineExceededError:
                typed = True
                self.ops_typed_failures += 1
                if do_write:
                    # An abandoned write attempt may still land later, out
                    # of order; stop holding this key to the sync bar.
                    self.tainted.add(key)
            except RetryableError:
                typed = True
                self.ops_typed_failures += 1
                if do_write:
                    self.tainted.add(key)
            except ClientError as exc:
                self.violations.append(
                    f"worker {index} op {i}: unexpected fatal "
                    f"{type(exc).__name__}: {exc}")
                return
            elapsed = sim.now - t0
            if deadline and not typed and elapsed > deadline + _DEADLINE_SLACK_NS:
                self.violations.append(
                    f"worker {index} op {i}: ran {elapsed} ns past the "
                    f"{deadline} ns deadline without a typed error")
            if (i + 1) % sync_every == 0:
                seen_log = self._absorb_losses(client, seen_log, shard_set)
                log_len = len(client.fault_log)
                acked_now = {k: self.acked[k] for k in shard}
                try:
                    yield from client.gsync()
                except ClientError:
                    self.ops_typed_failures += 1
                else:
                    self._mark_synced(client, shard, acked_now, log_len)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Post-horizon audit: final sync, read-back, loss accounting."""
        def final_pass(client, keys):
            yield from client.gsync()
            for key in keys:
                data = yield from client.gread(self.gaddrs[key])
                self._check_read(key, data)

        clients = self.pool.clients
        shards = [
            [k for k in range(self.records) if k % len(clients) == i]
            for i in range(len(clients))
        ]
        self.pool.run(*[final_pass(c, s) for c, s in zip(clients, shards)])

        for sid, server in self.pool.servers.items():
            if not server.is_alive:
                self.violations.append(f"server {sid} never recovered")

        # Lost staged writes: reported exactly once.  The same gaddr may
        # legitimately show up in a later record only if the client staged
        # (acked) a new write to it between the two reports.
        reported = 0
        for client in clients:
            last_report: Dict[int, int] = {}
            for rec in client.fault_log:
                if len(set(rec["lost"])) != len(rec["lost"]):
                    self.violations.append(
                        f"{client.name}: duplicate gaddr within one "
                        f"lost-write report at t={rec['time_ns']}")
                reported += len(rec["lost"])
                for gaddr in rec["lost"]:
                    prev = last_report.get(gaddr)
                    if prev is not None:
                        acks = self.ack_times.get((client.name, gaddr), [])
                        if not any(prev < t <= rec["time_ns"] for t in acks):
                            self.violations.append(
                                f"{client.name}: gaddr {gaddr:#x} reported "
                                f"lost twice with no write in between")
                    last_report[gaddr] = rec["time_ns"]
        # .total carries the lost-write sum (.count is reports made).
        counted = int(self.sim.metrics.counter("pool.lost_staged_writes").total)
        if counted != reported:
            self.violations.append(
                f"lost-write counter ({counted}) != fault-log total ({reported})")

    # ------------------------------------------------------------------
    def crash_tolerance_phase(self) -> None:
        """Full-pool crash tolerance: kill a lock-holding client mid-write
        (torn slot), crash and rebuild the master mid-workload, and audit
        that every recovery path engages — lease expiry frees the lock
        within a bounded wait, the torn frame never reaches NVM, the zombie
        is fenced until it re-attaches, and allocations ride out the master
        outage on retries."""
        sim = self.sim
        lease = self.config.client_lease_ns
        t0 = sim.now
        kill_at = t0 + 40_000
        faults = []
        if self.kill_clients:
            victim = self.pool.clients[2]
            revive_at = kill_at + (5 * lease) // 2
            faults += [
                ClientCrash(at_ns=kill_at, client=victim.name,
                            tear_inflight=True),
                ClientRecover(at_ns=revive_at, client=victim.name),
            ]
        if self.crash_master:
            faults += [
                MasterCrash(at_ns=t0 + 20_000),
                MasterRecover(at_ns=t0 + 80_000, rebuild=True),
            ]
        torn_before = sum(
            s.torn_skipped.count for s in self.pool.servers.values())
        failovers_before = self.pool.master.failovers.count
        expiries_before = self.pool.master.lease_expiries.count
        recoveries_before = int(self.pool.master.lock_recoveries.total)
        injector = self.pool.inject_faults(
            FaultPlan.of(*faults), rng_name="faults.tolerance")

        outcome: Dict[str, Any] = {}
        payload_old = b"\xa1" * 256
        payload_torn = b"\xb2" * 256
        payload_new = b"\xc3" * 256
        procs = []

        if self.kill_clients:
            victim = self.pool.clients[2]
            contender = self.pool.clients[0]

            def victim_run(sim):
                g_lock = yield from victim.gmalloc(self.value_size)
                g_data = yield from victim.gmalloc(self.value_size)
                outcome["g_lock"], outcome["g_data"] = g_lock, g_data
                yield from victim.glock(g_lock)
                yield from victim.gwrite(g_data, payload_old)
                yield from victim.gsync()
                # Staged but never synced: the crash re-stages half of this
                # frame, which the commit word must keep out of NVM.
                yield from victim.gwrite(g_data, payload_torn)
                yield sim.timeout((revive_at - sim.now) + 10_000)
                # Back as a zombie: lock ops must fail typed, not corrupt.
                try:
                    yield from victim.gunlock(g_lock)
                    outcome["zombie_fenced"] = False
                except FencedError:
                    outcome["zombie_fenced"] = True
                yield from victim.reattach_master()
                # Fully rejoined under the new epoch (the first write heals
                # the retired proxy ring via the resilience engine).
                yield from victim.glock(g_lock)
                yield from victim.gwrite(g_data, payload_new)
                yield from victim.gsync()
                yield from victim.gunlock(g_lock)
                data = yield from victim.gread(g_data, length=len(payload_new))
                outcome["rejoin_data_ok"] = data == payload_new

            def contender_run(sim):
                # Outlive the lease (and any master outage), then the dead
                # holder's lock must clear within one further lease.
                yield sim.timeout((kill_at - sim.now) + 2 * lease)
                while "g_lock" not in outcome:  # pragma: no cover - ordering
                    yield sim.timeout(1_000)
                t_acq = sim.now
                yield from contender.glock(outcome["g_lock"])
                yield from contender.gunlock(outcome["g_lock"])
                outcome["lock_wait_ns"] = sim.now - t_acq
                data = yield from contender.gread(
                    outcome["g_data"], length=256)
                outcome["contender_saw"] = bytes(data)

            procs += [victim_run(sim), contender_run(sim)]

        if self.crash_master:
            allocator = self.pool.clients[1]

            def allocator_run(sim):
                yield sim.timeout(30_000)  # the master is down now
                gaddr = yield from allocator.gmalloc(self.value_size)
                yield from allocator.gwrite(gaddr, b"\xd4" * 64)
                yield from allocator.gsync()
                data = yield from allocator.gread(gaddr, length=64)
                outcome["alloc_through_outage_ok"] = (
                    data == b"\xd4" * 64
                    and self.pool.master.directory.get(gaddr) is not None)

            procs.append(allocator_run(sim))

        self.pool.run(*procs)
        injector.uninstall()

        if self.kill_clients:
            if not outcome.get("zombie_fenced"):
                self.violations.append(
                    "crash-tolerance: revived zombie released a lock "
                    "without being fenced")
            if not outcome.get("rejoin_data_ok"):
                self.violations.append(
                    "crash-tolerance: victim's post-reattach write did not "
                    "read back")
            if outcome.get("lock_wait_ns", 0) >= lease:
                self.violations.append(
                    f"crash-tolerance: contender waited "
                    f"{outcome.get('lock_wait_ns')} ns on a dead client's "
                    f"lock (bound {lease} ns)")
            if outcome.get("contender_saw") not in (payload_old, payload_torn):
                self.violations.append(
                    "crash-tolerance: contender read a value that is not "
                    "any fully-applied write (torn frame reached NVM)")
            torn_after = sum(
                s.torn_skipped.count for s in self.pool.servers.values())
            if torn_after - torn_before < 1:
                self.violations.append(
                    "crash-tolerance: the injected mid-write kill produced "
                    "no skipped torn slot")
            # With --crash-master the rebuilt master loses the lease table
            # and reaps the victim via the orphan sweep instead of a lease
            # expiry; either path must have recovered its lock.
            reaped = (
                self.pool.master.lease_expiries.count > expiries_before
                or int(self.pool.master.lock_recoveries.total)
                > recoveries_before)
            if not reaped:
                self.violations.append(
                    "crash-tolerance: the dead client was never reaped "
                    "(no lease expiry, no recovered lock)")
        if self.crash_master:
            if self.pool.master.failovers.count - failovers_before < 1:
                self.violations.append(
                    "crash-tolerance: the master never completed a failover")
            if int(self.pool.master.journal_replayed.total) <= 0:
                self.violations.append(
                    "crash-tolerance: the rebuilt master replayed no "
                    "journal records")
            if not outcome.get("alloc_through_outage_ok"):
                self.violations.append(
                    "crash-tolerance: allocation did not survive the "
                    "master outage")

    # ------------------------------------------------------------------
    def prefetch_phase(self) -> None:
        """Prefetch/fault interaction: crash the home server while the
        hotness-driven prefetch pump has a batch in flight.

        The prefetch path is advisory-or-nothing: a crash may drop the
        in-flight batch on the floor, but it must never wedge the client's
        pump, poison the metadata cache, or surface corrupt bytes.  The
        phase hammers a fresh working set to the admission threshold,
        kills server 0 synchronously (so the spawned pump's RPC or the
        master's promotion copy is mid-flight), rides out the outage on
        the resilient profile, then audits a full read-back.
        """
        sim = self.sim
        client = self.pool.clients[0]
        master = self.pool.master
        payloads: Dict[int, bytes] = {}
        requests_before = master.prefetch_requests.count

        def run_phase(c):
            gaddrs = []
            for i in range(16):
                g = yield from c.gmalloc(self.value_size)
                data = self.encode(10_000 + i, i)
                yield from c.gwrite(g, data)
                payloads[g] = data
                gaddrs.append(g)
            yield from c.gsync()
            # Touch every object up to the admission threshold so the pump
            # spawns with a full nomination queue...
            for _ in range(self.config.admission_threshold):
                for g in gaddrs:
                    yield from c.gread(g, length=64)
            # ...then kill server 0 immediately: the pump (a separate
            # process) is now racing a dead home server.
            self.pool.servers[0].crash()
            yield sim.timeout(120_000)
            self.pool.servers[0].recover()
            master.on_server_recovered(0)
            yield sim.timeout(60_000)
            # Full read-back: every byte must still be a value we wrote.
            for g in gaddrs:
                try:
                    data = yield from c.gread(g)
                except (RetryableError, DeadlineExceededError):
                    self.ops_typed_failures += 1
                    continue
                if bytes(data) != payloads[g]:
                    self.violations.append(
                        f"prefetch-phase: gaddr {g:#x} read back corrupt "
                        f"bytes after crash (head={bytes(data[:16])!r})")
                self.ops_ok += 1

        self.pool.run(run_phase(client))
        # Let any straggling pump/promotion processes settle.
        self.sim.run(until=self.sim.now + 200_000)
        if master.prefetch_requests.count <= requests_before:
            self.violations.append(
                "prefetch-phase: no prefetch request ever reached the "
                "master (the pump never fired)")
        if client._prefetch_inflight:
            self.violations.append(
                "prefetch-phase: the client's prefetch pump is wedged "
                "(still marked in flight after quiesce)")

    # ------------------------------------------------------------------
    # Partition nemesis (the Jepsen loop)
    # ------------------------------------------------------------------
    def _demote_section_writes(self, client_name: str, key: int,
                               since_ns: int) -> None:
        """Reclassify a failed locked section's acked writes as ``info``.

        A proxy write acks at stage time; it is only *promised* once the
        section's release (which syncs first) completes.  When the section
        instead ends in a fence, the master may retire the client's ring
        and drop the staged frame — so the ack is indeterminate, exactly
        Jepsen's ``:info``: the write may or may not have taken effect.
        """
        hist = self.sim.history
        if hist is None:
            return
        for rec in reversed(hist.ops):
            if rec["t0"] < since_ns:
                break
            if (rec["client"] == client_name and rec.get("key") == key
                    and rec["op"] == "write" and rec["status"] == "ok"):
                rec["status"] = "info"
                rec["t1"] = None
                rec["error"] = "section-aborted"

    def audit_worker(self, index: int, client, keys: List[int],
                     rounds: int) -> Generator[Any, Any, None]:
        """Closed-loop lock-protected traffic for the partition phase.

        Every shared-key access rides a lock section — the consistency
        contract only promises linearizability for lock-protected ops
        (raw proxy writes are release-consistent: acked at stage time,
        drained later).  Write sections are lock / write / unlock (the
        write-unlock syncs first); read sections take the shared lock.
        A fence mid-section makes its writes indeterminate (see
        :meth:`_demote_section_writes`) and the worker re-attaches.
        """
        sim = self.sim
        lease = self.config.client_lease_ns
        rng = sim.rng.stream(f"chaos.nemesis.w{index}")
        versions = self._nemesis_versions
        for i in range(rounds):
            key = keys[int(rng.randrange(len(keys)))]
            gaddr = self.gaddrs[key]
            write = rng.random() < 0.5
            t_section = sim.now
            try:
                if write:
                    yield from client.glock(gaddr)
                    try:
                        # Version handout is inside the exclusive section,
                        # so versions are per-key monotone across clients.
                        version = versions[key] + 1
                        versions[key] = version
                        self.attempted[key].add(version)
                        yield from client.gwrite(
                            gaddr, self.encode(key, version))
                    finally:
                        yield from client.gunlock(gaddr)
                else:
                    yield from client.glock(gaddr, write=False)
                    try:
                        data = yield from client.gread(gaddr)
                        v = self.parse(key, bytes(data))
                        if v is None or v not in self.attempted[key]:
                            self.violations.append(
                                f"nemesis: key {key} read bytes of no "
                                f"attempted version (head={bytes(data[:24])!r})")
                    finally:
                        yield from client.gunlock(gaddr, write=False)
                self.ops_ok += 1
            except FencedError:
                self.ops_typed_failures += 1
                if write:
                    self._demote_section_writes(client.name, key, t_section)
                try:
                    # A fence is terminal across the whole control plane:
                    # re-attach every shard so the epochs converge again.
                    for s in range(max(1, client._num_shards)):
                        yield from client.reattach_master(s)
                except ClientError:
                    yield sim.timeout(lease // 2)
            except ClientError:
                self.ops_typed_failures += 1
                if write:
                    self._demote_section_writes(client.name, key, t_section)
            yield sim.timeout(2_000 + int(rng.randrange(4_000)))

    def _nemesis_round(self, plan: FaultPlan, extra_procs: List,
                       keys: List[int], rounds: int, tail_ns: int,
                       tag: str) -> None:
        """One Jepsen iteration: arm the nemesis, run workers through it,
        let the schedule (and any straggling recovery) play out, disarm."""
        injector = self.pool.inject_faults(
            plan, rng_name=f"faults.nemesis.{tag}")
        workers = [self.audit_worker(i, c, keys, rounds)
                   for i, c in enumerate(self.pool.clients)]
        self.pool.run(*(list(extra_procs) + workers))
        self.sim.run(until=max(self.sim.now, plan.horizon_ns + tail_ns))
        injector.uninstall()

    def partition_phase(self) -> None:
        """Three nemesis rounds against the term-fenced control plane:

        1. **Split-brain attempt**: partition the master away from
           everything, promote the standby mid-partition, heal — the old
           master must end up deposed (its first post-heal fence attempt
           hits the journal's term fence), never having fenced a client
           or acked an allocation after the standby's term claim.
        2. **Heal mid-failover**: crash the *current* master inside a
           partition and start its recovery before the heal; recovery must
           ride out the unreachable journal and complete with a higher term.
        3. **Asymmetric control-plane split**: clients lose the master but
           keep the server data plane; ops complete degraded or fail typed.

        With ``check_linearizable`` the whole phase is recorded and the
        history is audited per key (register linearizability + lock-model
        mutual exclusion and epoch monotonicity).
        """
        sim = self.sim
        pool = self.pool
        lease = self.config.client_lease_ns
        recorder = None
        if self.check_linearizable:
            from repro.check import HistoryRecorder
            recorder = HistoryRecorder(sim).install()
            self.history_recorder = recorder

        keys = list(range(min(8, self.records)))
        # Versions start far above anything the main soak wrote, so the
        # durability parse audit stays discriminating across phases.
        self._nemesis_versions = {k: 1_000_000 for k in keys}
        rounds = 10 if self.smoke else 24
        names = (["master", "master1"]
                 + [f"server{sid}" for sid in sorted(pool.servers)]
                 + [c.name for c in pool.clients])

        def others(master_name: str):
            return tuple(n for n in names if n != master_name)

        # --- Round 1: split-brain attempt -----------------------------
        old_master = pool.master
        start = sim.now + 10_000
        plan = FaultPlan.of(Partition(
            start_ns=start, end_ns=start + 4 * lease,
            group_a=(old_master.node.name,),
            group_b=others(old_master.node.name)))

        def promoter():
            yield sim.timeout(start + lease - sim.now)
            pool.promote_standby(rebuild=True)
            # Bounded deterministic wait for the term claim to land.
            for _ in range(64):
                if not pool.master._recovering:
                    return
                yield sim.timeout(lease // 8)

        # Tail: the old master's phi crosses threshold ~6 leases after
        # heartbeats stop; its next sweep then attempts a fence, hits the
        # journal's term fence, and deposes itself.
        self._nemesis_round(plan, [promoter()], keys, rounds,
                            tail_ns=5 * lease, tag="splitbrain")
        if pool.master is old_master or pool.master.term <= old_master.term:
            self.violations.append(
                "nemesis: standby promotion did not supersede the old "
                "master's term")
        if not old_master._deposed:
            self.violations.append(
                "nemesis: the partitioned old master was never deposed "
                "after the heal (split-brain window left open)")

        # --- Round 2: heal mid-failover -------------------------------
        cur = pool.master
        failovers_before = cur.failovers.count
        plan = FaultPlan.heal_mid_failover(
            at_ns=sim.now + 10_000, others=others(cur.node.name),
            master=cur.node.name, partition_ns=3 * lease,
            crash_after_ns=lease // 2, recover_after_ns=lease, rebuild=True)
        self._nemesis_round(plan, [], keys, rounds,
                            tail_ns=2 * lease, tag="healmid")
        if cur.failovers.count <= failovers_before:
            self.violations.append(
                "nemesis: recovery started mid-partition never completed "
                "a failover after the heal")

        # --- Round 3: asymmetric control-plane split ------------------
        cur = pool.master
        plan = FaultPlan.control_plane_split(
            at_ns=sim.now + 10_000,
            clients=tuple(c.name for c in pool.clients),
            master=cur.node.name, duration_ns=3 * lease)
        self._nemesis_round(plan, [], keys, rounds,
                            tail_ns=lease, tag="ctrlsplit")

        # --- Check ----------------------------------------------------
        if recorder is not None:
            recorder.uninstall()
            from repro.check import check_history
            result = check_history(recorder.ops)
            self.check_result = result
            self.linearizable = result.ok
            m = sim.metrics
            m.counter("check.histories").add()
            m.counter("check.history_ops").add(len(recorder.ops))
            if sim.tracer is not None:
                trace(sim, "check", "history audited",
                      ops=len(recorder.ops), ok=result.ok,
                      violations=len(result.violations))
            if not result.ok:
                m.counter("check.violations").add(len(result.violations))
                for v in result.violations[:5]:
                    self.violations.append(f"linearizability-check: {v}")

    def shard_phase(self) -> None:
        """Kill one master shard mid-YCSB, one round per shard.

        The audit workers keep hammering lock-protected keys while the
        victim shard is down and through its journal rebuild; every other
        shard must keep serving unperturbed (per-shard terms and leases),
        and the per-shard failover must not lose a committed version or
        admit a stale one.  With ``check_linearizable`` the whole phase is
        recorded and audited exactly like the partition nemesis.
        """
        sim = self.sim
        pool = self.pool
        lease = self.config.client_lease_ns
        recorder = None
        if self.check_linearizable:
            from repro.check import HistoryRecorder
            recorder = HistoryRecorder(sim).install()
            self.history_recorder = recorder

        keys = list(range(min(8, self.records)))
        # Versions start far above anything the main soak wrote, so the
        # durability parse audit stays discriminating across phases.
        self._nemesis_versions = {k: 2_000_000 for k in keys}
        rounds = 10 if self.smoke else 24
        failovers_before = pool.master.failovers.count
        # Secondaries first, then shard 0 (the hotness aggregator): the
        # audit must hold whichever shard is the one that dies.
        victims = list(range(1, self.shards)) + [0]
        for victim in victims:
            t0 = sim.now + 10_000
            plan = FaultPlan.of(
                MasterCrash(at_ns=t0, shard=victim),
                MasterRecover(at_ns=t0 + 3 * lease, rebuild=True,
                              shard=victim))
            self._nemesis_round(plan, [], keys, rounds,
                                tail_ns=3 * lease, tag=f"shardkill{victim}")
        if pool.master.failovers.count < failovers_before + len(victims):
            self.violations.append(
                "shard-kill: not every killed shard completed a journal "
                "rebuild failover")

        if recorder is not None:
            recorder.uninstall()
            from repro.check import check_history
            result = check_history(recorder.ops)
            self.check_result = result
            self.linearizable = result.ok
            m = sim.metrics
            m.counter("check.histories").add()
            m.counter("check.history_ops").add(len(recorder.ops))
            if sim.tracer is not None:
                trace(sim, "check", "shard-kill history audited",
                      ops=len(recorder.ops), ok=result.ok,
                      violations=len(result.violations))
            if not result.ok:
                m.counter("check.violations").add(len(result.violations))
                for v in result.violations[:5]:
                    self.violations.append(f"linearizability-check: {v}")

    # ------------------------------------------------------------------
    # Mid-commit kill nemesis (the transaction phase)
    # ------------------------------------------------------------------
    _KILL_POINTS = ("pre-intent", "post-intent", "mid-apply",
                    "pre-clear", "post-clear")

    def _arm_mid_commit_kill(self, victim, point: str, nth: int,
                             also_master: bool = False) -> Dict[str, Any]:
        """Arm the victim's commit hook to crash the ``nth`` time one of
        its commits passes ``point`` — and optionally take the master
        down in the same instant, so the intent must survive into the
        rebuilt master's orphan sweep instead of the lease sweep."""
        state = {"n": 0, "fired": False}

        def hook(p: str, txn) -> None:
            if p != point:
                return
            state["n"] += 1
            if state["n"] < nth:
                return
            state["fired"] = True
            victim.txn.commit_hook = None
            victim.crash()
            self.sim.metrics.counter("faults.client_crashes").add()
            if also_master:
                self.pool.master.crash()
                self.sim.metrics.counter("faults.master_crashes").add()
            if self.sim.tracer is not None:
                trace(self.sim, "fault", "mid-commit kill", point=p,
                      txn=txn.id, master=also_master)
            raise _MidCommitKill(point)

        victim.txn.commit_hook = hook
        return state

    def _bank_worker(self, client, gaddrs: List[int], spec: BankSpec,
                     count: int, rng_tag: str) -> Generator[Any, Any, None]:
        """Closed-loop random transfers; rides out fences and aborts."""
        sim = self.sim
        lease = self.config.client_lease_ns
        rng = sim.rng.stream(f"chaos.txn.{rng_tag}")

        def proc(sim):
            for _ in range(count):
                i = rng.randrange(spec.accounts)
                j = rng.randrange(spec.accounts)
                if i == j:
                    j = (j + 1) % spec.accounts
                amount = 1 + rng.randrange(spec.max_transfer)
                try:
                    yield from bank_transfer(
                        client, gaddrs[i], gaddrs[j], amount)
                    self.ops_ok += 1
                except _MidCommitKill:
                    return  # this worker just died mid-commit
                except FencedError:
                    self.ops_typed_failures += 1
                    try:
                        yield from client.reattach_master()
                    except ClientError:
                        yield sim.timeout(lease // 2)
                except ClientError:
                    # Wait-die deaths past the retry budget, lock
                    # timeouts, aborts on an unreachable server — all
                    # typed, none fatal to the worker.
                    self.ops_typed_failures += 1
                yield sim.timeout(1_000 + int(rng.randrange(3_000)))

        return proc(sim)

    def _rejoin(self, client) -> Generator[Any, Any, None]:
        sim = self.sim
        lease = self.config.client_lease_ns

        def proc(sim):
            for _ in range(8):
                try:
                    yield from client.reattach_master()
                    return
                except ClientError:
                    yield sim.timeout(lease // 2)

        return proc(sim)

    def _bank_audit(self, gaddrs: List[int], spec: BankSpec,
                    tag: str) -> None:
        """Byte-level conservation read-back: a torn transfer (one leg
        applied, the other lost with the client) breaks the total."""
        sim = self.sim
        lease = self.config.client_lease_ns
        client = self.pool.clients[0]
        out: Dict[str, int] = {}

        def audit(sim):
            for _ in range(6):
                try:
                    balances = yield from bank_read_balances(client, gaddrs)
                    out["total"] = bank_total(balances)
                    return
                except FencedError:
                    try:
                        yield from client.reattach_master()
                    except ClientError:
                        yield sim.timeout(lease)
                except ClientError:
                    yield sim.timeout(lease)

        self.pool.run(audit(sim))
        if out.get("total") != spec.expected_total:
            self.bank_total_ok = False
            self.violations.append(
                f"txn-phase {tag}: conserved total {out.get('total')} != "
                f"{spec.expected_total} (a transfer became visible torn)")
        elif self.bank_total_ok is None:
            self.bank_total_ok = True

    def txn_phase(self) -> None:
        """Crash-atomic transactions under a mid-commit kill nemesis.

        Bank-transfer rounds (conserved-total invariant) with a victim
        client killed at seeded points across the whole commit window:
        before the intent lands (clean rollback — buffered writes die
        with the client), right after the commit point, between the
        per-server applies (the torn case the intent record exists for),
        and around the intent clear.  The lease sweep must roll every
        post-commit-point intent forward before force-unlocking.
        Master-crash rounds kill the client AND the master in the same
        instant: the on-NVM intent must then survive into the rebuilt
        master's orphan sweep.  With ``check_serializable`` the whole
        phase is recorded and audited for atomicity + strict
        serializability.
        """
        sim = self.sim
        pool = self.pool
        lease = self.config.client_lease_ns
        recorder = None
        if self.check_serializable and sim.history is None:
            from repro.check import HistoryRecorder
            recorder = HistoryRecorder(sim).install()
            self.txn_history_recorder = recorder

        spec = BankSpec(accounts=8, initial_balance=1000, max_transfer=50)
        holder: Dict[str, List[int]] = {}

        def setup(sim):
            holder["gaddrs"] = yield from bank_setup(pool.clients[0], spec)

        pool.run(setup(sim))
        gaddrs = holder["gaddrs"]

        rng = sim.rng.stream("chaos.txn.nemesis")
        victim = pool.clients[2]
        others = [pool.clients[0], pool.clients[1]]
        per_round = 4 if self.smoke else 8

        # Round 0: pure contention, no faults — wait-die and the
        # serializability of healthy concurrent transfers.
        pool.run(*[self._bank_worker(c, gaddrs, spec, per_round + 4,
                                     f"warm.{c.name}")
                   for c in pool.clients])
        self._bank_audit(gaddrs, spec, "warmup")

        # Client-kill rounds: cycle through every commit-window point.
        points = self._KILL_POINTS[:3] if self.smoke else self._KILL_POINTS
        for r, point in enumerate(points):
            nth = 1 + rng.randrange(2)
            state = self._arm_mid_commit_kill(victim, point, nth)
            procs = [self._bank_worker(victim, gaddrs, spec, per_round,
                                       f"kill{r}.victim")]
            procs += [self._bank_worker(c, gaddrs, spec, per_round // 2,
                                        f"kill{r}.{c.name}")
                      for c in others]
            pool.run(*procs)
            victim.txn.commit_hook = None
            if state["fired"]:
                # Let the lease lapse; the sweep consults the intent and
                # rolls forward past the commit point, back otherwise.
                sim.run(until=sim.now + 5 * lease)
                victim.revive()
                pool.run(self._rejoin(victim))
            self._bank_audit(gaddrs, spec, f"client-kill@{point}")

        # Master-crash rounds: the lease table dies with the master, so
        # the rebuilt master's orphan sweep is the only recovery path.
        master_points = (("post-intent",) if self.smoke
                         else ("post-intent", "mid-apply"))
        for r, point in enumerate(master_points):
            nth = 1 + rng.randrange(2)
            state = self._arm_mid_commit_kill(victim, point, nth,
                                              also_master=True)
            procs = [self._bank_worker(victim, gaddrs, spec, per_round,
                                       f"mkill{r}.victim")]
            procs += [self._bank_worker(c, gaddrs, spec, per_round // 2,
                                        f"mkill{r}.{c.name}")
                      for c in others]
            pool.run(*procs)
            victim.txn.commit_hook = None
            if state["fired"]:
                sim.run(until=sim.now + 2 * lease)
                master = pool.master
                master.recover()
                sim.spawn(master.recovery_process(rebuild=True),
                          name="master.recovery")
                # Term claim + journal replay + orphan sweep (which rolls
                # the surviving intent forward before force-unlocking).
                sim.run(until=sim.now + 6 * lease)
                victim.revive()
                pool.run(self._rejoin(victim))
            self._bank_audit(gaddrs, spec, f"master-crash@{point}")

        if recorder is not None:
            recorder.uninstall()
            from repro.check import check_txn_history
            result = check_txn_history(recorder.ops)
            self.txn_check_result = result
            self.serializable = result.ok
            m = sim.metrics
            m.counter("check.txn_histories").add()
            m.counter("check.txn_history_ops").add(len(recorder.ops))
            if sim.tracer is not None:
                trace(sim, "check", "txn history audited",
                      ops=len(recorder.ops), ok=result.ok,
                      violations=len(result.violations))
            if not result.ok:
                m.counter("check.violations").add(len(result.violations))
                for v in result.violations[:5]:
                    self.violations.append(f"serializability-check: {v}")

    # ------------------------------------------------------------------
    def fanout_phase(self) -> None:
        """High-fanout crash reclamation: N clients hammer the control
        plane (alloc/write/read/free, one control RPC per alloc and free)
        while a quarter of them are killed mid-run under credit pressure.

        Runs in its own simulator/pool — the soak's 2-3-client world can't
        express a 32-client fanout, and fresh node names avoid clashing
        with the shared sim.  The audit is the shared-receive-pool
        accounting: after the lease sweep fences every victim, each pool's
        outstanding slots must equal its live serve loops exactly (one
        posted receive per live QP, zero for parked ones) — a victim whose
        in-flight slot never returned would show up as a leak here, and
        enough leaks wedge the pool for every surviving client.
        """
        n = self.fanout_clients
        config = soak_config(self.smoke, kill_clients=True)
        sim = Simulator(seed=self.seed + 104729)
        pool = GengarPool.build(sim, num_servers=4, num_clients=n,
                                config=config, dram=TEST_DRAM, nvm=TEST_NVM)
        lease = config.client_lease_ns
        t0 = sim.now
        victims = pool.clients[::4][:max(1, n // 4)]  # every 4th client
        injector = pool.inject_faults(
            FaultPlan.of(*[
                ClientCrash(at_ns=t0 + 20_000 + 3_000 * i, client=v.name)
                for i, v in enumerate(victims)
            ]),
            rng_name="faults.fanout")
        ops = 12 if self.smoke else 30
        value = b"\xe5" * 128
        typed = {"count": 0}

        def worker(client):
            for _ in range(ops):
                if client.crashed:
                    return  # the crash killed this process with its client
                try:
                    gaddr = yield from client.gmalloc(256)
                    yield from client.gwrite(gaddr, value)
                    data = yield from client.gread(gaddr, length=len(value))
                    if not client.crashed and bytes(data) != value:
                        self.violations.append(
                            f"fanout: {client.name} read back wrong bytes")
                    yield from client.gfree(gaddr)
                except (DeadlineExceededError, RetryableError):
                    typed["count"] += 1  # congestion on a survivor: fine
                except ClientError:
                    if client.crashed or client.fenced:
                        return
                    raise

        pool.run(*[worker(c) for c in pool.clients])
        # Let every victim's lease lapse and the fence sweep run the
        # reclamation path (master + per-server retire/reclaim).
        sim.run(until=sim.now + 6 * lease)
        injector.uninstall()

        rpcs = [("master", pool.master.rpc)]
        rpcs += [(f"server{sid}", s.rpc)
                 for sid, s in sorted(pool.servers.items())]
        pools: Dict[str, Any] = {}
        for label, rpc in rpcs:
            stats = rpc.pool_stats()
            pools[label] = stats
            live = stats["qps"] - stats["parked"]
            if stats["outstanding"] != live:
                self.violations.append(
                    f"fanout: {label} leaked receive slots: outstanding "
                    f"{stats['outstanding']} != live loops {live}")
        reclaims = sum(rpc.reclaims.count for _, rpc in rpcs)
        if reclaims < len(victims):
            self.violations.append(
                f"fanout: only {reclaims} slot reclaims for "
                f"{len(victims)} dead clients")
        grows = sum(p["grows"] for p in pools.values())
        if grows < 1:
            self.violations.append(
                f"fanout: no pool grew under a {n}-client fanout — the "
                f"elastic path never engaged")
        self.fanout_report = {
            "clients": n,
            "victims": len(victims),
            "reclaims": reclaims,
            "typed_failures": typed["count"],
            "pools": pools,
        }

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        self.load()
        t0 = self.sim.now
        plan = soak_plan(t0, smoke=self.smoke)
        injector = self.pool.inject_faults(plan)

        modes = {0: "burst", 1: "rr" if not self.smoke else "ycsb"}
        # Workers stay on the first two clients; with --kill-clients the
        # third is reserved as the crash-tolerance phase's victim.
        worker_clients = self.pool.clients[:2]
        workers = [
            self.worker(i, worker_clients[i % len(worker_clients)],
                        mode=modes.get(i, "ycsb"))
            for i in range(self.num_workers)
        ]
        self.pool.run(*workers)
        # Let any still-pending plan actions (late recovery) play out.
        self.sim.run(until=max(self.sim.now, plan.horizon_ns + 100_000))
        injector.uninstall()
        self.verify()
        if self.kill_clients or self.crash_master:
            self.crash_tolerance_phase()
        if self.prefetch:
            self.prefetch_phase()
        if self.nemesis:
            self.partition_phase()
        if self.shards > 1:
            self.shard_phase()
        if self.kill_mid_commit:
            self.txn_phase()
        if self.fanout_clients:
            self.fanout_phase()

        m = self.sim.metrics
        counters = {
            name: m.counter(f"pool.{name}").count
            for name in ("retries", "failovers",
                         "degraded_reads", "degraded_writes",
                         "deadline_misses", "proxy_writes", "direct_writes")
        }
        counters["lost_staged_writes"] = int(
            m.counter("pool.lost_staged_writes").total)
        counters["fabric_dropped"] = m.counter("fabric.dropped").count
        counters["faults_crashes"] = m.counter("faults.crashes").count
        counters["faults_recoveries"] = m.counter("faults.recoveries").count
        counters["faults_stalls"] = m.counter("faults.stalls").count
        counters["faults_client_crashes"] = m.counter(
            "faults.client_crashes").count
        counters["faults_master_crashes"] = m.counter(
            "faults.master_crashes").count
        counters["faults_torn_injected"] = m.counter(
            "faults.torn_injected").count
        master = self.pool.master
        counters["lease_renewals"] = master.lease_renewals.count
        counters["lease_expiries"] = master.lease_expiries.count
        counters["lock_recoveries"] = int(master.lock_recoveries.total)
        counters["fence_rejections"] = m.counter(
            "pool.fence_rejections").count
        counters["torn_slot_skips"] = sum(
            s.torn_skipped.count for s in self.pool.servers.values())
        counters["master_failovers"] = master.failovers.count
        counters["journal_replayed"] = int(master.journal_replayed.total)
        counters["prefetch_requests"] = master.prefetch_requests.count
        counters["prefetch_promotions"] = int(
            master.prefetch_promotions.total)
        counters["prefetches"] = int(m.counter("pool.prefetches").total)
        # Partition-tolerance counters (all zero unless --nemesis armed
        # the term-fenced control plane).  The master.* metrics live in
        # the shared registry, so one read covers both master instances.
        counters["suspected_clients"] = m.counter(
            "master.suspected_clients").count
        counters["term_claims"] = m.counter("master.term_claims").count
        counters["depositions"] = m.counter("master.depositions").count
        counters["master_term"] = master.term
        counters["stale_term_rejections"] = m.counter(
            "pool.stale_term_rejections").count
        counters["partition_suspected"] = m.counter(
            "pool.partition_suspected").count
        counters["lease_lapses"] = m.counter("pool.lease_lapses").count
        # Transaction counters (all zero unless --kill-mid-commit armed
        # the txn feature and its bank phase).
        counters["txn_begins"] = m.counter("pool.txn_begins").count
        counters["txn_commits"] = m.counter("pool.txn_commits").count
        counters["txn_aborts"] = m.counter("pool.txn_aborts").count
        counters["txn_wait_die"] = m.counter("pool.txn_wait_die").count
        counters["txn_handoffs"] = m.counter("pool.txn_handoffs").count
        counters["txn_rolled_forward"] = m.counter(
            "master.txn_rolled_forward").count
        # Sharded-control-plane counters (all zero at one shard).
        counters["shard_redirects"] = m.counter("pool.shard_redirects").count
        counters["txn_cross_shard_commits"] = m.counter(
            "pool.txn_cross_shard_commits").count
        return {
            "seed": self.seed,
            "smoke": self.smoke,
            "kill_clients": self.kill_clients,
            "crash_master": self.crash_master,
            "prefetch": self.prefetch,
            "nemesis": self.nemesis,
            "kill_mid_commit": self.kill_mid_commit,
            "shards": self.shards,
            "virtual_end_ns": self.sim.now,
            "ops_ok": self.ops_ok,
            "ops_typed_failures": self.ops_typed_failures,
            "lost_reports": sum(len(c.fault_log) for c in self.pool.clients),
            "tainted_keys": len(self.tainted),
            "linearizable": self.linearizable,
            "history_ops": (len(self.history_recorder.ops)
                            if self.history_recorder is not None else 0),
            "serializable": self.serializable,
            "bank_total_ok": self.bank_total_ok,
            "txn_history_ops": (len(self.txn_history_recorder.ops)
                                if self.txn_history_recorder is not None
                                else 0),
            "fanout": self.fanout_report,
            "counters": counters,
            "violations": self.violations,
        }


def run_soak(seed: int = 7, smoke: bool = False,
             dump_trace: bool = False, kill_clients: bool = False,
             crash_master: bool = False, prefetch: bool = False,
             nemesis: bool = False, check_linearizable: bool = False,
             kill_mid_commit: bool = False,
             check_serializable: bool = False,
             shards: int = 1, fanout_clients: int = 0,
             trace_out: Optional[str] = None,
             span_log: Optional[str] = None,
             history_out: Optional[str] = None,
             counterexample_out: Optional[str] = None) -> Dict[str, Any]:
    """One full soak; returns the audit report (see :class:`ChaosSoak`)."""
    soak = ChaosSoak(seed=seed, smoke=smoke, dump_trace=dump_trace,
                     kill_clients=kill_clients, crash_master=crash_master,
                     prefetch=prefetch, nemesis=nemesis,
                     check_linearizable=check_linearizable,
                     kill_mid_commit=kill_mid_commit,
                     check_serializable=check_serializable,
                     shards=shards, fanout_clients=fanout_clients,
                     record_spans=bool(trace_out or span_log))
    report = soak.run()
    if history_out:
        dumper = soak.history_recorder or soak.txn_history_recorder
        if dumper is not None:
            n = dumper.dump_jsonl(history_out)
            report["history_file"] = history_out
            print(f"wrote {history_out}: {n} recorded ops", file=sys.stderr)
    failed_check = next(
        (r for r in (soak.check_result, soak.txn_check_result)
         if r is not None and not r.ok), None)
    if failed_check is not None and counterexample_out:
        n = failed_check.dump_counterexample(counterexample_out)
        report["counterexample_file"] = counterexample_out
        print(f"wrote {counterexample_out}: minimal counterexample "
              f"({n} ops)", file=sys.stderr)
    if dump_trace and soak.sim.tracer is not None:
        report["trace"] = soak.sim.tracer.render(limit=200)
    if soak.recorder is not None:
        from repro import obs
        if trace_out:
            with open(trace_out, "w") as fh:
                json.dump(obs.chrome_trace(soak.recorder), fh)
        if span_log:
            with open(span_log, "w") as fh:
                fh.write(obs.spans_jsonl(soak.recorder))
        report["spans_recorded"] = soak.recorder.recorded
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos soak: YCSB-B under a deterministic fault plan")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast variant (CI-friendly)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here")
    parser.add_argument("--dump-trace", action="store_true",
                        help="record fault/retry/failover trace and dump it")
    parser.add_argument("--trace-out", type=str, default=None,
                        help="record op spans and write Chrome trace JSON "
                             "here (load in Perfetto)")
    parser.add_argument("--span-log", type=str, default=None,
                        help="write the raw span log as JSONL here")
    parser.add_argument("--kill-clients", action="store_true",
                        help="add the crash-tolerance phase: kill a "
                             "lock-holding client mid-write (leases, "
                             "fencing, and torn-slot detection on)")
    parser.add_argument("--crash-master", action="store_true",
                        help="add a master crash + journal rebuild to the "
                             "crash-tolerance phase")
    parser.add_argument("--prefetch", action="store_true",
                        help="add the prefetch fault-interaction phase: "
                             "crash the home server while a hotness-driven "
                             "prefetch batch is in flight")
    parser.add_argument("--nemesis", action="store_true",
                        help="add the partition nemesis phase: split-brain "
                             "attempt with standby promotion, heal-mid-"
                             "failover, and an asymmetric control-plane "
                             "split (terms + failure detector on)")
    parser.add_argument("--check-linearizable", action="store_true",
                        help="record the nemesis phase as a Jepsen-style "
                             "op history and audit it per key (implies "
                             "--nemesis)")
    parser.add_argument("--kill-mid-commit", action="store_true",
                        help="add the transaction phase: bank transfers "
                             "with clients (and the master) killed at "
                             "seeded points inside the commit window, "
                             "audited for conserved totals")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard the control plane across N masters and "
                             "add the shard-kill phase: each shard is "
                             "crashed mid-YCSB and must journal-rebuild "
                             "while the others keep serving (combine with "
                             "--check-linearizable to audit the phase)")
    parser.add_argument("--clients", type=int, default=0,
                        help="add the high-fanout phase: N clients hammer "
                             "the control plane in a fresh pool while a "
                             "quarter of them are killed mid-run; audits "
                             "the elastic RPC receive pools for leaked "
                             "slots after the lease sweep reclaims the "
                             "victims")
    parser.add_argument("--check-serializable", action="store_true",
                        help="record the transaction phase and audit it "
                             "for atomicity + strict serializability "
                             "(implies --kill-mid-commit)")
    parser.add_argument("--history-out", type=str, default=None,
                        help="write the recorded op history as JSONL here "
                             "(replayable via `python -m repro check`)")
    parser.add_argument("--counterexample-out", type=str, default=None,
                        help="on a check failure, write the minimal "
                             "counterexample history here (the CI artifact)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice and require identical results")
    args = parser.parse_args(argv)

    report = run_soak(seed=args.seed, smoke=args.smoke,
                      dump_trace=args.dump_trace,
                      kill_clients=args.kill_clients,
                      crash_master=args.crash_master,
                      prefetch=args.prefetch, nemesis=args.nemesis,
                      check_linearizable=args.check_linearizable,
                      kill_mid_commit=args.kill_mid_commit,
                      check_serializable=args.check_serializable,
                      shards=args.shards, fanout_clients=args.clients,
                      trace_out=args.trace_out, span_log=args.span_log,
                      history_out=args.history_out,
                      counterexample_out=args.counterexample_out)
    if args.check_determinism:
        second = run_soak(seed=args.seed, smoke=args.smoke,
                          kill_clients=args.kill_clients,
                          crash_master=args.crash_master,
                          prefetch=args.prefetch, nemesis=args.nemesis,
                          check_linearizable=args.check_linearizable,
                          kill_mid_commit=args.kill_mid_commit,
                          check_serializable=args.check_serializable,
                          shards=args.shards, fanout_clients=args.clients)
        keys = ["virtual_end_ns", "ops_ok", "ops_typed_failures",
                "lost_reports", "tainted_keys", "linearizable",
                "history_ops", "serializable", "bank_total_ok",
                "txn_history_ops", "fanout", "counters", "violations"]
        mismatched = [k for k in keys if report[k] != second[k]]
        if mismatched:
            report["violations"].append(
                f"non-deterministic fields across identical runs: {mismatched}")
        else:
            report["determinism"] = "identical across two runs"

    if args.out:
        payload = {k: v for k, v in report.items() if k != "trace"}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)

    ok = not report["violations"]
    print(f"chaos soak seed={args.seed} smoke={args.smoke}: "
          f"{'PASS' if ok else 'FAIL'}")
    print(f"  virtual time: {report['virtual_end_ns'] / 1e6:.3f} ms, "
          f"ops ok: {report['ops_ok']}, "
          f"typed failures: {report['ops_typed_failures']}")
    if report["linearizable"] is not None:
        print(f"  linearizable: {report['linearizable']} "
              f"({report['history_ops']} recorded ops)")
    if report["serializable"] is not None:
        print(f"  serializable: {report['serializable']} "
              f"({report['txn_history_ops']} recorded ops)")
    if report["bank_total_ok"] is not None:
        print(f"  bank conservation: "
              f"{'PASS' if report['bank_total_ok'] else 'FAIL'}")
    if report.get("fanout"):
        fo = report["fanout"]
        print(f"  fanout: {fo['clients']} clients, {fo['victims']} killed, "
              f"{fo['reclaims']} slot reclaims, "
              f"master pool {fo['pools']['master']['capacity']} slots "
              f"({fo['pools']['master']['grows']} grows)")
    for name, value in sorted(report["counters"].items()):
        print(f"  {name}: {value}")
    if "determinism" in report:
        print(f"  determinism: {report['determinism']}")
    for v in report["violations"]:
        print(f"  VIOLATION: {v}", file=sys.stderr)
    if not ok and report.get("trace"):
        print("--- fault timeline (tail) ---", file=sys.stderr)
        print(report["trace"], file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
