"""Discrete-event simulation kernel.

This subpackage provides the deterministic, nanosecond-resolution event loop
that every hardware and protocol model in the reproduction runs on.  It is a
small, dependency-free engine in the style of SimPy:

* :class:`~repro.sim.kernel.Simulator` — the event loop and clock.
* :class:`~repro.sim.primitives.Event` / :class:`~repro.sim.primitives.Timeout`
  — waitable primitives yielded by process generators.
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.FifoChannel` — contention primitives.
* :mod:`~repro.sim.stats` — streaming metrics (counters, histograms).
* :mod:`~repro.sim.rng` — named deterministic random streams.

Processes are plain Python generators that ``yield`` waitables; the kernel
resumes them when the waitable fires.  All simulated time is kept as integer
nanoseconds so long runs never accumulate floating-point drift.
"""

from repro.sim.kernel import Simulator, Process, SimulationError
from repro.sim.primitives import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.resources import FifoChannel, Resource, Store, TokenBucket
from repro.sim.rng import RngRegistry
from repro.sim.stats import Counter, Histogram, MetricRegistry, TimeWeightedStat
from repro.sim.sync import Barrier, Mutex, Semaphore
from repro.sim.trace import TraceEvent, Tracer, trace
from repro.sim.units import KIB, MIB, GIB, US, MS, SEC, gbps_to_bytes_per_ns

__all__ = [
    "Simulator",
    "Process",
    "SimulationError",
    "Event",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "FifoChannel",
    "TokenBucket",
    "RngRegistry",
    "Barrier",
    "Semaphore",
    "Mutex",
    "Tracer",
    "TraceEvent",
    "trace",
    "Counter",
    "Histogram",
    "TimeWeightedStat",
    "MetricRegistry",
    "KIB",
    "MIB",
    "GIB",
    "US",
    "MS",
    "SEC",
    "gbps_to_bytes_per_ns",
]
