"""Named deterministic random streams.

Every stochastic component in the simulation (workload generators, jittered
timers, placement policies) draws from its *own* named stream derived from
the simulator seed.  Adding a new consumer therefore never perturbs the draws
seen by existing ones — runs stay reproducible as the codebase grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A family of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived by hashing the
    registry seed together with the name, so streams are statistically
    independent and stable across runs and machines.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self.derive_seed(name))
            self._streams[name] = rng
        return rng

    def derive_seed(self, name: str) -> int:
        """Stable 64-bit sub-seed for ``name`` under this registry's seed."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(self.derive_seed(f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
