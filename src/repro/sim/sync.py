"""Process-level synchronization utilities.

These coordinate *simulation processes inside one node* (worker pools,
phase barriers); they are infinitely fast compared with the pool's
distributed locks, which coordinate *clients across machines* through RDMA
atomics (:mod:`repro.core.consistency`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator

from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Barrier:
    """A reusable N-party barrier.

    The ``parties``-th arrival releases everyone and resets the barrier for
    the next round.  Arrivals get the round index they completed.
    """

    def __init__(self, sim: "Simulator", parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._round = 0
        self._waiting = 0
        self._gate = sim.event(f"{name}.r0")

    @property
    def waiting(self) -> int:
        """Processes currently blocked at the barrier."""
        return self._waiting

    def wait(self) -> Generator[Any, Any, int]:
        """Arrive; resumes when all parties have arrived.  Returns the round."""
        this_round = self._round
        self._waiting += 1
        if self._waiting == self.parties:
            gate, self._gate = self._gate, self.sim.event(
                f"{self.name}.r{this_round + 1}"
            )
            self._waiting = 0
            self._round += 1
            gate.succeed(this_round)
            return this_round
        gate = self._gate
        result = yield gate
        return result


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, sim: "Simulator", value: int = 1, name: str = "sem"):
        if value < 0:
            raise ValueError("initial value must be non-negative")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Generator[Any, Any, None]:
        """Take one unit, blocking while the count is zero."""
        if self._value > 0:
            self._value -= 1
            return
        waiter = self.sim.event(f"{self.name}.wait")
        self._waiters.append(waiter)
        yield waiter

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(None)
                return
        self._value += 1

    def held(self) -> "_SemaphoreContext":
        """Context-manager-style helper::

            with (yield from sem.held()):
                ...critical section...
        """
        return _SemaphoreContext(self)


class _SemaphoreContext:
    def __init__(self, sem: Semaphore):
        self.sem = sem
        self._entered = False

    def __iter__(self):  # supports `yield from sem.held()`
        yield from self.sem.acquire()
        self._entered = True
        return self

    def __enter__(self) -> "_SemaphoreContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._entered:
            self._entered = False
            self.sem.release()


class Mutex(Semaphore):
    """A binary semaphore with lock/unlock vocabulary."""

    def __init__(self, sim: "Simulator", name: str = "mutex"):
        super().__init__(sim, value=1, name=name)

    def lock(self) -> Generator[Any, Any, None]:
        yield from self.acquire()

    def unlock(self) -> None:
        if self._value > 0 and not self._waiters:
            raise RuntimeError(f"unlock of unlocked mutex {self.name!r}")
        self.release()
