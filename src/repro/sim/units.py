"""Time and size unit helpers.

The kernel clock ticks in integer nanoseconds; these constants keep model
code readable (``yield sim.timeout(2 * US)``) and conversions explicit.
"""

# Time units, expressed in nanoseconds.
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# Size units, expressed in bytes.
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a link rate in gigabits per second to bytes per nanosecond.

    Example: a 100 Gbps link moves 12.5 bytes per nanosecond.
    """
    return gbps / 8.0


def gib_per_s_to_bytes_per_ns(gib_per_s: float) -> float:
    """Convert a memory bandwidth in GiB/s to bytes per nanosecond."""
    return gib_per_s * GIB / SEC


def bytes_per_ns_to_gib_per_s(bytes_per_ns: float) -> float:
    """Convert bytes/ns back to GiB/s (for reports)."""
    return bytes_per_ns * SEC / GIB


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds (for reports)."""
    return ns / US


def ops_per_sec(op_count: int, elapsed_ns: int) -> float:
    """Throughput in operations per (simulated) second.

    Returns 0.0 for an empty interval instead of raising, because benchmark
    sweeps legitimately produce zero-op cells (e.g. a system that never
    finished warmup at the smallest scale).
    """
    if elapsed_ns <= 0:
        return 0.0
    return op_count * SEC / elapsed_ns
