"""Waitable primitives for simulation processes.

A *process* is a Python generator that yields waitables.  The kernel
(:mod:`repro.sim.kernel`) resumes the generator when the yielded waitable
*triggers*.  The primitives here mirror SimPy's core vocabulary:

* :class:`Event` — a one-shot signal that can succeed with a value or fail
  with an exception.
* :class:`Timeout` — an event that triggers after a fixed delay.
* :class:`AllOf` / :class:`AnyOf` — composite conditions.
* :class:`Interrupt` — the exception thrown into a process by
  :meth:`repro.sim.kernel.Process.interrupt`.

Fast-path notes: events are the single hottest allocation in the simulator
(every verb phase, memory access, and RPC creates several), so the class is
tuned for the common case — *one* waiting process per event.  The first
callback lives in a dedicated slot (``_cb1``); a list (``_more``) is only
allocated for the rare multi-waiter event.  Timeouts acquired through
:meth:`repro.sim.kernel.Simulator.sleep` are recycled through a free list.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.kernel import Simulator

# Sentinel distinguishing "not yet triggered" from a legitimate None value.
_PENDING = object()

#: Upper bound on the per-simulator Timeout free list (memory safety valve).
_TIMEOUT_POOL_MAX = 1024


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, available via
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable signal.

    Processes wait on an event by yielding it.  Any party may complete it
    exactly once, either with :meth:`succeed` (delivering ``value`` to all
    waiters) or :meth:`fail` (raising the exception inside all waiters).

    Events fire through the simulator's scheduling queue, so callbacks always
    run at a well-defined point in virtual time (the current instant), never
    re-entrantly inside the call to ``succeed``.
    """

    __slots__ = ("sim", "_value", "_exception", "_cb1", "_more",
                 "_processed", "_scheduled", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        # Single-callback fast slot (the common case: one waiting Process);
        # extra callbacks spill into a lazily allocated list.
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._more: Optional[list] = None
        self._processed = False
        self._scheduled = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been completed (succeed or fail)."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once all callbacks have been dispatched."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event is pending or failed."""
        if not self.triggered:
            raise RuntimeError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exception

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Complete the event successfully, delivering ``value`` to waiters."""
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = value
        if not self._scheduled:
            self._scheduled = True
            # Inlined sim.schedule(0, self._dispatch) — completion is hot.
            sim = self.sim
            buckets = sim._buckets
            t = sim._now
            b = buckets.get(t)
            if b is None:
                buckets[t] = [(self._dispatch, ())]
                heappush(sim._instants, t)
            else:
                b.append((self._dispatch, ()))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Complete the event with an exception, raised inside each waiter."""
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            buckets = sim._buckets
            t = sim._now
            b = buckets.get(t)
            if b is None:
                buckets[t] = [(self._dispatch, ())]
                heappush(sim._instants, t)
            else:
                b.append((self._dispatch, ()))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event already fired *and* its callbacks have been dispatched,
        ``fn`` runs at the current instant via the scheduler (never inline),
        preserving the invariant that continuations execute from the loop.
        """
        if self._processed:
            self.sim.schedule(0, fn, self)
            return
        if self._cb1 is None:
            self._cb1 = fn
        elif self._more is None:
            self._more = [fn]
        else:
            self._more.append(fn)
        if (not self._scheduled
                and (self._value is not _PENDING or self._exception is not None)):
            self._scheduled = True
            self.sim.schedule(0, self._dispatch)

    def _schedule_dispatch(self) -> None:
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule(0, self._dispatch)

    def _dispatch(self) -> None:
        # Mark processed *before* invoking callbacks so late registrations
        # (from inside a callback) go through the scheduler.
        self._processed = True
        self._scheduled = False
        cb1 = self._cb1
        if cb1 is not None:
            self._cb1 = None
            cb1(self)
        more = self._more
        if more is not None:
            self._more = None
            for fn in more:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else f"failed({self._exception!r})"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that succeeds after ``delay`` nanoseconds of virtual time.

    When constructed with a ``pool`` (via :meth:`Simulator.sleep`), the
    instance returns itself to that free list right after its callbacks run,
    so fire-and-forget waits recycle one object instead of allocating.
    Pooled timeouts must not be retained by callers past their firing.
    """

    __slots__ = ("delay", "_pool", "_firecb")

    def __init__(self, sim: "Simulator", delay: int, value: Any = None,
                 pool: Optional[list] = None, arm: bool = True):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        Event.__init__(self, sim)
        self.delay = delay
        self._pool = pool
        # Bind once: scheduling re-creates no method object on reuse.
        self._firecb = self._fire
        if arm:
            self._scheduled = True
            # Inlined sim.schedule(delay, self._firecb, value); a None value
            # schedules no-arg (firing falls through to _fire's default) so
            # the default case skips a one-tuple per timer.
            buckets = sim._buckets
            t = sim._now + delay
            entry = (self._firecb, (value,) if value is not None else ())
            b = buckets.get(t)
            if b is None:
                buckets[t] = [entry]
                heappush(sim._instants, t)
            else:
                b.append(entry)
        # arm=False leaves a dormant pooled timeout (kernel sleep-pool
        # refill); Simulator.sleep arms it through _reuse before handing
        # it out.

    def _fire(self, value: Any = None) -> None:
        # The event only becomes `triggered` at its due time, so conditions
        # and state inspection see a pending event until then.  The dispatch
        # logic is inlined here (rather than calling Event._dispatch) because
        # timeout firing is the single hottest code path in the simulator.
        self._value = value
        self._processed = True
        self._scheduled = False
        cb1 = self._cb1
        if cb1 is not None:
            self._cb1 = None
            cb1(self)
        more = self._more
        if more is not None:
            self._more = None
            for fn in more:
                fn(self)
        pool = self._pool
        if pool is not None and len(pool) < _TIMEOUT_POOL_MAX:
            # Done with the sole-waiter fast path: back on the free list.
            # (Safe under the sleep() no-retain contract.)
            pool.append(self)

    def _reuse(self, delay: int, value: Any) -> None:
        """Re-arm a recycled pooled timeout (kernel internal)."""
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self._value = _PENDING
        self._exception = None
        self._cb1 = None
        self._more = None
        self._processed = False
        self._scheduled = True
        self.delay = delay
        # Inlined sim.schedule (delay already validated non-negative).
        sim = self.sim
        buckets = sim._buckets
        t = sim._now + delay
        entry = (self._firecb, (value,) if value is not None else ())
        b = buckets.get(t)
        if b is None:
            buckets[t] = [entry]
            heappush(sim._instants, t)
        else:
            b.append(entry)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else f"failed({self._exception!r})"
        return f"<Timeout {self.delay}ns {state}>"


class _Condition(Event):
    """Base for AllOf/AnyOf — waits on a set of child events."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events in a condition must share a simulator")
        self._pending_count = len(self._events)
        if not self._events:
            self.succeed({})
        else:
            for ev in self._events:
                ev.add_callback(self._child_fired)

    def _child_fired(self, ev: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev.triggered and ev.ok}


class AllOf(_Condition):
    """Succeeds when *every* child event has succeeded.

    The value is a dict mapping each child event to its value.  Fails as soon
    as any child fails.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._exception)  # type: ignore[arg-type]
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    The value is a dict of the children that had succeeded by that instant.
    Fails only if a child fails before any succeeds.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="any_of")

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._exception)  # type: ignore[arg-type]
            return
        self.succeed(self._results())
