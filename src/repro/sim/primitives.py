"""Waitable primitives for simulation processes.

A *process* is a Python generator that yields waitables.  The kernel
(:mod:`repro.sim.kernel`) resumes the generator when the yielded waitable
*triggers*.  The primitives here mirror SimPy's core vocabulary:

* :class:`Event` — a one-shot signal that can succeed with a value or fail
  with an exception.
* :class:`Timeout` — an event that triggers after a fixed delay.
* :class:`AllOf` / :class:`AnyOf` — composite conditions.
* :class:`Interrupt` — the exception thrown into a process by
  :meth:`repro.sim.kernel.Process.interrupt`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.kernel import Simulator

# Sentinel distinguishing "not yet triggered" from a legitimate None value.
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, available via
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable signal.

    Processes wait on an event by yielding it.  Any party may complete it
    exactly once, either with :meth:`succeed` (delivering ``value`` to all
    waiters) or :meth:`fail` (raising the exception inside all waiters).

    Events fire through the simulator's scheduling queue, so callbacks always
    run at a well-defined point in virtual time (the current instant), never
    re-entrantly inside the call to ``succeed``.
    """

    __slots__ = ("sim", "_value", "_exception", "_callbacks", "_scheduled", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._scheduled = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been completed (succeed or fail)."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once all callbacks have been dispatched."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event is pending or failed."""
        if not self.triggered:
            raise RuntimeError(f"event {self.name!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exception

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Complete the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = value
        self._schedule_dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Complete the event with an exception, raised inside each waiter."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._schedule_dispatch()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed.

        If the event already fired *and* its callbacks have been dispatched,
        ``fn`` runs at the current instant via the scheduler (never inline),
        preserving the invariant that continuations execute from the loop.
        """
        if self._callbacks is None:
            self.sim.schedule(0, fn, self)
        else:
            self._callbacks.append(fn)
            if self.triggered and not self._scheduled:
                self._schedule_dispatch()

    def _schedule_dispatch(self) -> None:
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule(0, self._dispatch)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        self._scheduled = False
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else f"failed({self._exception!r})"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that succeeds after ``delay`` nanoseconds of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        self._scheduled = True
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        # The event only becomes `triggered` at its due time, so conditions
        # and state inspection see a pending event until then.
        self._value = value
        self._dispatch()


class _Condition(Event):
    """Base for AllOf/AnyOf — waits on a set of child events."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events in a condition must share a simulator")
        self._pending_count = len(self._events)
        if not self._events:
            self.succeed({})
        else:
            for ev in self._events:
                ev.add_callback(self._child_fired)

    def _child_fired(self, ev: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev.triggered and ev.ok}


class AllOf(_Condition):
    """Succeeds when *every* child event has succeeded.

    The value is a dict mapping each child event to its value.  Fails as soon
    as any child fails.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._exception)  # type: ignore[arg-type]
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    The value is a dict of the children that had succeeded by that instant.
    Fails only if a child fails before any succeeds.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="any_of")

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._exception)  # type: ignore[arg-type]
            return
        self.succeed(self._results())
