"""Contention primitives: resources, stores, and bandwidth channels.

These model the queuing behaviour that makes the hardware models realistic:
memory channels serve one request at a time, NIC pipelines admit a bounded
number of in-flight work elements, and links serialize bytes at a fixed rate.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, Optional

from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Usable as a context manager inside a process so the slot is released even
    if the process body raises::

        with resource.request() as req:
            yield req
            ...critical section...
    """

    __slots__ = ("resource", "_released")

    def __init__(self, sim: "Simulator", resource: "Resource"):
        super().__init__(sim, name=resource._request_name)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        if not self._released:
            self._released = True
            self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A FIFO resource with ``capacity`` identical slots.

    Waiters are granted strictly in request order, which both matches the
    hardware being modelled (memory channel queues, NIC SQ processing) and
    keeps runs deterministic.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        # Precomputed once: Request construction is on the hot path of every
        # memory/NIC/channel acquire, so avoid a per-request f-string.
        self._request_name = f"request({name})"
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def _release(self, _req: Request) -> None:
        # Hand the slot directly to the next waiter, if any.
        while self._queue:
            nxt = self._queue.popleft()
            if nxt.triggered:  # cancelled/failed waiter; skip it
                continue
            nxt.succeed(nxt)
            return
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError(f"resource {self.name!r} over-released")

    def acquire(self) -> Generator[Event, Any, Request]:
        """Process-style helper: ``req = yield from resource.acquire()``.

        Hot paths should prefer the frame-free equivalent
        ``with (yield resource.request()):`` — the request event succeeds
        with itself, so yielding it directly delivers the same
        :class:`Request` without this extra generator.
        """
        req = self.request()
        yield req
        return req


class Store:
    """An unbounded-or-bounded FIFO queue of items between processes.

    ``put`` blocks only when a ``capacity`` is set and reached; ``get`` blocks
    while the store is empty.  Delivery order is FIFO on both sides.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = f"put({name})"
        self._get_name = f"get({name})"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        # Demand watchers (see :meth:`demand`); None until first used so the
        # hot get() path pays a single falsy check.
        self._demand_waiters: Optional[list] = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; the returned event fires once it is accepted."""
        ev = Event(self.sim, name=self._put_name)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((ev, item))
            return ev
        self._accept(item)
        ev.succeed(None)
        return ev

    def get(self) -> Event:
        """Take the oldest item; the returned event fires with the item."""
        ev = Event(self.sim, name=self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_blocked_putter()
        else:
            self._getters.append(ev)
            if self._demand_waiters:
                waiters, self._demand_waiters = self._demand_waiters, None
                for w in waiters:
                    if not w.triggered:
                        w.succeed(None)
        return ev

    def demand(self) -> Event:
        """Event firing when a getter parks on the empty store — i.e. the
        moment someone is actually *waiting* for an item (immediately, if
        one already is).  Lets a producer that deliberately idles (e.g. a
        parked RPC serve loop whose peer crashed) wake only on real demand
        instead of polling or holding resources."""
        ev = Event(self.sim, name=f"demand({self.name})")
        if self._getters:
            ev.succeed(None)
        else:
            if self._demand_waiters is None:
                self._demand_waiters = []
            self._demand_waiters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking take: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_blocked_putter()
            return True, item
        return False, None

    def remove(self, item: Any) -> bool:
        """Withdraw a specific queued ``item`` (identity match) out of
        FIFO order.  Returns False if it is not queued — e.g. a getter
        already consumed it."""
        try:
            self._items.remove(item)
        except ValueError:
            return False
        self._admit_blocked_putter()
        return True

    def _accept(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def _admit_blocked_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self._items) < self.capacity):
            ev, item = self._putters.popleft()
            self._accept(item)
            if not ev.triggered:
                ev.succeed(None)


class FifoChannel:
    """A byte pipe with finite rate: transfers serialize FIFO.

    Models a link or bus where a transfer of ``n`` bytes occupies the channel
    for ``n / rate`` ns.  Concurrent transfers queue behind each other, which
    is exactly the head-of-line behaviour of a physical serial link.
    """

    def __init__(self, sim: "Simulator", bytes_per_ns: float, name: str = "channel"):
        if bytes_per_ns <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.bytes_per_ns = bytes_per_ns
        self.name = name
        self._gate = Resource(sim, capacity=1, name=f"{name}.gate")
        self.bytes_moved = 0

    def busy_time(self, nbytes: int) -> int:
        """Serialization time for ``nbytes``, at least 1 ns for any payload."""
        if nbytes <= 0:
            return 0
        return max(1, round(nbytes / self.bytes_per_ns))

    def transfer(self, nbytes: int) -> Generator[Event, Any, None]:
        """Process helper: occupy the channel for the payload's wire time."""
        with (yield self._gate.request()):
            if nbytes > 0:
                yield self.sim.sleep(self.busy_time(nbytes))
                self.bytes_moved += nbytes

    @property
    def queued(self) -> int:
        """Transfers waiting behind the current one."""
        return self._gate.queued


class TokenBucket:
    """Rate limiter with burst capacity, for message-rate caps.

    Tokens accrue at ``rate_per_ns`` up to ``burst``; :meth:`consume` yields
    until the requested tokens are available.  Used to model a NIC's finite
    message rate independent of its bandwidth.
    """

    def __init__(self, sim: "Simulator", rate_per_ns: float, burst: float, name: str = "bucket"):
        if rate_per_ns <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = rate_per_ns
        self.burst = burst
        self.name = name
        self._tokens = burst
        self._last_refill = sim.now
        self._gate = Resource(sim, capacity=1, name=f"{name}.gate")

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now

    def consume(self, tokens: float = 1.0) -> Generator[Event, Any, None]:
        """Process helper: wait until ``tokens`` are available, then take them."""
        if tokens > self.burst:
            raise ValueError(f"cannot consume {tokens} > burst {self.burst}")
        # Serialize consumers so arrival order is honoured.
        with (yield self._gate.request()):
            self._refill()
            if self._tokens < tokens:
                deficit = tokens - self._tokens
                yield self.sim.sleep(max(1, round(deficit / self.rate)))
                self._refill()
            self._tokens -= tokens
