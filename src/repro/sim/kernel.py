"""The discrete-event loop and process scheduler.

:class:`Simulator` owns a priority queue of ``(time, sequence, callable)``
entries.  Equal-time entries run in scheduling order (the monotonically
increasing sequence number breaks ties), which makes every run with the same
seed bit-for-bit reproducible.

:class:`Process` adapts a Python generator into the event system: each value
the generator yields must be an :class:`~repro.sim.primitives.Event` (or a
``Process``, which is itself an event that fires when the generator returns).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional

from repro.sim.primitives import Event, Interrupt, Timeout


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


# First resume of a generator must be send(None); this sentinel marks it so a
# legitimate event *value* that happens to be an Event is not misinterpreted.
_BOOTSTRAP = object()


#: The generator type a process function must return.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process.

    A ``Process`` is also an :class:`Event`: it succeeds with the generator's
    return value when the generator finishes, and fails with the exception if
    the generator raises.  This lets processes wait on each other by yielding
    a process object ("join").
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the first step from the loop, not inline.
        sim.schedule(0, self._step, _BOOTSTRAP, False)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a silent no-op, matching the
        common pattern of cancelling a worker that may have already exited.
        """
        if not self.is_alive:
            return
        self.sim.schedule(0, self._deliver_interrupt, cause)

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return
        # Detach from whatever we were waiting on; the stale callback will
        # notice _waiting_on no longer matches and do nothing.
        self._waiting_on = None
        self._step(Interrupt(cause), is_exception=True)

    # ------------------------------------------------------------------
    def _on_wait_complete(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event.ok:
            self._step(event._value, is_exception=False)
        else:
            self._step(event.exception, is_exception=True)

    def _step(self, payload: Any, is_exception: bool) -> None:
        if self.triggered:
            return
        try:
            if is_exception:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(None if payload is _BOOTSTRAP else payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_complete)


class Simulator:
    """The event loop: a virtual clock plus a priority queue of callbacks.

    Typical usage::

        sim = Simulator(seed=7)

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, seed: int = 0):
        self._now = 0
        self._heap: list[tuple[int, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        self.seed = seed
        # Imported lazily to avoid a cycle at module import time.
        from repro.sim.rng import RngRegistry
        from repro.sim.stats import MetricRegistry

        self.rng = RngRegistry(seed)
        self.metrics = MetricRegistry(self)
        #: Optional protocol tracer (see repro.sim.trace).
        self.tracer = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + int(delay), next(self._sequence), fn, args))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator; returns the joinable handle."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> Event:
        """Event that fires when every event in ``events`` has succeeded."""
        from repro.sim.primitives import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        """Event that fires when the first event in ``events`` succeeds."""
        from repro.sim.primitives import AnyOf

        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once virtual time would exceed this instant (the clock
                is left at ``until``).  ``None`` runs until the queue empties.
            max_events: safety valve for tests; raises
                :class:`SimulationError` when exceeded.

        Returns:
            The virtual time at which execution stopped.
        """
        dispatched = 0
        while self._heap:
            when, _seq, fn, args = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            fn(*args)
            dispatched += 1
            if max_events is not None and dispatched > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_complete(self, process: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``process`` (any event, e.g. a Process or an AllOf)
        triggers; return its value (or raise its failure)."""
        dispatched = 0
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {process.name!r} is waiting but the "
                    "event queue is empty"
                )
            when, _seq, fn, args = heapq.heappop(self._heap)
            self._now = when
            fn(*args)
            dispatched += 1
            if max_events is not None and dispatched > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return process.value

    def peek(self) -> Optional[int]:
        """Time of the next scheduled entry, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now}ns queued={len(self._heap)}>"
