"""The discrete-event loop and process scheduler.

:class:`Simulator` owns a *calendar queue*: a dict of per-instant buckets
(``{time: [(fn, args), ...]}``) plus a small min-heap of the occupied
instants.  Scheduling appends to the target instant's bucket; the heap is
touched only when an instant becomes occupied, so the per-event cost is a
dict probe and a list append instead of an O(log n) heap push.  Dispatch
drains one bucket at a time in append order.

Ordering contract (pinned by ``tests/sim/test_dispatch_trace.py``): events
run in ``(time, seq)`` order where ``seq`` is the global scheduling order —
entries for one instant are appended strictly in the order they were
scheduled, and instants are consumed in time order, so the total dispatch
order is exactly what the original single-heap kernel produced.  Every run
with the same seed is bit-for-bit reproducible.

:class:`Process` adapts a Python generator into the event system: each value
the generator yields must be an :class:`~repro.sim.primitives.Event` (or a
``Process``, which is itself an event that fires when the generator returns).

Fast-path notes: the ``run`` loops bind the bucket machinery to locals and
dispatch a whole instant per outer iteration (one clock write and one
``until`` comparison per *instant*); completion fast paths in
:mod:`repro.sim.primitives` append to the calendar inline.
:meth:`Simulator.sleep` hands out pooled :class:`Timeout` objects (refilled
in small batches) for the fire-and-forget ``yield sim.sleep(n)`` pattern
used throughout the hardware models, and :meth:`Simulator.schedule_many` /
:meth:`Simulator.timeout_many` / :meth:`Simulator.spawn_many` arm N timers
or processes with one kernel call.  All of this is wall-clock only —
virtual-time results are bit-for-bit identical to the straightforward loop.

Profiling/debug: assign ``sim.dispatch_hook = lambda when, fn: ...`` to
observe every dispatch; the hot loops are swapped for an instrumented
variant while it is set, so the disabled path stays branch-free.
See ``docs/KERNEL.md`` for the design rationale.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

from repro.sim.primitives import _PENDING, Event, Interrupt, Timeout


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


# First resume of a generator must be send(None); this sentinel marks it so a
# legitimate event *value* that happens to be an Event is not misinterpreted.
_BOOTSTRAP = object()

#: Dormant pooled timeouts created per :meth:`Simulator.sleep` refill when
#: the free list runs dry (vectorized pool refill: one batch allocation
#: instead of a construct-per-wait cold path).
_SLEEP_REFILL = 8


#: The generator type a process function must return.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process.

    A ``Process`` is also an :class:`Event`: it succeeds with the generator's
    return value when the generator finishes, and fails with the exception if
    the generator raises.  This lets processes wait on each other by yielding
    a process object ("join").
    """

    __slots__ = ("_generator", "_send", "_waiting_on", "_wake")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "",
                 _defer: bool = False):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        self._generator = generator
        # Bound once: resuming the generator is the hottest call in the
        # simulator, so skip the attribute lookup on every wake-up.
        self._send = generator.send
        self._waiting_on: Optional[Event] = None
        # Bound once: every yield registers this same callback object.
        self._wake = self._on_wait_complete
        if not _defer:
            # Kick off the first step from the loop, not inline.  Inlined
            # sim.schedule(0, self._step, _BOOTSTRAP, False) — spawn is hot.
            buckets = sim._buckets
            t = sim._now
            b = buckets.get(t)
            if b is None:
                buckets[t] = [(self._step, (_BOOTSTRAP, False))]
                heappush(sim._instants, t)
            else:
                b.append((self._step, (_BOOTSTRAP, False)))

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a silent no-op, matching the
        common pattern of cancelling a worker that may have already exited.
        """
        if not self.is_alive:
            return
        self.sim.schedule(0, self._deliver_interrupt, cause)

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return
        # Detach from whatever we were waiting on; the stale callback will
        # notice _waiting_on no longer matches and do nothing.
        self._waiting_on = None
        self._step(Interrupt(cause), is_exception=True)

    # ------------------------------------------------------------------
    def _on_wait_complete(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        exc = event._exception
        if exc is not None:
            self._step(exc, True)
            return
        if self._value is not _PENDING or self._exception is not None:
            return  # process already finished (interrupt raced the wake-up)
        # Inlined success path of _step: resume → next wait.  This runs once
        # per yield in every process, so the generic _step (which also
        # handles bootstrap and thrown exceptions) is bypassed here.
        try:
            target = self._send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as step_exc:  # noqa: BLE001 - propagate to joiners
            if isinstance(step_exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(step_exc)
            return
        if not isinstance(target, Event):
            self._reject_yield(target)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        # Fast-path callback registration (the common case: we are the only
        # waiter on a pending event) — equivalent to target.add_callback.
        if target._processed or target._cb1 is not None:
            target.add_callback(self._wake)
        else:
            target._cb1 = self._wake
            if (not target._scheduled
                    and (target._value is not _PENDING
                         or target._exception is not None)):
                target._scheduled = True
                self.sim.schedule(0, target._dispatch)

    def _reject_yield(self, target: Any) -> None:
        self._generator.close()
        self.fail(
            SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"
            )
        )

    def _step(self, payload: Any, is_exception: bool) -> None:
        if self.triggered:
            return
        try:
            if is_exception:
                target = self._generator.throw(payload)
            else:
                target = self._send(None if payload is _BOOTSTRAP else payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._reject_yield(target)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._wake)


class Simulator:
    """The event loop: a virtual clock plus a calendar queue of callbacks.

    Typical usage::

        sim = Simulator(seed=7)

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, seed: int = 0):
        self._now = 0
        #: Calendar queue: per-instant buckets of ``(fn, args)`` entries in
        #: scheduling order.  A bucket exists exactly while its instant has
        #: pending entries (it stays in the dict during its own dispatch so
        #: zero-delay scheduling lands in the live batch).
        self._buckets: dict[int, list] = {}
        #: Min-heap of occupied instants (each pushed once, when its bucket
        #: is created).  The heap sees one entry per *instant*, not per
        #: event — that amortization is the core of the calendar design.
        self._instants: list[int] = []
        self.seed = seed
        #: Total events dispatched over this simulator's lifetime (the
        #: denominator of the perf harness's events/sec figure).
        self.total_dispatched = 0
        #: Free list backing :meth:`sleep` (see Timeout pooling notes).
        self._timeout_pool: list[Timeout] = []
        #: Optional per-dispatch observer ``hook(when, fn)`` for profiling
        #: and the dispatch-order pin test.  While set, the run loops switch
        #: to an instrumented variant; when None the hot loops are untouched.
        self.dispatch_hook: Optional[Callable[[int, Callable], None]] = None
        # Imported lazily to avoid a cycle at module import time.
        from repro.sim.rng import RngRegistry
        from repro.sim.stats import MetricRegistry

        self.rng = RngRegistry(seed)
        self.metrics = MetricRegistry(self)
        #: Optional protocol tracer (see repro.sim.trace).
        self.tracer = None
        #: Optional span recorder (see repro.obs.spans).  None keeps every
        #: instrumented hot path on its allocation-free disabled branch.
        self.spans = None
        #: Optional operation-history recorder (see repro.check.history):
        #: Jepsen-style invoke/ok/fail/info events for the linearizability
        #: checker.  Same contract as ``spans``: None costs nothing.
        self.history = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        t = self._now + int(delay)
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [(fn, args)]
            heappush(self._instants, t)
        else:
            b.append((fn, args))

    def schedule_many(self, items: Iterable[tuple]) -> None:
        """Batched arming: schedule ``(delay, fn, args)`` entries in order.

        Virtual-time semantics are identical to calling :meth:`schedule`
        once per item in list order; the batch exists so callers arming many
        callbacks at once (fault plans, doorbell batches) pay the kernel
        entry and local binding once.
        """
        buckets = self._buckets
        instants = self._instants
        now = self._now
        for delay, fn, args in items:
            if delay < 0:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            t = now + int(delay)
            b = buckets.get(t)
            if b is None:
                buckets[t] = [(fn, args)]
                heappush(instants, t)
            else:
                b.append((fn, args))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def timeout_many(self, delays: Sequence[int], value: Any = None) -> list:
        """Arm N independent timers with one kernel call.

        Returns a list of fresh (unpooled) :class:`Timeout` events, one per
        delay, armed in list order — virtual semantics identical to calling
        :meth:`timeout` per delay, with the construction and calendar
        bindings batched.  Use for retry fan-outs and fault plans; the
        returned events are safe to store and compose (unlike ``sleep()``).
        """
        out = []
        for d in delays:
            out.append(Timeout(self, int(d), value))
        return out

    def sleep(self, delay: int, value: Any = None) -> Timeout:
        """A pooled timeout for the fire-and-forget ``yield sim.sleep(n)``
        pattern.

        Semantically identical to :meth:`timeout` (same scheduling, same
        virtual-time behaviour), but the returned event is recycled through
        a free list right after it fires, sparing hot paths one allocation
        per wait.  The free list is refilled in small batches when it runs
        dry.  **Contract:** yield the result immediately and do not retain
        it past its firing — use :meth:`timeout` for events you store,
        compose into conditions, or inspect later.  (The pool rules are
        pinned by ``tests/sim/test_sleep_pool.py`` and documented in
        ``docs/KERNEL.md``.)
        """
        pool = self._timeout_pool
        if not pool:
            # Vectorized refill: allocate a batch of dormant pooled timeouts
            # in one go; each hand-out below arms via the _reuse fast path.
            pool.extend(Timeout(self, 0, pool=pool, arm=False)
                        for _ in range(_SLEEP_REFILL))
        t = pool.pop()
        t._reuse(int(delay), value)
        return t

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator; returns the joinable handle."""
        return Process(self, generator, name=name)

    def spawn_many(self, generators: Sequence[ProcessGenerator],
                   name: str = "") -> list:
        """Start N processes with one kernel call (batched bootstrap arming).

        Identical to calling :meth:`spawn` per generator in order — each
        process's bootstrap step is appended to the current instant in list
        order — but the calendar bindings are paid once.  This is the
        doorbell-batch fast path: ``post_send_many`` arms one process per WR
        through here.
        """
        procs = [Process(self, g, name=name, _defer=True) for g in generators]
        buckets = self._buckets
        t = self._now
        b = buckets.get(t)
        if b is None:
            b = buckets[t] = []
            heappush(self._instants, t)
        for p in procs:
            b.append((p._step, (_BOOTSTRAP, False)))
        return procs

    def all_of(self, events) -> Event:
        """Event that fires when every event in ``events`` has succeeded."""
        from repro.sim.primitives import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        """Event that fires when the first event in ``events`` succeeds."""
        from repro.sim.primitives import AnyOf

        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once virtual time would exceed this instant (the clock
                is left at ``until``).  ``None`` runs until the queue empties.
            max_events: safety valve for tests; raises
                :class:`SimulationError` on the first dispatch *beyond* the
                limit (exactly ``max_events`` dispatches are allowed).

        Returns:
            The virtual time at which execution stopped.
        """
        if max_events is not None or self.dispatch_hook is not None:
            return self._run_instrumented(until, max_events)
        buckets = self._buckets
        instants = self._instants
        pop = heappop
        dispatched = 0
        try:
            while instants:
                when = instants[0]
                if until is not None and when > until:
                    break
                pop(instants)
                self._now = when
                bucket = buckets[when]
                i = 0
                try:
                    # The list iterator sees entries appended mid-batch, so
                    # zero-delay scheduling lands in this same instant.
                    for fn, args in bucket:
                        i += 1
                        fn(*args)
                except BaseException:
                    # Put the unconsumed suffix back so a resumed run sees
                    # exactly the entries the old per-event loop would have.
                    dispatched += i - 1
                    del bucket[:i]
                    if bucket:
                        heappush(instants, when)
                    else:
                        del buckets[when]
                    raise
                dispatched += i
                del buckets[when]
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self.total_dispatched += dispatched

    def _run_instrumented(self, until: Optional[int],
                          max_events: Optional[int]) -> int:
        """The ``run`` slow path: max_events accounting and/or dispatch_hook.

        Kept separate so the unobserved hot loop stays branch-free; the
        semantics (dispatch order, exact max_events behaviour, ``until``
        clock handling) are identical.
        """
        buckets = self._buckets
        instants = self._instants
        pop = heappop
        hook = self.dispatch_hook
        dispatched = 0
        try:
            while instants:
                when = instants[0]
                if until is not None and when > until:
                    break
                pop(instants)
                self._now = when
                bucket = buckets[when]
                i = 0
                try:
                    while i < len(bucket):
                        if max_events is not None and dispatched >= max_events:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; likely a livelock"
                            )
                        fn, args = bucket[i]
                        i += 1
                        if hook is not None:
                            hook(when, fn)
                        fn(*args)
                        dispatched += 1
                finally:
                    if i < len(bucket):
                        del bucket[:i]
                        heappush(instants, when)
                    else:
                        del buckets[when]
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self.total_dispatched += dispatched

    def run_until_complete(self, process: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``process`` (any event, e.g. a Process or an AllOf)
        triggers; return its value (or raise its failure).

        Like :meth:`run`, ``max_events`` allows exactly that many dispatches
        and raises on the first dispatch beyond the limit.
        """
        if max_events is not None or self.dispatch_hook is not None:
            return self._ruc_instrumented(process, max_events)
        buckets = self._buckets
        instants = self._instants
        pop = heappop
        dispatched = 0
        try:
            while process._value is _PENDING and process._exception is None:
                if not instants:
                    raise SimulationError(
                        f"deadlock: process {process.name!r} is waiting but the "
                        "event queue is empty"
                    )
                when = pop(instants)
                self._now = when
                bucket = buckets[when]
                i = 0
                try:
                    for fn, args in bucket:
                        i += 1
                        fn(*args)
                        if (process._value is not _PENDING
                                or process._exception is not None):
                            break
                except BaseException:
                    dispatched += i - 1
                    del bucket[:i]
                    if bucket:
                        heappush(instants, when)
                    else:
                        del buckets[when]
                    raise
                dispatched += i
                if i < len(bucket):  # completed mid-instant; keep the rest
                    del bucket[:i]
                    heappush(instants, when)
                else:
                    del buckets[when]
        finally:
            self.total_dispatched += dispatched
        return process.value

    def _ruc_instrumented(self, process: Event,
                          max_events: Optional[int]) -> Any:
        """``run_until_complete`` slow path (max_events and/or hook)."""
        buckets = self._buckets
        instants = self._instants
        pop = heappop
        hook = self.dispatch_hook
        dispatched = 0
        try:
            while not process.triggered:
                if not instants:
                    raise SimulationError(
                        f"deadlock: process {process.name!r} is waiting but the "
                        "event queue is empty"
                    )
                when = pop(instants)
                self._now = when
                bucket = buckets[when]
                i = 0
                try:
                    while i < len(bucket) and not process.triggered:
                        if max_events is not None and dispatched >= max_events:
                            raise SimulationError(f"exceeded max_events={max_events}")
                        fn, args = bucket[i]
                        i += 1
                        if hook is not None:
                            hook(when, fn)
                        fn(*args)
                        dispatched += 1
                finally:
                    if i < len(bucket):
                        del bucket[:i]
                        heappush(instants, when)
                    else:
                        del buckets[when]
        finally:
            self.total_dispatched += dispatched
        return process.value

    def peek(self) -> Optional[int]:
        """Time of the next scheduled entry, or None if the queue is empty."""
        return self._instants[0] if self._instants else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        queued = sum(len(b) for b in self._buckets.values())
        return f"<Simulator t={self._now}ns queued={queued}>"
