"""The discrete-event loop and process scheduler.

:class:`Simulator` owns a priority queue of ``(time, sequence, callable)``
entries.  Equal-time entries run in scheduling order (the monotonically
increasing sequence number breaks ties), which makes every run with the same
seed bit-for-bit reproducible.

:class:`Process` adapts a Python generator into the event system: each value
the generator yields must be an :class:`~repro.sim.primitives.Event` (or a
``Process``, which is itself an event that fires when the generator returns).

Fast-path notes: the ``run`` loops bind the heap and ``heappop`` to locals
and dispatch all entries sharing a timestamp in one inner batch (one clock
write and one ``until`` comparison per *instant* instead of per event).
:meth:`Simulator.sleep` hands out pooled :class:`Timeout` objects for the
fire-and-forget ``yield sim.sleep(n)`` pattern used throughout the hardware
models.  All of this is wall-clock only — virtual-time results are
bit-for-bit identical to the straightforward loop.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional

from repro.sim.primitives import _PENDING, Event, Interrupt, Timeout


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


# First resume of a generator must be send(None); this sentinel marks it so a
# legitimate event *value* that happens to be an Event is not misinterpreted.
_BOOTSTRAP = object()


#: The generator type a process function must return.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process.

    A ``Process`` is also an :class:`Event`: it succeeds with the generator's
    return value when the generator finishes, and fails with the exception if
    the generator raises.  This lets processes wait on each other by yielding
    a process object ("join").
    """

    __slots__ = ("_generator", "_waiting_on", "_wake")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bound once: every yield registers this same callback object.
        self._wake = self._on_wait_complete
        # Kick off the first step from the loop, not inline.
        sim.schedule(0, self._step, _BOOTSTRAP, False)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a silent no-op, matching the
        common pattern of cancelling a worker that may have already exited.
        """
        if not self.is_alive:
            return
        self.sim.schedule(0, self._deliver_interrupt, cause)

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return
        # Detach from whatever we were waiting on; the stale callback will
        # notice _waiting_on no longer matches and do nothing.
        self._waiting_on = None
        self._step(Interrupt(cause), is_exception=True)

    # ------------------------------------------------------------------
    def _on_wait_complete(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        exc = event._exception
        if exc is not None:
            self._step(exc, True)
            return
        if self.triggered:
            return
        # Inlined success path of _step: resume → next wait.  This runs once
        # per yield in every process, so the generic _step (which also
        # handles bootstrap and thrown exceptions) is bypassed here.
        try:
            target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as step_exc:  # noqa: BLE001 - propagate to joiners
            if isinstance(step_exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(step_exc)
            return
        if not isinstance(target, Event):
            self._reject_yield(target)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        # Fast-path callback registration (the common case: we are the only
        # waiter on a pending event) — equivalent to target.add_callback.
        if target._processed or target._cb1 is not None:
            target.add_callback(self._wake)
        else:
            target._cb1 = self._wake
            if (not target._scheduled
                    and (target._value is not _PENDING
                         or target._exception is not None)):
                target._scheduled = True
                self.sim.schedule(0, target._dispatch)

    def _reject_yield(self, target: Any) -> None:
        self._generator.close()
        self.fail(
            SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"
            )
        )

    def _step(self, payload: Any, is_exception: bool) -> None:
        if self.triggered:
            return
        try:
            if is_exception:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(None if payload is _BOOTSTRAP else payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._reject_yield(target)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._wake)


class Simulator:
    """The event loop: a virtual clock plus a priority queue of callbacks.

    Typical usage::

        sim = Simulator(seed=7)

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, seed: int = 0):
        self._now = 0
        self._heap: list[tuple[int, int, Callable, tuple]] = []
        self._sequence = 0
        self.seed = seed
        #: Total events dispatched over this simulator's lifetime (the
        #: denominator of the perf harness's events/sec figure).
        self.total_dispatched = 0
        #: Free list backing :meth:`sleep` (see Timeout pooling notes).
        self._timeout_pool: list[Timeout] = []
        # Imported lazily to avoid a cycle at module import time.
        from repro.sim.rng import RngRegistry
        from repro.sim.stats import MetricRegistry

        self.rng = RngRegistry(seed)
        self.metrics = MetricRegistry(self)
        #: Optional protocol tracer (see repro.sim.trace).
        self.tracer = None
        #: Optional span recorder (see repro.obs.spans).  None keeps every
        #: instrumented hot path on its allocation-free disabled branch.
        self.spans = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence = seq = self._sequence + 1
        heappush(self._heap, (self._now + int(delay), seq, fn, args))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def sleep(self, delay: int, value: Any = None) -> Timeout:
        """A pooled timeout for the fire-and-forget ``yield sim.sleep(n)``
        pattern.

        Semantically identical to :meth:`timeout` (same scheduling, same
        virtual-time behaviour), but the returned event is recycled through
        a free list right after it fires, sparing hot paths one allocation
        per wait.  **Contract:** yield the result immediately and do not
        retain it past its firing — use :meth:`timeout` for events you
        store, compose into conditions, or inspect later.
        """
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._reuse(int(delay), value)
            return t
        return Timeout(self, int(delay), value, pool=pool)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator; returns the joinable handle."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> Event:
        """Event that fires when every event in ``events`` has succeeded."""
        from repro.sim.primitives import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        """Event that fires when the first event in ``events`` succeeds."""
        from repro.sim.primitives import AnyOf

        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once virtual time would exceed this instant (the clock
                is left at ``until``).  ``None`` runs until the queue empties.
            max_events: safety valve for tests; raises
                :class:`SimulationError` on the first dispatch *beyond* the
                limit (exactly ``max_events`` dispatches are allowed).

        Returns:
            The virtual time at which execution stopped.
        """
        heap = self._heap
        pop = heappop
        dispatched = 0
        try:
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                self._now = when
                # Same-timestamp batch: drain every entry due at `when` with
                # one clock write and one `until` check for the whole batch.
                while heap and heap[0][0] == when:
                    if max_events is not None and dispatched >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely a livelock"
                        )
                    _t, _s, fn, args = pop(heap)
                    fn(*args)
                    dispatched += 1
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self.total_dispatched += dispatched

    def run_until_complete(self, process: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``process`` (any event, e.g. a Process or an AllOf)
        triggers; return its value (or raise its failure).

        Like :meth:`run`, ``max_events`` allows exactly that many dispatches
        and raises on the first dispatch beyond the limit.
        """
        heap = self._heap
        pop = heappop
        dispatched = 0
        try:
            while not process.triggered:
                if not heap:
                    raise SimulationError(
                        f"deadlock: process {process.name!r} is waiting but the "
                        "event queue is empty"
                    )
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                when, _seq, fn, args = pop(heap)
                self._now = when
                fn(*args)
                dispatched += 1
        finally:
            self.total_dispatched += dispatched
        return process.value

    def peek(self) -> Optional[int]:
        """Time of the next scheduled entry, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now}ns queued={len(self._heap)}>"
