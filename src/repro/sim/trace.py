"""Opt-in protocol tracing.

Attach a :class:`Tracer` to a simulator (``sim.tracer = Tracer(sim)``) and
instrumented components emit timestamped events at key protocol points —
read-route decisions, proxy drains, promotions/demotions.  With no tracer
attached the emit helper is a cheap no-op, so production runs pay (almost)
nothing.

Typical debugging session::

    sim.tracer = Tracer(sim, categories={"proxy", "cache"})
    ...run the workload...
    print(sim.tracer.render(limit=50))

Categories emitted by the instrumented stack:

``cache``
    DRAM-cache read hits and self-verification tag mismatches.
``read``
    NVM home reads (the uncached read route).
``proxy``
    Proxy-ring staging, drains, and drain-loop lifecycle.
``fault``
    Injected faults (crash / recover / stall / dropped messages) and
    recovery-side reconciliation — everything a fault plan does to the
    system.
``retry``
    Client retry attempts and deadline abandonments.
``failover``
    Automatic re-attach outcomes (success with lost-write count, or
    failure against a still-dead server).
``degraded``
    Degraded-mode fallbacks: direct writes past a stalled/absent ring,
    cache-bypass reads.
``lease``
    Client lease lifecycle: grants, renewals, expiries, lock/pin/ring
    recovery for dead clients, and the orphan-lock sweep after a master
    restart.
``fence``
    Fencing rejections: lock ops refused locally after a lapsed lease,
    word-level release fencing, and heartbeats answered "fenced".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, Iterable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time_ns: int
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time_ns / 1000:10.2f} us] {self.category:8s} {self.message}" + (
            f" ({extras})" if extras else ""
        )


class Tracer:
    """A bounded in-memory event recorder with category filtering."""

    def __init__(self, sim: "Simulator", capacity: int = 10_000,
                 categories: Optional[Iterable[str]] = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._filter: Optional[Set[str]] = set(categories) if categories else None
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def wants(self, category: str) -> bool:
        """True if this tracer records the category."""
        return self._filter is None or category in self._filter

    def emit(self, category: str, message: str, **fields: Any) -> None:
        """Record one event (silently filtered by category)."""
        if not self.wants(category):
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self.sim.now, category, message, fields))
        self.recorded += 1

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """Recorded events, optionally restricted to one category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def clear(self) -> None:
        self._events.clear()

    def render(self, limit: int = 100) -> str:
        """The most recent ``limit`` events as a timeline."""
        tail = list(self._events)[-limit:]
        lines = [e.render() for e in tail]
        if self.dropped:
            lines.append(f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)


def trace(sim: "Simulator", category: str, message: str, **fields: Any) -> None:
    """Emit an event if (and only if) a tracer is attached to ``sim``."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(category, message, **fields)
