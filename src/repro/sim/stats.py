"""Streaming metrics for simulation components.

All models report into a :class:`MetricRegistry` hanging off the simulator
(``sim.metrics``).  The primitives are deliberately simple and allocation
light, because hot paths (every RDMA completion, every cache lookup) touch
them:

* :class:`Counter` — monotonically increasing count / sum.
* :class:`Histogram` — sample distribution with exact percentiles (samples
  are retained; callers cap sample count for very long runs via
  ``max_samples`` reservoir downsampling).
* :class:`TimeWeightedStat` — time-integral of a level (queue depth,
  buffer occupancy), for averages weighted by how long a value was held.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Counter:
    """A monotonically increasing event counter with an optional value sum."""

    __slots__ = ("name", "count", "total")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, value: float = 1.0) -> None:
        """Record one occurrence carrying ``value`` (defaults to 1)."""
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Average recorded value; 0.0 when nothing was recorded."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name} n={self.count} total={self.total}>"


class Histogram:
    """A sample distribution with exact order statistics.

    Keeps every sample up to ``max_samples``; beyond that, switches to
    reservoir sampling (uniform over the stream) so long benchmark runs stay
    memory-bounded while percentiles remain unbiased estimates.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_max_samples", "_rng_state", "_sorted")

    def __init__(self, name: str, max_samples: int = 100_000):
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._max_samples = max_samples
        # Cheap deterministic LCG for the reservoir; avoids pulling in the
        # registry (histograms must not perturb workload RNG streams).
        self._rng_state = 0x9E3779B97F4A7C15
        # Sorted view of _samples, built lazily on the first percentile and
        # reused until the next record() — a snapshot() asks for several
        # percentiles and must not pay one full sort per quantile.
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        self.total += value
        self._sorted = None
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            self._rng_state = (self._rng_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            slot = self._rng_state % self.count
            if slot < self._max_samples:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile over retained samples (nearest-rank).

        ``p`` is in [0, 100].  Returns 0.0 for an empty histogram so report
        code can render sparse sweeps without guards.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            return 0.0
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict summary for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "p50": self.p50,
            "p90": self.percentile(90.0),
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


class TimeWeightedStat:
    """Time-weighted average of a level signal (queue depth, occupancy).

    Call :meth:`update` whenever the level changes; the integral accumulates
    ``level * dt`` between updates.
    """

    __slots__ = ("name", "sim", "_level", "_last_change", "_integral", "peak",
                 "_created")

    def __init__(self, name: str, sim: "Simulator", initial: float = 0.0):
        self.name = name
        self.sim = sim
        self._level = initial
        self._last_change = sim.now
        self._integral = 0.0
        self.peak = initial
        # Averages integrate from creation, not t=0: a stat created mid-run
        # must not be diluted by a phantom zero-level prefix it never held.
        self._created = sim.now

    @property
    def level(self) -> float:
        return self._level

    def update(self, level: float) -> None:
        """Set the level at the current instant."""
        now = self.sim.now
        self._integral += self._level * (now - self._last_change)
        self._last_change = now
        self._level = level
        if level > self.peak:
            self.peak = level

    def adjust(self, delta: float) -> None:
        """Shift the level by ``delta`` (convenience for counters)."""
        self.update(self._level + delta)

    def time_average(self) -> float:
        """Average level from this stat's creation up to now."""
        now = self.sim.now
        span = now - self._created
        if span <= 0:
            return self._level
        integral = self._integral + self._level * (now - self._last_change)
        return integral / span


class MetricRegistry:
    """Namespace of metrics owned by one simulator run."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._levels: Dict[str, TimeWeightedStat] = {}

    def counter(self, name: str) -> Counter:
        """Fetch-or-create the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    def histogram(self, name: str, max_samples: int = 100_000) -> Histogram:
        """Fetch-or-create the histogram called ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(name, max_samples=max_samples)
            self._histograms[name] = h
        return h

    def level(self, name: str, initial: float = 0.0) -> TimeWeightedStat:
        """Fetch-or-create the time-weighted level called ``name``."""
        s = self._levels.get(name)
        if s is None:
            s = TimeWeightedStat(name, self.sim, initial=initial)
            self._levels[name] = s
        return s

    def names(self) -> Iterable[str]:
        yield from self._counters
        yield from self._histograms
        yield from self._levels
