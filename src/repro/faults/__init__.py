"""Deterministic fault injection for Gengar deployments.

Author a :class:`FaultPlan` out of declarative fault dataclasses, then let a
:class:`FaultInjector` execute it against a booted pool.  All randomness
(per-packet loss) comes from the simulator's seeded RNG registry, so a run
under a fault plan is exactly as reproducible as a fault-free one.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ClientCrash,
    ClientRecover,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    LossyLink,
    MasterCrash,
    MasterRecover,
    Partition,
    RingStall,
    ServerCrash,
    ServerRecover,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "ServerCrash",
    "ServerRecover",
    "MasterCrash",
    "MasterRecover",
    "ClientCrash",
    "ClientRecover",
    "RingStall",
    "LossyLink",
    "LatencySpike",
    "LinkFlap",
    "Partition",
]
