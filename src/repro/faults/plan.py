"""Declarative fault plans.

A :class:`FaultPlan` is an immutable description of *what goes wrong when*,
in virtual time, expressed with small frozen dataclasses.  Plans are pure
data: they can be built before a run, shifted to line up with a workload
phase (:meth:`FaultPlan.shifted`), embedded in test parametrizations, and
compared for equality.  The :class:`~repro.faults.injector.FaultInjector`
executes them.

Two families of faults:

* **Timed actions** fire once at an instant: :class:`ServerCrash`,
  :class:`ServerRecover`, :class:`RingStall`, :class:`MasterCrash`,
  :class:`MasterRecover`, :class:`ClientCrash`, :class:`ClientRecover`.
* **Link windows** shape the fabric over an interval: :class:`LossyLink`,
  :class:`LatencySpike`, :class:`LinkFlap`, :class:`Partition`.

All times are absolute virtual nanoseconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union


class FaultPlanError(ValueError):
    """An ill-formed fault plan (bad times, probabilities, or groups)."""


# ----------------------------------------------------------------------
# Timed actions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServerCrash:
    """Power-cycle a memory server at ``at_ns``: DRAM state (cache, proxy
    rings, lock table) is lost; NVM survives."""

    at_ns: int
    server_id: int

    def shifted(self, delta: int) -> "ServerCrash":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


@dataclass(frozen=True)
class ServerRecover:
    """Restart a crashed server at ``at_ns``.  With ``reconcile=True`` the
    master's directory is reconciled in the same instant (the production
    recovery sequence); disable it to test clients racing a stale
    directory."""

    at_ns: int
    server_id: int
    reconcile: bool = True

    def shifted(self, delta: int) -> "ServerRecover":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


@dataclass(frozen=True)
class MasterCrash:
    """Kill one metadata master at ``at_ns``: volatile state (directory,
    hotness scores, leases, client table) is lost; the NVM metadata journal
    on the servers survives.  ``shard`` picks which master on a sharded
    control plane (0, the default, is the only master of an unsharded
    pool)."""

    at_ns: int
    shard: int = 0

    def shifted(self, delta: int) -> "MasterCrash":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


@dataclass(frozen=True)
class MasterRecover:
    """Restart a crashed master at ``at_ns``.  With ``rebuild=True`` the
    directory is rebuilt from the NVM metadata journal (the production
    failover sequence); disable it to test clients against a master that
    forgot everything.  ``shard`` picks which master on a sharded control
    plane."""

    at_ns: int
    rebuild: bool = True
    shard: int = 0

    def shifted(self, delta: int) -> "MasterRecover":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


@dataclass(frozen=True)
class ClientCrash:
    """Kill a client process at ``at_ns``: its heartbeats stop (so its
    lease lapses and the master recovers its locks/pins/rings).  With
    ``tear_inflight=True`` the crash additionally leaves a half-written
    proxy slot in the victim's ring — the torn-write case the per-slot
    commit word exists to catch."""

    at_ns: int
    client: str
    tear_inflight: bool = False

    def shifted(self, delta: int) -> "ClientCrash":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


@dataclass(frozen=True)
class ClientRecover:
    """Revive a crashed client at ``at_ns`` — as a zombie: until it calls
    ``reattach_master()`` its lapsed lease fences every lock op."""

    at_ns: int
    client: str

    def shifted(self, delta: int) -> "ClientRecover":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


@dataclass(frozen=True)
class RingStall:
    """Freeze a server's proxy drain loops for ``duration_ns`` starting at
    ``at_ns`` — staged writes stop reaching NVM and the drained counter
    stops advancing (models a wedged drain thread / NVM write stall)."""

    at_ns: int
    duration_ns: int
    server_id: int

    def shifted(self, delta: int) -> "RingStall":
        return dataclasses.replace(self, at_ns=self.at_ns + delta)


# ----------------------------------------------------------------------
# Link windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LossyLink:
    """Drop each matching message with ``drop_prob`` during the window.

    ``src``/``dst`` of ``None`` match any sender/receiver; name a node to
    restrict the loss to one direction of one path.
    """

    start_ns: int
    end_ns: int
    drop_prob: float
    src: Optional[str] = None
    dst: Optional[str] = None

    def shifted(self, delta: int) -> "LossyLink":
        return dataclasses.replace(
            self, start_ns=self.start_ns + delta, end_ns=self.end_ns + delta)


@dataclass(frozen=True)
class LatencySpike:
    """Add ``extra_ns`` of one-way latency to matching messages during the
    window (congestion, a rerouted path, a misbehaving switch)."""

    start_ns: int
    end_ns: int
    extra_ns: int
    src: Optional[str] = None
    dst: Optional[str] = None

    def shifted(self, delta: int) -> "LatencySpike":
        return dataclasses.replace(
            self, start_ns=self.start_ns + delta, end_ns=self.end_ns + delta)


@dataclass(frozen=True)
class LinkFlap:
    """Black-hole *all* traffic to and from ``node`` during the window (a
    cable pull / port flap).  Unlike a crash, the node's state survives;
    verbs stall in retransmission until the window ends."""

    start_ns: int
    end_ns: int
    node: str

    def shifted(self, delta: int) -> "LinkFlap":
        return dataclasses.replace(
            self, start_ns=self.start_ns + delta, end_ns=self.end_ns + delta)


@dataclass(frozen=True)
class Partition:
    """Drop all traffic crossing between two node groups during the window.

    Traffic within a group is unaffected.
    """

    start_ns: int
    end_ns: int
    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]

    def shifted(self, delta: int) -> "Partition":
        return dataclasses.replace(
            self, start_ns=self.start_ns + delta, end_ns=self.end_ns + delta)


Fault = Union[ServerCrash, ServerRecover, RingStall,
              MasterCrash, MasterRecover, ClientCrash, ClientRecover,
              LossyLink, LatencySpike, LinkFlap, Partition]

_TIMED_TYPES = (ServerCrash, ServerRecover, RingStall,
                MasterCrash, MasterRecover, ClientCrash, ClientRecover)
_WINDOW_TYPES = (LossyLink, LatencySpike, LinkFlap, Partition)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated collection of faults."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, _TIMED_TYPES + _WINDOW_TYPES):
                raise FaultPlanError(f"not a fault: {f!r}")
            if isinstance(f, _TIMED_TYPES):
                if f.at_ns < 0:
                    raise FaultPlanError(f"negative fault time: {f!r}")
                if isinstance(f, RingStall) and f.duration_ns < 1:
                    raise FaultPlanError(f"stall needs a positive duration: {f!r}")
                if isinstance(f, (ClientCrash, ClientRecover)) and not f.client:
                    raise FaultPlanError(f"client fault needs a client name: {f!r}")
                if (isinstance(f, (MasterCrash, MasterRecover))
                        and f.shard < 0):
                    raise FaultPlanError(f"negative master shard: {f!r}")
            else:
                if f.start_ns < 0 or f.end_ns <= f.start_ns:
                    raise FaultPlanError(f"empty or negative window: {f!r}")
            if isinstance(f, LossyLink) and not 0.0 < f.drop_prob <= 1.0:
                raise FaultPlanError(f"drop_prob must be in (0, 1]: {f!r}")
            if isinstance(f, LatencySpike) and f.extra_ns < 1:
                raise FaultPlanError(f"latency spike needs extra_ns >= 1: {f!r}")
            if isinstance(f, Partition):
                if not f.group_a or not f.group_b:
                    raise FaultPlanError(f"partition groups must be non-empty: {f!r}")
                if set(f.group_a) & set(f.group_b):
                    raise FaultPlanError(f"partition groups overlap: {f!r}")

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        """Convenience constructor: ``FaultPlan.of(crash, recover, ...)``."""
        return cls(faults=tuple(faults))

    # ------------------------------------------------------------------
    # Composed nemesis schedules (the Jepsen-style chaos building blocks)
    # ------------------------------------------------------------------
    @classmethod
    def partition_then_crash_master(cls, at_ns: int, *,
                                    others: Tuple[str, ...],
                                    master: str = "master",
                                    partition_ns: int = 200_000,
                                    crash_after_ns: int = 50_000,
                                    recover_after_heal_ns: int = 50_000,
                                    rebuild: bool = True) -> "FaultPlan":
        """Partition the master away from ``others``, crash it while it is
        still unreachable, heal, then restart it.

        The nastiest control-plane sequence: clients first see a *partition*
        (RPCs stall, the path is gone), which silently becomes a *crash*
        (volatile state gone too) before the fabric heals — any client that
        treated the partition verdict as "master dead, state intact" is
        wrong, and any master restart that trusts pre-partition volatile
        state is wrong.  Recovery lands after the heal so the journal is
        reachable for the term claim.
        """
        heal = at_ns + partition_ns
        return cls.of(
            Partition(start_ns=at_ns, end_ns=heal,
                      group_a=(master,), group_b=tuple(others)),
            MasterCrash(at_ns=at_ns + crash_after_ns),
            MasterRecover(at_ns=heal + recover_after_heal_ns,
                          rebuild=rebuild),
        )

    @classmethod
    def control_plane_split(cls, at_ns: int, *, clients: Tuple[str, ...],
                            master: str = "master",
                            duration_ns: int = 200_000) -> "FaultPlan":
        """Asymmetric split: ``clients`` keep the server data plane but
        lose the master control plane (both directions) for the window.

        Data ops that need no metadata keep working; control ops (renew,
        gmalloc, lookup misses) must fail *typed* within their deadline —
        this is the schedule the degraded-mode tests run under.
        """
        end = at_ns + duration_ns
        faults: list = []
        for client in clients:
            faults.append(LossyLink(start_ns=at_ns, end_ns=end,
                                    drop_prob=1.0, src=client, dst=master))
            faults.append(LossyLink(start_ns=at_ns, end_ns=end,
                                    drop_prob=1.0, src=master, dst=client))
        return cls.of(*faults)

    @classmethod
    def heal_mid_failover(cls, at_ns: int, *, others: Tuple[str, ...],
                          master: str = "master",
                          partition_ns: int = 300_000,
                          crash_after_ns: int = 50_000,
                          recover_after_ns: int = 100_000,
                          rebuild: bool = True) -> "FaultPlan":
        """Crash the partitioned master and *restart it mid-partition*, so
        its recovery (journal scan, term claim) begins against an
        unreachable fabric and the heal arrives in the middle of it.

        Exercises the recovering master's retry loop: it must refuse to
        serve until the claim lands post-heal, and clients must keep
        getting typed "recovering" errors rather than hangs meanwhile.
        """
        return cls.of(
            Partition(start_ns=at_ns, end_ns=at_ns + partition_ns,
                      group_a=(master,), group_b=tuple(others)),
            MasterCrash(at_ns=at_ns + crash_after_ns),
            MasterRecover(at_ns=at_ns + recover_after_ns, rebuild=rebuild),
        )

    # ------------------------------------------------------------------
    @property
    def timed(self) -> Tuple[Fault, ...]:
        """Crash/recover/stall actions, in time order (ties keep plan order)."""
        acts = [f for f in self.faults if isinstance(f, _TIMED_TYPES)]
        return tuple(sorted(acts, key=lambda f: f.at_ns))

    @property
    def windows(self) -> Tuple[Fault, ...]:
        """Link-shaping windows, in plan order."""
        return tuple(f for f in self.faults if isinstance(f, _WINDOW_TYPES))

    @property
    def horizon_ns(self) -> int:
        """The instant after which the plan is fully played out."""
        horizon = 0
        for f in self.faults:
            if isinstance(f, RingStall):
                horizon = max(horizon, f.at_ns + f.duration_ns)
            elif isinstance(f, _TIMED_TYPES):
                horizon = max(horizon, f.at_ns)
            else:
                horizon = max(horizon, f.end_ns)
        return horizon

    def shifted(self, delta: int) -> "FaultPlan":
        """The same plan, every time moved by ``delta`` ns (e.g. to anchor a
        plan authored relative to zero at the end of a load phase)."""
        return FaultPlan(faults=tuple(f.shifted(delta) for f in self.faults))

    def __len__(self) -> int:
        return len(self.faults)
