"""Deterministic execution of a :class:`~repro.faults.plan.FaultPlan`.

The injector turns a declarative plan into scheduled simulator callbacks
(crash/recover/stall) and a fabric fault hook (loss, latency, flaps,
partitions).  Every probabilistic decision draws from one named stream of
the simulator's seeded RNG registry, so the same seed + the same plan
reproduces a bit-identical run — including which individual packets were
dropped — without perturbing any other consumer's stream.

Usage::

    plan = FaultPlan.of(
        ServerCrash(at_ns=1_000_000, server_id=0),
        ServerRecover(at_ns=2_000_000, server_id=0),
        LossyLink(start_ns=3_000_000, end_ns=4_000_000, drop_prob=0.2),
    )
    injector = FaultInjector.for_pool(pool, plan)
    injector.install()
    ...run the workload...

or, equivalently, ``pool.inject_faults(plan)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import GengarPool
    from repro.core.master import Master
    from repro.core.server import MemoryServer
    from repro.hardware.network import Fabric
    from repro.sim.kernel import Simulator

from repro.faults.plan import (
    ClientCrash,
    ClientRecover,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    LossyLink,
    MasterCrash,
    MasterRecover,
    Partition,
    RingStall,
    ServerCrash,
    ServerRecover,
)
from repro.sim.trace import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import GengarClient


class _Window:
    """One link-shaping window, normalized for the hot fabric hook."""

    __slots__ = ("start_ns", "end_ns", "drop_prob", "extra_ns", "matches")

    def __init__(self, start_ns: int, end_ns: int, drop_prob: float,
                 extra_ns: int, matches: Callable[[str, str], bool]):
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.drop_prob = drop_prob
        self.extra_ns = extra_ns
        self.matches = matches


def _pair_matcher(src: Optional[str], dst: Optional[str]) -> Callable[[str, str], bool]:
    def matches(s: str, d: str) -> bool:
        return (src is None or s == src) and (dst is None or d == dst)
    return matches


def _flap_matcher(node: str) -> Callable[[str, str], bool]:
    def matches(s: str, d: str) -> bool:
        return s == node or d == node
    return matches


def _partition_matcher(group_a, group_b) -> Callable[[str, str], bool]:
    a, b = frozenset(group_a), frozenset(group_b)

    def matches(s: str, d: str) -> bool:
        return (s in a and d in b) or (s in b and d in a)
    return matches


class FaultInjector:
    """Executes one plan against one deployment.

    Single-shot: build a new injector per plan.  :meth:`install` is the arm
    step; :meth:`uninstall` detaches the fabric hook (timed actions that
    already fired are not undone — schedule matching recoveries in the plan).
    """

    def __init__(self, sim: "Simulator", plan: FaultPlan, *,
                 fabric: Optional["Fabric"] = None,
                 servers: Optional[Dict[int, "MemoryServer"]] = None,
                 master: Optional["Master"] = None,
                 masters: Optional[List["Master"]] = None,
                 clients: Optional[Dict[str, "GengarClient"]] = None,
                 rng_name: str = "faults"):
        self.sim = sim
        self.plan = plan
        self.fabric = fabric
        self.servers = servers or {}
        self.master = master
        #: All control-plane shards, indexed by shard id; [master] when the
        #: caller wired only the single-master form.
        self.masters: List["Master"] = (
            list(masters) if masters else ([master] if master else []))
        if self.master is None and self.masters:
            self.master = self.masters[0]
        self.clients = clients or {}
        self._rng = sim.rng.stream(rng_name)
        self._windows: List[_Window] = []
        self._installed = False

        m = sim.metrics
        self.crashes_injected = m.counter("faults.crashes")
        self.recoveries_injected = m.counter("faults.recoveries")
        self.stalls_injected = m.counter("faults.stalls")
        self.master_crashes_injected = m.counter("faults.master_crashes")
        self.master_recoveries_injected = m.counter("faults.master_recoveries")
        self.client_crashes_injected = m.counter("faults.client_crashes")
        self.client_recoveries_injected = m.counter("faults.client_recoveries")
        self.torn_injected = m.counter("faults.torn_injected")

        for f in plan.timed:
            if isinstance(f, (ServerCrash, ServerRecover, RingStall)):
                if f.server_id not in self.servers:
                    raise FaultPlanError(
                        f"plan names server {f.server_id} but only "
                        f"{sorted(self.servers)} are wired")
            elif isinstance(f, (MasterCrash, MasterRecover)):
                if not self.masters:
                    raise FaultPlanError(
                        f"plan has master faults but no master was wired: {f!r}")
                if f.shard >= len(self.masters):
                    raise FaultPlanError(
                        f"plan names master shard {f.shard} but only "
                        f"{len(self.masters)} shard(s) are wired")
            else:  # ClientCrash / ClientRecover
                if f.client not in self.clients:
                    raise FaultPlanError(
                        f"plan names client {f.client!r} but only "
                        f"{sorted(self.clients)} are wired")
        if plan.windows and fabric is None:
            raise FaultPlanError("plan has link faults but no fabric was wired")

    @classmethod
    def for_pool(cls, pool: "GengarPool", plan: FaultPlan,
                 rng_name: str = "faults") -> "FaultInjector":
        """Wire an injector to a booted :class:`GengarPool`."""
        return cls(pool.sim, plan,
                   fabric=pool.cluster.fabric,
                   servers=pool.servers,
                   master=pool.master,
                   masters=getattr(pool, "masters", None),
                   clients={c.name: c for c in pool.clients},
                   rng_name=rng_name)

    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Arm the plan: schedule timed actions, hook the fabric.

        Faults timestamped in the past (relative to ``sim.now``) are
        rejected — anchor relative plans with :meth:`FaultPlan.shifted`.
        Returns ``self`` for chaining.
        """
        if self._installed:
            raise FaultPlanError("injector already installed")
        now = self.sim.now
        for f in self.plan.timed:
            if f.at_ns < now:
                raise FaultPlanError(
                    f"fault at t={f.at_ns} is in the past (now={now}); "
                    "use plan.shifted(...) to anchor it")
        self._installed = True

        timed = []
        for f in self.plan.timed:
            if isinstance(f, ServerCrash):
                timed.append((f.at_ns - now, self._do_crash, (f.server_id,)))
            elif isinstance(f, ServerRecover):
                timed.append((f.at_ns - now, self._do_recover,
                              (f.server_id, f.reconcile)))
            elif isinstance(f, MasterCrash):
                timed.append((f.at_ns - now, self._do_master_crash,
                              (f.shard,)))
            elif isinstance(f, MasterRecover):
                timed.append((f.at_ns - now, self._do_master_recover,
                              (f.rebuild, f.shard)))
            elif isinstance(f, ClientCrash):
                timed.append((f.at_ns - now, self._do_client_crash,
                              (f.client, f.tear_inflight)))
            elif isinstance(f, ClientRecover):
                timed.append((f.at_ns - now, self._do_client_recover,
                              (f.client,)))
            else:  # RingStall
                timed.append((f.at_ns - now, self._do_stall,
                              (f.server_id, f.duration_ns)))
        # Arm the whole plan with one kernel call (same order as one-by-one).
        self.sim.schedule_many(timed)

        for f in self.plan.windows:
            if isinstance(f, LossyLink):
                w = _Window(f.start_ns, f.end_ns, f.drop_prob, 0,
                            _pair_matcher(f.src, f.dst))
            elif isinstance(f, LatencySpike):
                w = _Window(f.start_ns, f.end_ns, 0.0, f.extra_ns,
                            _pair_matcher(f.src, f.dst))
            elif isinstance(f, LinkFlap):
                w = _Window(f.start_ns, f.end_ns, 1.0, 0, _flap_matcher(f.node))
            else:  # Partition
                w = _Window(f.start_ns, f.end_ns, 1.0, 0,
                            _partition_matcher(f.group_a, f.group_b))
            self._windows.append(w)
        if self._windows:
            self.fabric.set_fault_hook(self._verdict)
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "fault plan installed",
                  faults=len(self.plan), horizon_ns=self.plan.horizon_ns)
        return self

    def uninstall(self) -> None:
        """Detach the fabric hook (e.g. before a verification phase)."""
        if self._windows and self.fabric is not None:
            self.fabric.set_fault_hook(None)
        self._windows = []

    # ------------------------------------------------------------------
    # Fabric hook (hot path: one call per transmission attempt)
    # ------------------------------------------------------------------
    def _verdict(self, src: str, dst: str, nbytes: int) -> Tuple[bool, int]:
        now = self.sim.now
        drop_prob = 0.0
        extra_ns = 0
        for w in self._windows:
            if w.start_ns <= now < w.end_ns and w.matches(src, dst):
                if w.drop_prob > drop_prob:
                    drop_prob = w.drop_prob
                extra_ns += w.extra_ns
        if drop_prob >= 1.0:
            dropped = True  # deterministic black hole: no RNG draw
        elif drop_prob > 0.0:
            dropped = self._rng.random() < drop_prob
        else:
            dropped = False
        if dropped and self.sim.tracer is not None:
            trace(self.sim, "fault", "message dropped",
                  src=src, dst=dst, bytes=nbytes)
        return dropped, extra_ns

    # ------------------------------------------------------------------
    # Timed actions
    # ------------------------------------------------------------------
    def _do_crash(self, server_id: int) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting server crash",
                  server=server_id)
        self.servers[server_id].crash()
        self.crashes_injected.add()

    def _do_recover(self, server_id: int, reconcile: bool) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting server recovery",
                  server=server_id)
        self.servers[server_id].recover()
        if reconcile:
            # Reconcile through the master that OWNS the server — on a
            # sharded control plane shard 0 may know nothing about it.
            owner = next((m for m in self.masters
                          if server_id in m._servers), self.master)
            if owner is not None:
                owner.on_server_recovered(server_id)
        self.recoveries_injected.add()

    def _do_stall(self, server_id: int, duration_ns: int) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting ring stall",
                  server=server_id, duration_ns=duration_ns)
        self.servers[server_id].stall_drains(duration_ns)
        self.stalls_injected.add()

    def _do_master_crash(self, shard: int = 0) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting master crash", shard=shard)
        self.masters[shard].crash()
        self.master_crashes_injected.add()

    def _do_master_recover(self, rebuild: bool, shard: int = 0) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting master recovery",
                  rebuild=rebuild, shard=shard)
        target = self.masters[shard]
        target.recover()
        # recovery_process must ALWAYS run: it is the only thing that
        # clears the "recovering" gate.  rebuild=False just means it
        # reopens with an empty directory instead of replaying journals.
        self.sim.spawn(target.recovery_process(rebuild=rebuild),
                       name=f"{target.node.name}.recovery")
        self.master_recoveries_injected.add()

    def _do_client_crash(self, client_name: str, tear_inflight: bool) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting client crash",
                  client=client_name, tear=tear_inflight)
        client = self.clients[client_name]
        if tear_inflight:
            self._tear_inflight_write(client)
        client.crash()
        self.client_crashes_injected.add()

    def _do_client_recover(self, client_name: str) -> None:
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "injecting client revival",
                  client=client_name)
        self.clients[client_name].revive()
        self.client_recoveries_injected.add()

    # ------------------------------------------------------------------
    def _tear_inflight_write(self, client: "GengarClient") -> None:
        """Plant a half-written proxy slot: re-stage the victim's last
        staged write, but cut the RDMA_WRITE short partway through the
        payload — the frame lands, the commit word does not.  The drain
        loop still gets the doorbell (write-after-write ordering only
        covers *completed* writes), which is exactly the case the per-slot
        commit word exists to catch."""
        from repro.core.protocol import (
            PROXY_HEADER_BYTES, pack_proxy_commit, pack_proxy_slot)

        if client._last_staged is None:
            if self.sim.tracer is not None:
                trace(self.sim, "fault", "no staged write to tear",
                      client=client.name)
            return
        sid, gaddr, offset, data = client._last_staged
        server = self.servers.get(sid)
        conn = client._conns.get(sid)
        if server is None or conn is None or conn.ring is None:
            return
        ring_state = server._rings.get(client.name)
        qp = server._drain_qps.get(client.name)
        if ring_state is None or qp is None:
            return
        slots = conn.ring.slots
        if conn.written - ring_state.drained >= slots:
            if self.sim.tracer is not None:
                trace(self.sim, "fault", "ring full; tear skipped",
                      client=client.name)
            return
        seq = conn.written
        conn.written += 1
        slot = seq % slots
        frame = pack_proxy_slot(gaddr, offset, data)
        full = frame + pack_proxy_commit(seq, frame)
        cut = PROXY_HEADER_BYTES + max(1, len(data) // 2)
        base = slot * conn.ring.slot_size
        # The partial payload lands now (the bytes the NIC pushed out before
        # the host died); the zero-fill keeps the judgement deterministic
        # even when the slot is reused after a ring wrap.
        ring_state.mr.poke(base, bytes(conn.ring.slot_size))
        ring_state.mr.poke(base, full[:cut])
        self.sim.spawn(self._deliver_torn_doorbell(client, conn, base, slot),
                       name=f"faults.tear.{client.name}")
        self.torn_injected.add()
        if self.sim.tracer is not None:
            trace(self.sim, "fault", "torn slot planted", client=client.name,
                  server=sid, slot=slot, seq=seq, cut=cut, of=len(full))

    def _deliver_torn_doorbell(self, client: "GengarClient", conn, base: int,
                               slot: int) -> Any:
        """Ship the torn slot's doorbell through the victim's own data QP
        (as a zero-length RDMA_WRITE_WITH_IMM) instead of pushing straight
        into the server's completion queue.

        A real NIC processes WRs in FIFO order, so the dying client's final
        (torn) write can never overtake a completed write it queued behind.
        Bypassing the QP would deliver doorbells out of seq order, and the
        drain's seq cursor would then reject a *good* in-flight frame as
        torn — losing a write the client was told had synced.
        """
        from repro.rdma.qp import QpError
        from repro.rdma.wr import Opcode, WorkRequest

        wr = WorkRequest(
            opcode=Opcode.RDMA_WRITE_IMM,
            remote_rkey=conn.ring.ring_rkey,
            remote_offset=base,
            imm_data=slot,
            inline_data=b"",
            length=0,
        )
        try:
            yield conn.data_qp.post_send(wr)
        except QpError:
            if self.sim.tracer is not None:
                trace(self.sim, "fault", "torn doorbell dropped (QP down)",
                      client=client.name)
