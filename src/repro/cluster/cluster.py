"""Cluster construction: nodes + fabric from a declarative spec."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.cluster.node import Node, NodeSpec
from repro.hardware.network import Fabric
from repro.hardware.specs import DEFAULT_LINK, LinkSpec


@dataclass(frozen=True)
class ClusterSpec:
    """Topology description: the machines and the link tier."""

    nodes: tuple[NodeSpec, ...]
    link: LinkSpec = DEFAULT_LINK

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in cluster spec: {names}")


class Cluster:
    """All machines of one deployment plus the shared fabric.

    Construction is cheap; no processes start until a system (Gengar or a
    baseline) boots on top.
    """

    def __init__(self, sim: "Simulator", spec: ClusterSpec):
        self.sim = sim
        self.spec = spec
        self.fabric = Fabric(sim, spec.link)
        if spec.link.core_bandwidth is not None:
            self.fabric.set_core(spec.link.core_bandwidth, spec.link.core_hop_ns)
        self._nodes: Dict[str, Node] = {}
        for node_spec in spec.nodes:
            self._nodes[node_spec.name] = Node(sim, node_spec, self.fabric)
            if node_spec.rack is not None:
                self.fabric.assign_rack(node_spec.name, node_spec.rack)

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}; have {sorted(self._nodes)}") from None

    @property
    def nodes(self) -> List[Node]:
        """All nodes in spec order."""
        return [self._nodes[s.name] for s in self.spec.nodes]

    @property
    def memory_servers(self) -> List[Node]:
        """Nodes contributing NVM to the pool."""
        return [n for n in self.nodes if n.has_nvm]

    @property
    def compute_nodes(self) -> List[Node]:
        """Client-only nodes (no NVM)."""
        return [n for n in self.nodes if not n.has_nvm]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterable[Node]:
        return iter(self.nodes)
