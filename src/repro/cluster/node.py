"""A cluster machine: CPU, DRAM, optional NVM, and an RDMA NIC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.network import Fabric
    from repro.sim.kernel import Simulator

from repro.hardware.memory import MemoryDevice
from repro.hardware.nic import Nic
from repro.hardware.specs import CONNECTX5_NIC, DDR4_DRAM, MemorySpec, NicSpec, OPTANE_NVM
from repro.rdma.endpoint import RdmaEndpoint


@dataclass(frozen=True)
class NodeSpec:
    """Hardware configuration of one machine.

    ``nvm=None`` builds a compute-only node (a Gengar client); memory servers
    carry both DRAM and NVM, as in the paper's testbed.
    """

    name: str
    dram: MemorySpec = DDR4_DRAM
    nvm: Optional[MemorySpec] = OPTANE_NVM
    nic: NicSpec = CONNECTX5_NIC
    cores: int = 8
    #: Rack placement for two-tier fabrics (None = flat fabric).
    rack: Optional[str] = None
    #: Fixed CPU cost charged per software-handled message (request parsing,
    #: hash lookups); keeps server CPU a finite resource.
    cpu_op_ns: int = 150


class Node:
    """A machine attached to the fabric.

    Exposes its memory devices, its verbs endpoint, and a small CPU model
    (``cores`` workers; software handlers occupy one for their service time).
    """

    def __init__(self, sim: "Simulator", spec: NodeSpec, fabric: "Fabric"):
        self.sim = sim
        self.spec = spec
        self.name = spec.name
        self.dram = MemoryDevice(sim, spec.dram, name=f"{spec.name}.dram")
        self.nvm: Optional[MemoryDevice] = (
            MemoryDevice(sim, spec.nvm, name=f"{spec.name}.nvm") if spec.nvm else None
        )
        self.nic = Nic(sim, spec.nic, name=f"{spec.name}.nic")
        self.endpoint = RdmaEndpoint(sim, spec.name, self.nic, fabric)
        self._cpu = Resource(sim, capacity=spec.cores, name=f"{spec.name}.cpu")

    @property
    def has_nvm(self) -> bool:
        return self.nvm is not None

    def cpu_work(self, duration_ns: Optional[int] = None) -> Generator[Any, Any, None]:
        """Occupy one core for ``duration_ns`` (default: the per-op cost)."""
        if duration_ns is None:
            duration_ns = self.spec.cpu_op_ns
        with (yield self._cpu.request()):
            if duration_ns > 0:
                yield self.sim.sleep(duration_ns)

    @property
    def cpu_utilized(self) -> int:
        """Cores currently busy (for load metrics)."""
        return self._cpu.in_use

    def __repr__(self) -> str:  # pragma: no cover
        kind = "hybrid" if self.has_nvm else "compute"
        return f"<Node {self.name} ({kind})>"
