"""Cluster substrate: nodes and topology construction."""

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.node import Node, NodeSpec

__all__ = ["Node", "NodeSpec", "Cluster", "ClusterSpec"]
