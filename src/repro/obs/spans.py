"""Op spans: phase-attributed latency capture for every pool operation.

The data path is instrumented with *spans* — ``(track, name, start_ns,
end_ns)`` intervals recorded at the end of each protocol phase.  A span
recorder attached to a simulator (``sim.spans = SpanRecorder(sim)``) turns
every client op into a parent span with typed child phases (meta-cache
lookup, RDMA verb post→completion, proxy staging, degraded fallback, retry
waits), and the server/master sides join in with drain, promotion-copy, and
RPC-service spans.  The recorder feeds two sinks at once:

* **per-phase histograms** in ``sim.metrics`` (``span.<name>``), so phase
  latency distributions ride the normal metrics/exporter path, and
* an optional bounded **span log** for structured export — Chrome
  ``trace_event`` JSON (Perfetto / ``chrome://tracing``) or JSONL (see
  :mod:`repro.obs.export`).

Zero-cost-when-off contract
---------------------------

``sim.spans`` is ``None`` by default, and every instrumented call site
checks that (plus the module-level :data:`ENABLED` kill switch, consulted at
attach time) *before* constructing a span, formatting a field, or even
reading the clock a second time.  The disabled hot path therefore pays one
attribute load and one ``is None`` test per op — no allocations, no extra
simulated events — which the overhead guard in ``tests/obs/test_overhead.py``
enforces against the ``BENCH_perf.json`` baseline.

Span taxonomy (``docs/OBSERVABILITY.md`` has the full contract):

``op.*``
    Client-visible operations: ``op.gread``, ``op.gread_many``,
    ``op.gwrite``, ``op.gwrite_batch``, ``op.gsync``, ``op.glock``,
    ``op.gunlock``.  Each carries a per-client ``op`` id that its child
    phases repeat.
``phase.*``
    Protocol phases inside an op: ``phase.meta_lookup``,
    ``phase.cache_read`` (hit or tag-miss probe), ``phase.nvm_read``,
    ``phase.degraded_read``, ``phase.proxy_stage``, ``phase.batch_stage``,
    ``phase.direct_write``, ``phase.degraded_fallback``,
    ``phase.drain_wait``, ``phase.retry_wait``, ``phase.pipeline_wait``
    (a batched/async op draining its outstanding reads or queuing for a
    window slot), ``phase.prefetch`` (one background promotion request).
``srv.*``
    Server background work: ``srv.drain`` (one staged frame applied to
    NVM/cache), ``srv.promote_copy`` (NVM→DRAM promotion copy),
    ``srv.read_combine`` (one combined device transfer serving a group of
    adjacent doorbell-batched reads).
``rpc.*``
    Control-plane service time, one span per handled request
    (``rpc.gmalloc``, ``rpc.lookup``, ``rpc.report``, ``rpc.attach``, …)
    on the serving node's track.
``master.*``
    Master housekeeping: ``master.plan_epoch`` (one placement epoch).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["ENABLED", "Span", "SpanRecorder", "install"]

#: Module-level kill switch: when False, :func:`install` refuses to attach a
#: recorder, so one flag flip (e.g. from a bench harness or conftest) turns
#: the whole observability layer off without touching call sites.
ENABLED = True


class Span:
    """One closed interval of attributed work on a track."""

    __slots__ = ("track", "name", "start_ns", "end_ns", "op", "fields")

    def __init__(self, track: str, name: str, start_ns: int, end_ns: int,
                 op: int = 0, fields: Optional[Dict[str, Any]] = None):
        self.track = track
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.op = op
        self.fields = fields

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSONL export row)."""
        d: Dict[str, Any] = {
            "track": self.track,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.op:
            d["op"] = self.op
        if self.fields:
            d["fields"] = self.fields
        return d

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.name} on {self.track} "
                f"[{self.start_ns}..{self.end_ns}]ns>")


class SpanRecorder:
    """Collects spans for one simulator run.

    Recording is *end-driven*: instrumented code captures ``start = sim.now``
    (guarded by the enabled check), does the work, then calls :meth:`record`
    once the phase closes.  There is no open-span bookkeeping to corrupt when
    generators interleave, and a phase that raises simply never records.

    The span log is bounded by ``capacity``; beyond it, spans still feed the
    per-phase histograms but the structured log counts them in
    :attr:`dropped` instead of growing without bound.
    """

    def __init__(self, sim: "Simulator", capacity: int = 250_000,
                 keep_spans: bool = True, histograms: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.keep_spans = keep_spans
        self.histograms = histograms
        self.spans: List[Span] = []
        self.recorded = 0
        self.dropped = 0
        self._next_op = 0
        self._metrics = sim.metrics

    # ------------------------------------------------------------------
    def next_op(self) -> int:
        """Mint a correlation id for one client op (child phases repeat it)."""
        self._next_op += 1
        return self._next_op

    def record(self, track: str, name: str, start_ns: int,
               end_ns: Optional[int] = None, op: int = 0,
               **fields: Any) -> None:
        """Close one span; ``end_ns`` defaults to the current instant."""
        end = self.sim.now if end_ns is None else end_ns
        self.recorded += 1
        if self.histograms:
            self._metrics.histogram("span." + name).record(end - start_ns)
        if not self.keep_spans:
            return
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(Span(track, name, start_ns, end, op,
                               fields or None))

    # ------------------------------------------------------------------
    def by_name(self, name: str) -> List[Span]:
        """Logged spans with exactly this name."""
        return [s for s in self.spans if s.name == name]

    def names(self) -> Dict[str, int]:
        """Span-name → logged-count summary (sorted for stable rendering)."""
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0) + 1
        return dict(sorted(out.items()))

    def tracks(self) -> List[str]:
        """Every track that logged at least one span, in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        return list(seen)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterable[Span]:
        return iter(self.spans)


def install(sim: "Simulator", capacity: int = 250_000,
            keep_spans: bool = True) -> Optional[SpanRecorder]:
    """Attach a fresh recorder to ``sim`` and return it.

    Honors the module :data:`ENABLED` kill switch: when it is False this is
    a no-op returning ``None``, so harnesses can wire ``--trace-out`` style
    flags unconditionally and still ship an instrumentation-free run.
    """
    if not ENABLED:
        return None
    recorder = SpanRecorder(sim, capacity=capacity, keep_spans=keep_spans)
    sim.spans = recorder
    return recorder
