"""repro.obs — the pool-wide observability layer.

Spans (:mod:`repro.obs.spans`) attribute every op's virtual nanoseconds to
typed protocol phases; exporters (:mod:`repro.obs.export`) turn the span log
and the metric registry into Chrome ``trace_event`` JSON, JSONL, Prometheus
text, and a versioned snapshot dict.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    chrome_trace,
    parse_prometheus,
    prometheus_text,
    registry_snapshot,
    spans_jsonl,
)
from repro.obs.spans import ENABLED, Span, SpanRecorder, install

__all__ = [
    "ENABLED",
    "SNAPSHOT_SCHEMA",
    "Span",
    "SpanRecorder",
    "chrome_trace",
    "install",
    "parse_prometheus",
    "prometheus_text",
    "registry_snapshot",
    "spans_jsonl",
]
