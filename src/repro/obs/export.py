"""Exporters: span logs and metrics in tool-friendly formats.

Three consumers, three formats:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format.
  Open the file in `Perfetto <https://ui.perfetto.dev>`_ (or
  ``chrome://tracing``) and every client, server, and master gets its own
  named thread track with the op/phase spans nested by time.  Virtual
  nanoseconds map to trace microseconds (the unit ``trace_event`` expects),
  so a 2.3 µs read renders as 2.3 units on the timeline.
* :func:`spans_jsonl` — one JSON object per span, for ad-hoc analysis
  (``jq``, pandas) without a trace viewer.
* :func:`prometheus_text` — the :class:`~repro.sim.stats.MetricRegistry`
  rendered in the Prometheus text exposition format (counters →
  ``_total``/``_sum``, histograms → quantile summaries, time-weighted
  levels → gauges).  :func:`parse_prometheus` is the matching tiny parser
  used by the golden round-trip tests.
* :func:`registry_snapshot` — the whole registry as one versioned plain
  dict (``schema`` pinned by tests), the machine-readable sibling of
  ``GengarPool.metrics_snapshot()``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import Span, SpanRecorder
    from repro.sim.stats import MetricRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "chrome_trace",
    "spans_jsonl",
    "prometheus_text",
    "parse_prometheus",
    "registry_snapshot",
]

#: Version of the :func:`registry_snapshot` dict shape.
SNAPSHOT_SCHEMA = 1


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def _track_order(tracks: Iterable[str]) -> List[str]:
    """Stable display order: master first, then servers, then clients,
    then anything else — each group name-sorted."""

    def rank(track: str) -> Tuple[int, str]:
        if track.startswith("master"):
            return (0, track)
        if track.startswith("server"):
            return (1, track)
        if track.startswith("client"):
            return (2, track)
        return (3, track)

    return sorted(tracks, key=rank)


def chrome_trace(recorder: "SpanRecorder", process_name: str = "gengar-pool",
                 pid: int = 1) -> Dict[str, Any]:
    """Render the recorder's span log as a ``trace_event`` JSON object.

    Every span becomes a complete ("X") event; tracks become named threads
    of one process.  ``ts``/``dur`` are floats in microseconds (virtual ns /
    1000), per the trace_event contract.
    """
    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }]
    tids: Dict[str, int] = {}
    for index, track in enumerate(_track_order(recorder.tracks()), start=1):
        tids[track] = index
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": index,
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": index,
            "args": {"sort_index": index},
        })
    for span in recorder.spans:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": pid,
            "tid": tids[span.track],
        }
        args: Dict[str, Any] = dict(span.fields) if span.fields else {}
        if span.op:
            args["op"] = span.op
        if args:
            event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": "virtual-ns (exported as us)",
            "spans_logged": len(recorder.spans),
            "spans_dropped": recorder.dropped,
        },
    }


def spans_jsonl(recorder: "SpanRecorder") -> str:
    """The span log as newline-delimited JSON (one object per span)."""
    lines = [json.dumps(span.to_dict(), sort_keys=True)
             for span in recorder.spans]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    safe = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    return f"{prefix}_{safe}" if prefix else safe


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: Quantiles rendered for each histogram (label, percentile).
_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0),
)


def prometheus_text(metrics: "MetricRegistry", prefix: str = "gengar") -> str:
    """Render every metric in the registry as Prometheus exposition text.

    * ``Counter`` → ``<name>_total`` (event count) and ``<name>_sum`` (the
      value sum, for counters that carry one).
    * ``Histogram`` → a summary: ``<name>{quantile="..."}`` plus
      ``<name>_count`` / ``<name>_sum``.
    * ``TimeWeightedStat`` → gauges ``<name>`` (current level),
      ``<name>_avg`` (time-weighted average) and ``<name>_peak``.
    """
    lines: List[str] = []
    for name in sorted(metrics._counters):
        c = metrics._counters[name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname}_total counter")
        lines.append(f"{pname}_total {_fmt(float(c.count))}")
        lines.append(f"{pname}_sum {_fmt(float(c.total))}")
    for name in sorted(metrics._histograms):
        h = metrics._histograms[name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} summary")
        for label, p in _QUANTILES:
            lines.append(f'{pname}{{quantile="{label}"}} '
                         f"{_fmt(float(h.percentile(p)))}")
        lines.append(f"{pname}_count {_fmt(float(h.count))}")
        lines.append(f"{pname}_sum {_fmt(float(h.total))}")
    for name in sorted(metrics._levels):
        s = metrics._levels[name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(float(s.level))}")
        lines.append(f"{pname}_avg {_fmt(float(s.time_average()))}")
        lines.append(f"{pname}_peak {_fmt(float(s.peak))}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{sample_name: value}``.

    Quantile samples keep their label (``name{quantile="0.5"}``).  Used by
    the golden tests to prove :func:`prometheus_text` round-trips, and small
    enough to double as a reference for the format we emit.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"unparseable sample line: {line!r}")
        samples[name] = float(value)
    return samples


# ----------------------------------------------------------------------
# Versioned registry snapshot
# ----------------------------------------------------------------------
def registry_snapshot(metrics: "MetricRegistry") -> Dict[str, Any]:
    """The full registry as one plain, versioned dict.

    Shape (``schema`` = :data:`SNAPSHOT_SCHEMA`, pinned by golden tests)::

        {"schema": 1, "virtual_time_ns": ...,
         "counters":   {name: {"count": int, "total": float}},
         "histograms": {name: {count/mean/min/max/p50/p90/p99}},
         "levels":     {name: {"level": .., "avg": .., "peak": ..}}}
    """
    return {
        "schema": SNAPSHOT_SCHEMA,
        "virtual_time_ns": metrics.sim.now,
        "counters": {
            name: {"count": c.count, "total": c.total}
            for name, c in sorted(metrics._counters.items())
        },
        "histograms": {
            name: h.snapshot()
            for name, h in sorted(metrics._histograms.items())
        },
        "levels": {
            name: {"level": s.level, "avg": s.time_average(), "peak": s.peak}
            for name, s in sorted(metrics._levels.items())
        },
    }
