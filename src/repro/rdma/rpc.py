"""A small two-sided RPC layer over SEND/RECV.

Gengar keeps its *data plane* one-sided, but the *control plane* (allocation,
metadata lookups, lock service fallbacks, epoch reports) is classic
request/response over SEND/RECV.  This module provides that: a method
registry on the server, request/response framing with pickle, buffer ring
management, and concurrent outstanding calls matched by request id.

Payloads are serialized to real bytes and travel through the verbs layer, so
RPC cost scales with message size exactly as it would on the wire.
"""

from __future__ import annotations

import itertools
import pickle
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator

from repro.sim.primitives import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.memory import MemoryDevice

from repro.rdma.endpoint import RdmaEndpoint
from repro.rdma.mr import AccessFlags
from repro.rdma.qp import QueuePair
from repro.rdma.wr import Opcode, WorkRequest

def _req_ids_for(sim):
    """Per-simulator request-id source; request ids are pickled into every
    frame, so process-global numbering would break same-seed determinism
    across runs in one process (see mr._key_counter_for)."""
    counter = getattr(sim, "_rpc_req_counter", None)
    if counter is None:
        counter = itertools.count(1)
        sim._rpc_req_counter = counter
    return counter

#: Default RPC buffer size: enough for metadata messages, small enough that
#: bulk data clearly does not belong on this path.
DEFAULT_BUFFER_SIZE = 4096


class RpcError(Exception):
    """Remote handler failure or local framing problem."""


def _encode(obj: Any, limit: int) -> bytes:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > limit:
        raise RpcError(f"rpc payload of {len(data)} bytes exceeds buffer size {limit}")
    return data


class _BufferRing:
    """A ring of fixed-size slots in one registered region."""

    def __init__(self, endpoint: RdmaEndpoint, device: "MemoryDevice", base: int,
                 slots: int, slot_size: int, name: str):
        self.slot_size = slot_size
        self.mr = endpoint.register_mr(
            device, base, slots * slot_size, access=AccessFlags.ALL, name=name
        )
        self.free: Store = Store(endpoint.sim, name=f"{name}.free")
        for i in range(slots):
            self.free.put(i)

    def offset(self, slot: int) -> int:
        return slot * self.slot_size


class RpcServer:
    """Serves registered methods to any number of connected clients.

    Handlers are either plain callables ``handler(request) -> response`` or
    generator functions ``handler(request) -> (yield ...)`` when the handler
    itself needs simulated time (e.g. touching a memory device).
    """

    def __init__(
        self,
        endpoint: RdmaEndpoint,
        device: "MemoryDevice",
        base: int,
        num_buffers: int = 16,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
        name: str = "",
    ):
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.name = name or f"{endpoint.name}.rpc"
        self._handlers: Dict[str, Callable] = {}
        # Receive ring + response staging ring share the device window.
        span = num_buffers * buffer_size
        self._recv_ring = _BufferRing(endpoint, device, base, num_buffers, buffer_size, f"{self.name}.rx")
        self._resp_ring = _BufferRing(endpoint, device, base + span, num_buffers, buffer_size, f"{self.name}.tx")
        self.buffer_size = buffer_size
        self.requests = self.sim.metrics.counter(f"{self.name}.requests")
        # Precomputed: one handler process is spawned per request.
        self._handler_name = f"{self.name}.handler"

    def register(self, method: str, handler: Callable) -> None:
        """Expose ``handler`` under ``method``."""
        self._handlers[method] = handler

    def serve(self, qp: QueuePair) -> None:
        """Start serving requests arriving on ``qp`` (one loop per client)."""
        self.sim.spawn(self._serve_loop(qp), name=f"{self.name}.loop")

    # ------------------------------------------------------------------
    def _serve_loop(self, qp: QueuePair) -> Generator[Any, Any, None]:
        while True:
            slot = yield self._recv_ring.free.get()
            qp.post_recv(self._recv_ring.mr, self._recv_ring.offset(slot),
                         self.buffer_size, wr_id=slot)
            wc = yield qp.recv_cq.next_event()
            if wc.opcode is not Opcode.RECV:  # our own response completions
                continue
            raw = self._recv_ring.mr.peek(wc.recv_offset, wc.byte_len)
            self._recv_ring.free.put(wc.wr_id)
            # Handle concurrently so a slow handler doesn't block the ring.
            self.sim.spawn(self._handle(qp, raw), name=self._handler_name)

    def _handle(self, qp: QueuePair, raw: bytes) -> Generator[Any, Any, None]:
        req_id, method, request = pickle.loads(raw)
        self.requests.add()
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        handler = self._handlers.get(method)
        if handler is None:
            reply = ("err", f"no such method: {method}")
        else:
            try:
                result = handler(request)
                if hasattr(result, "send"):  # generator-style handler
                    result = yield from result
                reply = ("ok", result)
            except Exception as exc:  # noqa: BLE001 - faults travel to caller
                reply = ("err", f"{type(exc).__name__}: {exc}")
        payload = _encode((req_id, reply), self.buffer_size)
        slot = yield self._resp_ring.free.get()
        offset = self._resp_ring.offset(slot)
        self._resp_ring.mr.poke(offset, payload)
        wr = WorkRequest(
            opcode=Opcode.SEND,
            local_mr=self._resp_ring.mr,
            local_offset=offset,
            length=len(payload),
        )
        done = qp.post_send(wr)
        yield done
        self._resp_ring.free.put(slot)
        if rec is not None:
            rec.record(self.name, "rpc." + method, t0, ok=reply[0] == "ok")


class RpcClient:
    """Issues calls to one :class:`RpcServer` over a connected QP.

    Supports multiple outstanding calls; responses are demultiplexed by
    request id so concurrent client processes can share one instance.
    """

    def __init__(
        self,
        endpoint: RdmaEndpoint,
        qp: QueuePair,
        device: "MemoryDevice",
        base: int,
        num_buffers: int = 16,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
        name: str = "",
    ):
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.qp = qp
        self.name = name or f"{endpoint.name}.rpcc"
        self.buffer_size = buffer_size
        span = num_buffers * buffer_size
        self._recv_ring = _BufferRing(endpoint, device, base, num_buffers, buffer_size, f"{self.name}.rx")
        self._send_ring = _BufferRing(endpoint, device, base + span, num_buffers, buffer_size, f"{self.name}.tx")
        self._pending: Dict[int, Event] = {}
        self._demux_running = False
        # Precomputed: every call creates one reply event.
        self._reply_event_name = f"{self.name}.req"

    # ------------------------------------------------------------------
    def call(self, method: str, request: Any = None) -> Generator[Any, Any, Any]:
        """Process helper: invoke ``method`` and return its result.

        Raises :class:`RpcError` if the remote handler failed.
        """
        req_id = next(_req_ids_for(self.sim))
        payload = _encode((req_id, method, request), self.buffer_size)

        # Post a reply buffer *before* sending, so the response can never
        # find the receive queue empty.
        recv_slot = yield self._recv_ring.free.get()
        self.qp.post_recv(self._recv_ring.mr, self._recv_ring.offset(recv_slot),
                          self.buffer_size, wr_id=recv_slot)

        reply_event = self.sim.event(name=self._reply_event_name)
        self._pending[req_id] = reply_event
        if not self._demux_running:
            self._demux_running = True
            self.sim.spawn(self._demux_loop(), name=f"{self.name}.demux")

        send_slot = yield self._send_ring.free.get()
        offset = self._send_ring.offset(send_slot)
        self._send_ring.mr.poke(offset, payload)
        wr = WorkRequest(
            opcode=Opcode.SEND,
            local_mr=self._send_ring.mr,
            local_offset=offset,
            length=len(payload),
        )
        send_done = self.qp.post_send(wr)
        send_wc = yield send_done
        self._send_ring.free.put(send_slot)
        if not send_wc.ok:
            self._pending.pop(req_id, None)
            # Flush the reply buffer posted for this call (QP error-state
            # recv flush): the dead peer can never consume it, and leaking
            # one slot per failed call would wedge every later call on
            # this client once the ring runs dry.
            if self.qp.cancel_recv(recv_slot, self._recv_ring.mr):
                self._recv_ring.free.put(recv_slot)
            raise RpcError(f"rpc transport failed: {send_wc.status.value}")

        status, result = yield reply_event
        if status == "err":
            raise RpcError(result)
        return result

    def _demux_loop(self) -> Generator[Any, Any, None]:
        while True:
            wc = yield self.qp.recv_cq.next_event()
            if wc.opcode is not Opcode.RECV:
                continue
            raw = self._recv_ring.mr.peek(wc.recv_offset, wc.byte_len)
            self._recv_ring.free.put(wc.wr_id)
            req_id, reply = pickle.loads(raw)
            waiter = self._pending.pop(req_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(reply)
