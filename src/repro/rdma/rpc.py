"""A small two-sided RPC layer over SEND/RECV.

Gengar keeps its *data plane* one-sided, but the *control plane* (allocation,
metadata lookups, lock service fallbacks, epoch reports) is classic
request/response over SEND/RECV.  This module provides that: a method
registry on the server, request/response framing with pickle, buffer ring
management, and concurrent outstanding calls matched by request id.

Payloads are serialized to real bytes and travel through the verbs layer, so
RPC cost scales with message size exactly as it would on the wire.

Scalability (PROTOCOLS.md §12): the server-side rings are *elastic* — an
SRQ-style shared receive pool.  All client QPs draw their posted receives
from one slot pool that grows in powers of two as peers attach (and under
occupancy pressure on the response side), and shrinks again after idle
epochs.  Credit-based flow control rides the reply envelope's immediate
data: the server piggybacks a receive-credit grant on every response, and
clients block new sends at zero credits instead of silently overrunning the
ring.  Both mechanisms are pay-as-you-go — a fixed-size ring with credits
off executes the exact legacy event sequence.
"""

from __future__ import annotations

import itertools
import pickle
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional

from repro.sim.primitives import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.memory import MemoryDevice

from repro.rdma.endpoint import RdmaEndpoint
from repro.rdma.mr import AccessFlags
from repro.rdma.qp import QueuePair
from repro.rdma.wr import Opcode, WorkCompletion, WorkRequest

def _req_ids_for(sim):
    """Per-simulator request-id source; request ids are pickled into every
    frame, so process-global numbering would break same-seed determinism
    across runs in one process (see mr._key_counter_for)."""
    counter = getattr(sim, "_rpc_req_counter", None)
    if counter is None:
        counter = itertools.count(1)
        sim._rpc_req_counter = counter
    return counter

#: Default RPC buffer size: enough for metadata messages, small enough that
#: bulk data clearly does not belong on this path.
DEFAULT_BUFFER_SIZE = 4096

#: Default ring depth — the single source of truth for the historical 16-slot
#: rings (GengarConfig derives both server and client sizing from this, so
#: the two sides can never silently disagree).
DEFAULT_RING_SLOTS = 16

#: Hard ceiling on elastic growth: a runaway producer can at most double a
#: ring up to this many slots (4 MiB of 4 KiB buffers).
DEFAULT_MAX_RING_SLOTS = 1024

#: An elastic ring must sit fully idle (no growth pressure, newest chunk
#: entirely free) for this many virtual ns before a chunk is retired.
DEFAULT_SHRINK_IDLE_NS = 1_000_000


class RpcError(Exception):
    """Remote handler failure or local framing problem."""


def _encode(obj: Any, limit: int) -> bytes:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > limit:
        raise RpcError(f"rpc payload of {len(data)} bytes exceeds buffer size {limit}")
    return data


class _BufferRing:
    """A pool of fixed-size slots across one or more registered regions.

    Chunk 0 occupies the caller-provided window at ``base`` (the legacy
    layout).  When a ``grow_cb`` is supplied the ring is *elastic*: growth
    carves a new power-of-two chunk through the callback and registers it as
    an additional MR; shrink retires the newest chunk once it has sat fully
    idle past the idle epoch, deregistering its MR and parking the span for
    reuse.  Without a ``grow_cb`` every elastic branch collapses to a pure
    comparison and the ring behaves exactly like the historical fixed ring.
    """

    def __init__(self, endpoint: RdmaEndpoint, device: "MemoryDevice", base: int,
                 slots: int, slot_size: int, name: str,
                 grow_cb: Optional[Callable[[int], int]] = None,
                 max_slots: int = DEFAULT_MAX_RING_SLOTS,
                 shrink_idle_ns: int = DEFAULT_SHRINK_IDLE_NS):
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.device = device
        self.slot_size = slot_size
        self.name = name
        self.initial_slots = slots
        self.capacity = slots
        self.mr = endpoint.register_mr(
            device, base, slots * slot_size, access=AccessFlags.ALL, name=name
        )
        self.free: Store = Store(endpoint.sim, name=f"{name}.free")
        for i in range(slots):
            self.free.put(i)
        self._grow_cb = grow_cb
        self._max_slots = max(max_slots, slots)
        self._shrink_idle_ns = shrink_idle_ns
        self._chunk_mrs = [self.mr]
        self._chunk_bases = [base]
        self._chunk_slots = [slots]
        self._slot_mr = [self.mr] * slots
        self._slot_off = [i * slot_size for i in range(slots)]
        self._spare_spans: List[tuple] = []  # (base, slots) of retired chunks
        self._shrink_after_ns = 0
        self._floor = slots  # structural floor: high-water of ensure_capacity
        self.grow_count = 0
        self.shrink_count = 0
        #: Optional TimeWeightedStat tracking capacity (set by the owner).
        self.capacity_stat = None

    @property
    def elastic(self) -> bool:
        return self._grow_cb is not None

    def offset(self, slot: int) -> int:
        return self._slot_off[slot]

    def mr_of(self, slot: int):
        return self._slot_mr[slot]

    def outstanding(self) -> int:
        """Slots currently acquired (posted or holding an in-flight reply)."""
        return self.capacity - len(self.free._items)

    # -- acquire / release ------------------------------------------------
    def acquire(self) -> Event:
        """Event yielding a free slot.

        Under occupancy pressure an elastic ring first doubles its capacity
        so the caller never parks; a ring with free slots (or no grow_cb)
        does exactly what ``free.get()`` always did.
        """
        if self._grow_cb is not None and not self.free._items \
                and self.capacity < self._max_slots:
            self._grow()
        return self.free.get()

    def release(self, slot: int) -> None:
        self.free.put(slot)
        if len(self._chunk_mrs) > 1 and self.sim.now >= self._shrink_after_ns:
            self._try_shrink()

    def ensure_capacity(self, needed: int) -> None:
        """Structural growth: keep capacity ahead of the attached-QP count.

        Called at attach time, so sizing is deterministic in the wiring and
        a pool that never sees more peers than its initial depth performs
        zero growth work.
        """
        if needed > self._floor:
            self._floor = needed
        while self.capacity < needed and self._grow_cb is not None \
                and self.capacity < self._max_slots:
            self._grow()

    # -- internals --------------------------------------------------------
    def _grow(self) -> None:
        add = min(self.capacity, self._max_slots - self.capacity)
        if add <= 0:
            return
        base = None
        for i, (spare_base, spare_slots) in enumerate(self._spare_spans):
            if spare_slots == add:
                base = spare_base
                del self._spare_spans[i]
                break
        if base is None:
            base = self._grow_cb(add * self.slot_size)
        chunk = len(self._chunk_mrs)
        mr = self.endpoint.register_mr(
            self.device, base, add * self.slot_size,
            access=AccessFlags.ALL, name=f"{self.name}.g{chunk}"
        )
        self._chunk_mrs.append(mr)
        self._chunk_bases.append(base)
        self._chunk_slots.append(add)
        first = self.capacity
        self._slot_mr.extend([mr] * add)
        off = self._slot_off
        for i in range(add):
            off.append(i * self.slot_size)
            self.free.put(first + i)
        self.capacity += add
        self.grow_count += 1
        self._shrink_after_ns = self.sim.now + self._shrink_idle_ns
        if self.capacity_stat is not None:
            self.capacity_stat.update(float(self.capacity))

    def _try_shrink(self) -> None:
        """Retire the newest chunk if it sat fully idle for an epoch."""
        self._shrink_after_ns = self.sim.now + self._shrink_idle_ns
        first = self.capacity - self._chunk_slots[-1]
        if first < max(self._floor, self.initial_slots):
            return
        free_items = self.free._items
        idle = [s for s in free_items if s >= first]
        if len(idle) < self._chunk_slots[-1]:
            return  # chunk still has acquired slots; re-check next epoch
        for s in idle:
            free_items.remove(s)
        mr = self._chunk_mrs.pop()
        spare_base = self._chunk_bases.pop()
        n = self._chunk_slots.pop()
        del self._slot_mr[first:]
        del self._slot_off[first:]
        self.capacity = first
        self._spare_spans.append((spare_base, n))
        self.endpoint.deregister_mr(mr)
        self.shrink_count += 1
        if self.capacity_stat is not None:
            self.capacity_stat.update(float(self.capacity))


class _CreditGate:
    """Client half of credit-based flow control.

    Tracks the receive-credit window granted by the server (piggybacked on
    reply immediate data).  ``take`` is pure bookkeeping while credits are
    available — no event is created, keeping the uncontended path's dispatch
    sequence byte-identical — and returns an Event to park on at zero.
    Waiters are woken FIFO as replies return credits.
    """

    __slots__ = ("sim", "window", "available", "stalls", "_waiters", "_name")

    def __init__(self, sim, window: int, name: str):
        self.sim = sim
        self.window = window
        self.available = window
        self.stalls = 0
        self._waiters: deque = deque()
        self._name = name

    def take(self) -> Optional[Event]:
        """Consume one credit; returns None, or an Event to yield when dry."""
        if self.available > 0 and not self._waiters:
            self.available -= 1
            return None
        self.stalls += 1
        ev = Event(self.sim, name=self._name)
        self._waiters.append(ev)
        return ev

    def refund(self) -> None:
        """Return a credit whose send never reached the server."""
        self.available += 1
        if self._waiters:
            self._wake()

    def on_reply(self, grant: Optional[int]) -> None:
        """Account one completed call; adopt a changed server grant."""
        credit = 1
        if grant is not None and grant != self.window:
            credit += grant - self.window  # window moved; may be negative
            self.window = grant
        self.available += credit
        if self._waiters:
            self._wake()

    def _wake(self) -> None:
        waiters = self._waiters
        while self.available > 0 and waiters:
            ev = waiters.popleft()
            if ev.triggered:
                continue
            self.available -= 1
            ev.succeed(None)


class RpcServer:
    """Serves registered methods to any number of connected clients.

    Handlers are either plain callables ``handler(request) -> response`` or
    generator functions ``handler(request) -> (yield ...)`` when the handler
    itself needs simulated time (e.g. touching a memory device).

    With a ``grow_cb`` the receive/response rings form an elastic shared
    pool sized by the attached-QP count (see :class:`_BufferRing`); with
    ``credits=True`` every reply's immediate data carries a receive-credit
    grant for the calling client.
    """

    def __init__(
        self,
        endpoint: RdmaEndpoint,
        device: "MemoryDevice",
        base: int,
        num_buffers: int = DEFAULT_RING_SLOTS,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
        name: str = "",
        grow_cb: Optional[Callable[[int], int]] = None,
        credits: bool = False,
        max_slots: int = DEFAULT_MAX_RING_SLOTS,
        shrink_idle_ns: int = DEFAULT_SHRINK_IDLE_NS,
    ):
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.name = name or f"{endpoint.name}.rpc"
        self._handlers: Dict[str, Callable] = {}
        # Receive pool + response staging ring share the device window.
        span = num_buffers * buffer_size
        self._recv_ring = _BufferRing(endpoint, device, base, num_buffers, buffer_size,
                                      f"{self.name}.rx", grow_cb=grow_cb,
                                      max_slots=max_slots, shrink_idle_ns=shrink_idle_ns)
        self._resp_ring = _BufferRing(endpoint, device, base + span, num_buffers, buffer_size,
                                      f"{self.name}.tx", grow_cb=grow_cb,
                                      max_slots=max_slots, shrink_idle_ns=shrink_idle_ns)
        self.buffer_size = buffer_size
        self.credits = credits
        self._qps: List[QueuePair] = []
        self._peer_qps: Dict[str, QueuePair] = {}
        self._qp_state: Dict[QueuePair, str] = {}  # "live" | "parking" | "parked"
        self.requests = self.sim.metrics.counter(f"{self.name}.requests")
        self.reclaims = self.sim.metrics.counter(f"{self.name}.reclaims")
        # Shared-pool gauges: acquired receive slots and total capacity
        # (exported through repro.obs as gengar_*_pool_* with _peak).
        metrics = self.sim.metrics
        self.pool_occupancy = metrics.level(f"{self.name}.pool.occupancy")
        self.pool_capacity = metrics.level(f"{self.name}.pool.capacity",
                                           initial=float(num_buffers))
        self._recv_ring.capacity_stat = self.pool_capacity
        # Precomputed: one handler process is spawned per request.
        self._handler_name = f"{self.name}.handler"

    def register(self, method: str, handler: Callable) -> None:
        """Expose ``handler`` under ``method``."""
        self._handlers[method] = handler

    def serve(self, qp: QueuePair, peer: Optional[str] = None) -> None:
        """Start serving requests arriving on ``qp`` (one loop per client).

        ``peer`` names the remote for later :meth:`reclaim_peer` calls (the
        lease/crash reclamation sweeps key on client names).  On an elastic
        pool, attaching keeps capacity ahead of the QP count: each serve
        loop holds at most one posted slot, so ``qps + 1`` slots guarantee
        the slot-exhaustion wedge cannot occur by construction.
        """
        self._qps.append(qp)
        self._qp_state[qp] = "live"
        if peer is not None:
            self._peer_qps[peer] = qp
        if self._recv_ring.elastic:
            needed = len(self._qps) + 1
            self._recv_ring.ensure_capacity(needed)
            self._resp_ring.ensure_capacity(needed)
        self.sim.spawn(self._serve_loop(qp), name=f"{self.name}.loop")

    def would_overcommit(self) -> bool:
        """True if admitting one more QP would exceed a *fixed* receive pool.

        Elastic pools never overcommit (``serve`` grows them ahead of the
        QP count); a fixed pool with every slot claimed by an attached QP
        would wedge under concurrent load, so callers should reject the
        attach instead (see ``repro.core.errors.RingSaturatedError``).
        """
        ring = self._recv_ring
        return (not ring.elastic) and len(self._qps) + 1 > ring.capacity

    def reclaim_peer(self, peer: str) -> bool:
        """Return a dead peer's posted receive slot to the shared pool.

        Called from the lease/crash reclamation sweeps: a fenced or crashed
        client can never complete the receive posted on its QP, so the slot
        is withdrawn (QP flush semantics) and the serve loop parks until new
        demand — a re-attach over the same QP — actually arrives.
        """
        qp = self._peer_qps.get(peer)
        if qp is None or self._qp_state.get(qp) != "live":
            return False
        self._qp_state[qp] = "parking"
        qp.recv_cq.push(WorkCompletion(wr_id=-1, opcode=Opcode.RECV,
                                       context={"rpc_park": True}))
        self.reclaims.add()
        return True

    def pool_stats(self) -> dict:
        """Accounting snapshot for audits (chaos no-slot-leak checks)."""
        rx = self._recv_ring
        parked = sum(1 for s in self._qp_state.values() if s != "live")
        return {
            "qps": len(self._qps),
            "parked": parked,
            "capacity": rx.capacity,
            "free": len(rx.free._items),
            "outstanding": rx.outstanding(),
            "grows": rx.grow_count,
            "shrinks": rx.shrink_count,
            "peak_occupancy": self.pool_occupancy.peak,
            "tx_capacity": self._resp_ring.capacity,
            "tx_outstanding": self._resp_ring.outstanding(),
        }

    def _credit_grant(self) -> Optional[int]:
        """Per-reply receive-credit grant (None keeps imm_data empty)."""
        if not self.credits:
            return None
        grant = self._recv_ring.capacity // (len(self._qps) or 1)
        initial = self._recv_ring.initial_slots
        return grant if grant > initial else initial

    # ------------------------------------------------------------------
    def _serve_loop(self, qp: QueuePair) -> Generator[Any, Any, None]:
        ring = self._recv_ring
        occupancy = self.pool_occupancy
        state = self._qp_state
        posted = -1
        while True:
            if posted < 0:
                posted = yield ring.acquire()
                occupancy.adjust(1.0)
                qp.post_recv(ring.mr_of(posted), ring.offset(posted),
                             self.buffer_size, wr_id=posted)
            wc = yield qp.recv_cq.next_event()
            ctx = wc.context
            if ctx and "rpc_park" in ctx:
                if state.get(qp) == "parking":
                    if qp.cancel_recv(posted, ring.mr_of(posted)):
                        ring.release(posted)
                        occupancy.adjust(-1.0)
                        posted = -1
                        state[qp] = "parked"
                        yield qp.recv_demand()
                    # cancel failing means a real message consumed our
                    # posted slot first; its completion is already queued.
                    state[qp] = "live"
                continue
            if wc.opcode is not Opcode.RECV:  # our own response completions
                continue
            raw = wc.recv_mr.peek(wc.recv_offset, wc.byte_len)
            ring.release(wc.wr_id)
            occupancy.adjust(-1.0)
            posted = -1
            # Handle concurrently so a slow handler doesn't block the ring.
            self.sim.spawn(self._handle(qp, raw), name=self._handler_name)

    def _handle(self, qp: QueuePair, raw: bytes) -> Generator[Any, Any, None]:
        req_id, method, request = pickle.loads(raw)
        self.requests.add()
        rec = self.sim.spans
        t0 = self.sim.now if rec is not None else 0
        handler = self._handlers.get(method)
        if handler is None:
            reply = ("err", f"no such method: {method}")
        else:
            try:
                result = handler(request)
                if hasattr(result, "send"):  # generator-style handler
                    result = yield from result
                reply = ("ok", result)
            except Exception as exc:  # noqa: BLE001 - faults travel to caller
                reply = ("err", f"{type(exc).__name__}: {exc}")
        payload = _encode((req_id, reply), self.buffer_size)
        ring = self._resp_ring
        slot = yield ring.acquire()
        offset = ring.offset(slot)
        mr = ring.mr_of(slot)
        mr.poke(offset, payload)
        wr = WorkRequest(
            opcode=Opcode.SEND,
            local_mr=mr,
            local_offset=offset,
            length=len(payload),
            imm_data=self._credit_grant(),
        )
        done = qp.post_send(wr)
        yield done
        ring.release(slot)
        if rec is not None:
            rec.record(self.name, "rpc." + method, t0, ok=reply[0] == "ok")


class RpcClient:
    """Issues calls to one :class:`RpcServer` over a connected QP.

    Supports multiple outstanding calls; responses are demultiplexed by
    request id so concurrent client processes can share one instance.  With
    ``credits=True`` a call first takes a receive credit (granted back by
    the server on every reply) and parks at zero instead of overrunning the
    server's pool.
    """

    def __init__(
        self,
        endpoint: RdmaEndpoint,
        qp: QueuePair,
        device: "MemoryDevice",
        base: int,
        num_buffers: int = DEFAULT_RING_SLOTS,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
        name: str = "",
        credits: bool = False,
    ):
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.qp = qp
        self.name = name or f"{endpoint.name}.rpcc"
        self.buffer_size = buffer_size
        span = num_buffers * buffer_size
        self._recv_ring = _BufferRing(endpoint, device, base, num_buffers, buffer_size, f"{self.name}.rx")
        self._send_ring = _BufferRing(endpoint, device, base + span, num_buffers, buffer_size, f"{self.name}.tx")
        self._credits = _CreditGate(self.sim, num_buffers, f"{self.name}.credit") \
            if credits else None
        self._pending: Dict[int, Event] = {}
        self._demux_running = False
        # Precomputed: every call creates one reply event.
        self._reply_event_name = f"{self.name}.req"

    def credit_stats(self) -> Optional[dict]:
        """Flow-control snapshot, or None when credits are off."""
        gate = self._credits
        if gate is None:
            return None
        return {"window": gate.window, "available": gate.available,
                "stalls": gate.stalls, "waiters": len(gate._waiters)}

    # ------------------------------------------------------------------
    def call(self, method: str, request: Any = None) -> Generator[Any, Any, Any]:
        """Process helper: invoke ``method`` and return its result.

        Raises :class:`RpcError` if the remote handler failed.
        """
        req_id = next(_req_ids_for(self.sim))
        payload = _encode((req_id, method, request), self.buffer_size)

        # Admission: take a receive credit first, parking at zero (pure
        # decrement while credits are available).
        gate = self._credits
        if gate is not None:
            stall = gate.take()
            if stall is not None:
                yield stall

        # Post a reply buffer *before* sending, so the response can never
        # find the receive queue empty.
        recv_slot = yield self._recv_ring.free.get()
        self.qp.post_recv(self._recv_ring.mr, self._recv_ring.offset(recv_slot),
                          self.buffer_size, wr_id=recv_slot)

        reply_event = self.sim.event(name=self._reply_event_name)
        self._pending[req_id] = reply_event
        if not self._demux_running:
            self._demux_running = True
            self.sim.spawn(self._demux_loop(), name=f"{self.name}.demux")

        send_slot = yield self._send_ring.free.get()
        offset = self._send_ring.offset(send_slot)
        self._send_ring.mr.poke(offset, payload)
        wr = WorkRequest(
            opcode=Opcode.SEND,
            local_mr=self._send_ring.mr,
            local_offset=offset,
            length=len(payload),
        )
        send_done = self.qp.post_send(wr)
        send_wc = yield send_done
        self._send_ring.free.put(send_slot)
        if not send_wc.ok:
            self._pending.pop(req_id, None)
            # Flush the reply buffer posted for this call (QP error-state
            # recv flush): the dead peer can never consume it, and leaking
            # one slot per failed call would wedge every later call on
            # this client once the ring runs dry.
            if self.qp.cancel_recv(recv_slot, self._recv_ring.mr):
                self._recv_ring.free.put(recv_slot)
            # Likewise hand the credit back: the server never saw the send,
            # so no reply will ever return it.
            if gate is not None:
                gate.refund()
            raise RpcError(f"rpc transport failed: {send_wc.status.value}")

        status, result = yield reply_event
        if status == "err":
            raise RpcError(result)
        return result

    def _demux_loop(self) -> Generator[Any, Any, None]:
        while True:
            wc = yield self.qp.recv_cq.next_event()
            if wc.opcode is not Opcode.RECV:
                continue
            raw = self._recv_ring.mr.peek(wc.recv_offset, wc.byte_len)
            self._recv_ring.free.put(wc.wr_id)
            gate = self._credits
            if gate is not None:
                gate.on_reply(wc.imm_data)
            req_id, reply = pickle.loads(raw)
            waiter = self._pending.pop(req_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(reply)
