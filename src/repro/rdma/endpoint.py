"""Per-node verbs context and connection management."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.memory import MemoryDevice
    from repro.hardware.network import Fabric
    from repro.hardware.nic import Nic
    from repro.sim.kernel import Simulator

from repro.rdma.cq import CompletionQueue
from repro.rdma.mr import AccessFlags, MemoryRegion
from repro.rdma.qp import RETRY_TIMEOUT_NS, QpError, QueuePair


class RdmaEndpoint:
    """One node's RDMA context: its NIC, registered regions, and QPs.

    Mirrors an ibv context + protection domain.  Regions registered here are
    remotely addressable through this endpoint by rkey.
    """

    def __init__(self, sim: "Simulator", name: str, nic: "Nic", fabric: "Fabric"):
        self.sim = sim
        self.name = name
        self.nic = nic
        self.fabric = fabric
        fabric.attach(name)
        self._mrs: Dict[int, MemoryRegion] = {}
        #: Cleared when the node "crashes"; verbs targeting a dead endpoint
        #: complete with RETRY_EXCEEDED after the timeout the NIC would take.
        self.alive = True
        #: Retransmission budget this endpoint's verbs spend against a dead
        #: peer before RETRY_EXCEEDED (see repro.rdma.qp.RETRY_TIMEOUT_NS).
        self.retry_timeout_ns = RETRY_TIMEOUT_NS
        #: Target-side serialization point for inbound atomics.
        self.atomic_gate = Resource(sim, capacity=1, name=f"{name}.atomics")
        self.qps: list[QueuePair] = []

    # ------------------------------------------------------------------
    def register_mr(
        self,
        device: "MemoryDevice",
        base: int,
        length: int,
        access: AccessFlags = AccessFlags.ALL,
        name: str = "",
    ) -> MemoryRegion:
        """Register ``[base, base+length)`` of ``device`` for RDMA access."""
        mr = MemoryRegion(device, base, length, access=access, name=name)
        self._mrs[mr.rkey] = mr
        return mr

    def deregister_mr(self, mr: MemoryRegion) -> None:
        """Remove a region; subsequent remote access faults."""
        self._mrs.pop(mr.rkey, None)

    def resolve_rkey(self, rkey: Optional[int]) -> Optional[MemoryRegion]:
        """Look up an inbound rkey (None if unknown — a protection fault)."""
        if rkey is None:
            return None
        return self._mrs.get(rkey)

    def create_cq(self, name: str = "") -> CompletionQueue:
        """Create a completion queue on this endpoint."""
        return CompletionQueue(self.sim, name=name or f"{self.name}.cq")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RdmaEndpoint {self.name} mrs={len(self._mrs)} qps={len(self.qps)}>"


def connect(a: RdmaEndpoint, b: RdmaEndpoint) -> Tuple[QueuePair, QueuePair]:
    """Create a reliable connection between two endpoints.

    Returns ``(qp_at_a, qp_at_b)``.  Each QP gets its own send CQ and recv
    CQ, so consumers of receive completions (RPC loops, proxy doorbells)
    never contend with the poster's own send completions.
    """
    if a is b:
        raise QpError("cannot connect an endpoint to itself")
    qp_a = QueuePair(
        a,
        send_cq=a.create_cq(f"{a.name}->{b.name}.scq"),
        recv_cq=a.create_cq(f"{a.name}->{b.name}.rcq"),
        name=f"{a.name}->{b.name}",
    )
    qp_b = QueuePair(
        b,
        send_cq=b.create_cq(f"{b.name}->{a.name}.scq"),
        recv_cq=b.create_cq(f"{b.name}->{a.name}.rcq"),
        name=f"{b.name}->{a.name}",
    )
    qp_a.remote = qp_b
    qp_b.remote = qp_a
    a.qps.append(qp_a)
    b.qps.append(qp_b)
    return qp_a, qp_b
