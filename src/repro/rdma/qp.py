"""Reliable-connected queue pairs: the verb state machines.

Each verb is executed as a simulation process that walks the same phases the
real protocol does — initiator NIC, fabric, target NIC, target memory,
response — copying real bytes at the placement step.  One-sided verbs touch
only the target's NIC and memory device; no target-side process is scheduled,
preserving the CPU-bypass property Gengar builds on.

Ordering: a per-QP send gate serializes WQEs through local DMA and fabric
injection, so two writes posted back-to-back are placed in order at the
target (RC ordering).  Response phases overlap, so reads still pipeline.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.primitives import Event
from repro.sim.resources import Resource, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdma.endpoint import RdmaEndpoint

from repro.rdma.mr import AccessFlags, MemoryRegion, MrError
from repro.rdma.wr import (
    ATOMIC_OPERAND_BYTES,
    ATOMIC_REQUEST_BYTES,
    ATOMIC_RESPONSE_BYTES,
    Opcode,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)

#: Wire payload of a READ request (remote address + length + rkey).
READ_REQUEST_BYTES = 16
#: Default modelled RC retransmission timeout before a dead peer surfaces as
#: RETRY_EXCEEDED (real defaults are much larger; this keeps tests fast).
#: Per-endpoint override: ``endpoint.retry_timeout_ns``, wired from
#: ``GengarConfig.retry_timeout_ns`` by the pool bootstrap.
RETRY_TIMEOUT_NS = 50_000

def _qp_ids_for(sim):
    """Per-simulator QP numbering (see mr._key_counter_for for why)."""
    counter = getattr(sim, "_qp_id_counter", None)
    if counter is None:
        counter = itertools.count(1)
        sim._qp_id_counter = counter
    return counter


class QpError(Exception):
    """Invalid queue-pair usage (posting errors, unconnected QP)."""


class _RecvDescriptor:
    """One posted receive buffer."""

    __slots__ = ("wr_id", "mr", "offset", "length")

    def __init__(self, wr_id: int, mr: MemoryRegion, offset: int, length: int):
        self.wr_id = wr_id
        self.mr = mr
        self.offset = offset
        self.length = length


class QueuePair:
    """One end of a reliable connection.

    Created via :func:`repro.rdma.endpoint.connect`; not directly.
    """

    def __init__(self, endpoint: "RdmaEndpoint", send_cq, recv_cq, name: str = ""):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.qp_num = next(_qp_ids_for(self.sim))
        self.name = name or f"qp{self.qp_num}"
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.remote: Optional["QueuePair"] = None
        self._recv_queue: Store = Store(self.sim, name=f"{self.name}.rq")
        self._send_gate = Resource(self.sim, capacity=1, name=f"{self.name}.sq")
        # Precomputed once: posting is on the hot path of every verb, so
        # avoid a per-WR f-string for the completion-event / process names.
        self._wr_event_name = f"{self.name}.wr"
        self._exec_name = f"{self.name}.exec"

    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        return self.remote is not None

    def post_recv(self, mr: MemoryRegion, offset: int = 0, length: Optional[int] = None, wr_id: int = 0) -> None:
        """Post a receive buffer for an incoming SEND (or WRITE_IMM notice)."""
        if length is None:
            length = mr.length - offset
        mr.check(offset, length, AccessFlags.LOCAL)
        self._recv_queue.put(_RecvDescriptor(wr_id, mr, offset, length))

    def cancel_recv(self, wr_id: int, mr: MemoryRegion) -> bool:
        """Withdraw a posted receive buffer that can no longer be consumed.

        Models the recv-flush a real QP performs on entering the error
        state (``WR_FLUSH_ERR``): after a send fails with RETRY_EXCEEDED
        the peer is gone, so a reply buffer posted for its response would
        otherwise sit in the receive queue forever.  Returns False if the
        buffer was already consumed by an earlier incoming message.
        """
        for desc in self._recv_queue._items:
            if desc.wr_id == wr_id and desc.mr is mr:
                return self._recv_queue.remove(desc)
        return False

    def recv_demand(self):
        """Event firing when a sender is (or becomes) parked waiting for
        this QP to post a receive buffer.

        The elastic RPC layer uses this to re-arm a reclaimed QP lazily: a
        serve loop parked by :meth:`RpcServer.reclaim_peer` holds no pool
        slot until actual demand — a re-attach over the same QP — arrives.
        """
        return self._recv_queue.demand()

    def _validate_send(self, wr: WorkRequest) -> None:
        if wr.opcode is Opcode.RECV:
            raise QpError("post RECV via post_recv()")
        if wr.inline_data is not None and not self.endpoint.nic.is_inline(len(wr.inline_data)):
            raise QpError(
                f"inline payload of {len(wr.inline_data)} bytes exceeds the "
                f"NIC inline limit {self.endpoint.nic.spec.max_inline_bytes}"
            )
        if wr.is_atomic and wr.length not in (0, ATOMIC_OPERAND_BYTES):
            raise QpError("atomics operate on exactly 8 bytes")

    def post_send(self, wr: WorkRequest) -> Event:
        """Post a send-queue work request.

        Returns an event that fires with the :class:`WorkCompletion` when the
        verb finishes; the same completion is also pushed to ``send_cq``.
        Protocol-level failures surface as completions with a non-success
        status (like real verbs), while local usage errors raise
        :class:`QpError` immediately.
        """
        if not self.is_connected:
            raise QpError(f"{self.name} is not connected")
        self._validate_send(wr)
        done = self.sim.event(name=self._wr_event_name)
        self.sim.spawn(self._execute(wr, done), name=self._exec_name)
        return done

    def post_send_many(self, wrs) -> list[Event]:
        """Doorbell batching: post a list of WRs with one call.

        Virtual-time semantics are *identical* to calling :meth:`post_send`
        per WR in order — each WR is still one WQE walking the full verb
        state machine, serialized through the send gate in posting order
        with response phases overlapping (RC pipelining).  What batching
        buys is host-side (wall-clock) cost: validation, connectivity
        checks, and the doorbell are paid once for the list.  The whole
        list is validated before any WR is posted, so a usage error leaves
        the send queue untouched.
        """
        if not self.is_connected:
            raise QpError(f"{self.name} is not connected")
        wrs = list(wrs)
        for wr in wrs:
            self._validate_send(wr)
        sim = self.sim
        ev_name = self._wr_event_name
        events: list[Event] = [sim.event(name=ev_name) for _ in wrs]
        # One kernel call arms every WR's verb process (batched doorbell);
        # bootstrap order — and thus virtual-time behaviour — is identical
        # to spawning one at a time.
        sim.spawn_many(
            [self._execute(wr, done) for wr, done in zip(wrs, events)],
            name=self._exec_name,
        )
        return events

    # ------------------------------------------------------------------
    # Verb execution
    # ------------------------------------------------------------------
    def _complete(self, wr: WorkRequest, done: Event, status: WcStatus, **fields: Any) -> None:
        wc = WorkCompletion(wr_id=wr.wr_id, opcode=wr.opcode, status=status, **fields)
        wc.timestamp = self.sim.now
        self.send_cq.push(wc)
        done.succeed(wc)

    def _execute(self, wr: WorkRequest, done: Event) -> Generator[Any, Any, None]:
        local = self.endpoint
        remote_ep = self.remote.endpoint  # type: ignore[union-attr]

        # ---- Initiator phase: gather payload, inject into the fabric -----
        payload: bytes = b""
        request_wire_bytes = 0
        with (yield self._send_gate.request()):
            yield from local.nic.tx_process()
            try:
                payload = yield from self._gather_payload(wr)
            except MrError:
                self._complete(wr, done, WcStatus.LOCAL_PROTECTION_ERROR)
                return
            request_wire_bytes = self._request_wire_bytes(wr, payload)
            yield from local.fabric.unicast(local.name, remote_ep.name, request_wire_bytes)

        # ---- Target phase ------------------------------------------------
        if not remote_ep.alive:
            # The request is retransmitted into silence until the QP's
            # retry budget expires.
            yield self.sim.sleep(local.retry_timeout_ns)
            self._complete(wr, done, WcStatus.RETRY_EXCEEDED)
            return
        yield from remote_ep.nic.rx_process()
        try:
            response_bytes = yield from self._apply_at_target(wr, payload, remote_ep, done)
        except _RemoteFault as fault:
            self._complete(wr, done, fault.status)
            return
        if done.triggered:  # _apply_at_target completed with an error
            return

        # ---- Response / ack phase ----------------------------------------
        yield from local.fabric.unicast(remote_ep.name, local.name, response_bytes[0])
        yield from local.nic.rx_process()

        if wr.opcode is Opcode.RDMA_READ:
            try:
                wr.local_mr.check(wr.local_offset, wr.length, AccessFlags.LOCAL)  # type: ignore[union-attr]
            except (MrError, AttributeError):
                self._complete(wr, done, WcStatus.LOCAL_PROTECTION_ERROR)
                return
            # Place the fetched bytes into local registered memory (DMA).
            yield from wr.local_mr.write(wr.local_offset, response_bytes[1])  # type: ignore[union-attr]
            self._complete(wr, done, WcStatus.SUCCESS, byte_len=wr.length)
        elif wr.is_atomic:
            self._complete(
                wr, done, WcStatus.SUCCESS,
                byte_len=ATOMIC_OPERAND_BYTES,
                atomic_value=int.from_bytes(response_bytes[1], "little"),
            )
        else:
            self._complete(wr, done, WcStatus.SUCCESS, byte_len=len(payload))

    def _gather_payload(self, wr: WorkRequest) -> Generator[Any, Any, bytes]:
        """Collect the outbound payload (inline or local DMA read)."""
        if wr.opcode in (Opcode.RDMA_READ, Opcode.ATOMIC_CAS, Opcode.ATOMIC_FAA):
            return b""
        if wr.inline_data is not None:
            return wr.inline_data
        if wr.local_mr is None:
            return b""
        if self.endpoint.nic.is_inline(wr.length):
            # Small payloads are copied into the WQE by the CPU; no DMA read.
            return wr.local_mr.peek(wr.local_offset, wr.length)
        data = yield from wr.local_mr.read(wr.local_offset, wr.length)
        return data

    @staticmethod
    def _request_wire_bytes(wr: WorkRequest, payload: bytes) -> int:
        if wr.opcode is Opcode.RDMA_READ:
            return READ_REQUEST_BYTES
        if wr.is_atomic:
            return ATOMIC_REQUEST_BYTES
        return len(payload)

    def _apply_at_target(
        self, wr: WorkRequest, payload: bytes, remote_ep: "RdmaEndpoint", done: Event
    ) -> Generator[Any, Any, tuple[int, bytes]]:
        """Execute the target-side effect; returns (response_wire_bytes, data)."""
        if wr.opcode is Opcode.SEND:
            desc: _RecvDescriptor = yield self.remote._recv_queue.get()  # type: ignore[union-attr]
            if len(payload) > desc.length:
                # Buffer too small: receiver sees a local error, sender a
                # remote-invalid-request; keep it simple and fail the sender.
                raise _RemoteFault(WcStatus.REMOTE_INVALID_REQUEST)
            yield from desc.mr.write(desc.offset, payload)
            self.remote.recv_cq.push(  # type: ignore[union-attr]
                WorkCompletion(
                    wr_id=desc.wr_id,
                    opcode=Opcode.RECV,
                    byte_len=len(payload),
                    imm_data=wr.imm_data,
                    recv_mr=desc.mr,
                    recv_offset=desc.offset,
                    context={"src_qp": self.qp_num},
                )
            )
            return (0, b"")

        # One-sided verbs: resolve the remote region through the target MPT.
        mr = remote_ep.resolve_rkey(wr.remote_rkey)
        if mr is None:
            raise _RemoteFault(WcStatus.REMOTE_ACCESS_ERROR)

        if wr.opcode is Opcode.RDMA_READ:
            try:
                mr.check(wr.remote_offset, wr.length, AccessFlags.REMOTE_READ)
            except MrError:
                raise _RemoteFault(WcStatus.REMOTE_ACCESS_ERROR) from None
            combiner = (getattr(remote_ep, "read_combiner", None)
                        if wr.combine is not None else None)
            if combiner is not None:
                # Adjacent reads rung with one doorbell: the target services
                # the whole group as a single device transfer and each WR
                # slices its range from it.  Wire cost is unchanged — every
                # member still returns its own response bytes.
                data = yield from combiner.fetch(mr, wr)
            else:
                data = yield from mr.read(wr.remote_offset, wr.length, need=AccessFlags.REMOTE_READ)
            return (wr.length, data)

        if wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_IMM):
            try:
                mr.check(wr.remote_offset, len(payload), AccessFlags.REMOTE_WRITE)
            except MrError:
                raise _RemoteFault(WcStatus.REMOTE_ACCESS_ERROR) from None
            yield from mr.write(wr.remote_offset, payload, need=AccessFlags.REMOTE_WRITE)
            if wr.opcode is Opcode.RDMA_WRITE_IMM:
                # Consumes a posted RECV at the target and raises a completion
                # there — after the data is globally visible (RC ordering).
                desc = yield self.remote._recv_queue.get()  # type: ignore[union-attr]
                self.remote.recv_cq.push(  # type: ignore[union-attr]
                    WorkCompletion(
                        wr_id=desc.wr_id,
                        opcode=Opcode.RECV,
                        byte_len=len(payload),
                        imm_data=wr.imm_data,
                        context={"src_qp": self.qp_num, "write_imm": True},
                    )
                )
            return (0, b"")

        if wr.is_atomic:
            try:
                mr.check(wr.remote_offset, ATOMIC_OPERAND_BYTES, AccessFlags.REMOTE_ATOMIC)
            except MrError:
                raise _RemoteFault(WcStatus.REMOTE_ACCESS_ERROR) from None
            # The target NIC serializes atomics; model with a per-endpoint gate.
            with (yield remote_ep.atomic_gate.request()):
                old_bytes = yield from mr.read(
                    wr.remote_offset, ATOMIC_OPERAND_BYTES, need=AccessFlags.REMOTE_ATOMIC
                )
                old = int.from_bytes(old_bytes, "little")
                if wr.opcode is Opcode.ATOMIC_CAS:
                    new = wr.swap if old == wr.compare else old
                else:  # ATOMIC_FAA
                    new = (old + wr.add) % (1 << 64)
                if new != old:
                    yield from mr.write(
                        wr.remote_offset,
                        new.to_bytes(8, "little"),
                        need=AccessFlags.REMOTE_ATOMIC,
                    )
            return (ATOMIC_RESPONSE_BYTES, old_bytes)

        raise QpError(f"unsupported opcode {wr.opcode}")  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover
        peer = self.remote.name if self.remote else "∅"
        return f"<QP {self.name} ({self.endpoint.name} ↔ {peer})>"


class _RemoteFault(Exception):
    """Internal: target-side protection fault, surfaced as a completion."""

    def __init__(self, status: WcStatus):
        super().__init__(status)
        self.status = status
