"""A functional ibverbs-like RDMA layer over the simulated hardware.

This is a faithful-in-structure model of the verbs API that Gengar's
protocols are written against:

* :class:`~repro.rdma.mr.MemoryRegion` — registered windows of a node's
  memory devices, addressed remotely by ``(rkey, offset)``.
* :class:`~repro.rdma.qp.QueuePair` — reliable-connected queue pairs with
  one-sided READ/WRITE/WRITE_WITH_IMM, two-sided SEND/RECV, and 8-byte
  CAS/FAA atomics.  One-sided verbs never involve the target's CPU — only
  its NIC and memory device — exactly the property Gengar's design exploits.
* :class:`~repro.rdma.cq.CompletionQueue` — completion delivery.
* :class:`~repro.rdma.endpoint.RdmaEndpoint` /
  :func:`~repro.rdma.endpoint.connect` — per-node verbs context and the
  connection manager.
* :class:`~repro.rdma.rpc.RpcServer` / :class:`~repro.rdma.rpc.RpcClient`
  — a small two-sided RPC layer used by control planes (allocation,
  metadata); the data plane stays one-sided.

All payloads are real bytes copied between simulated memory devices, so data
integrity is testable end to end.
"""

from repro.rdma.cq import CompletionQueue
from repro.rdma.endpoint import RdmaEndpoint, connect
from repro.rdma.mr import AccessFlags, MemoryRegion, MrError
from repro.rdma.qp import QpError, QueuePair
from repro.rdma.rpc import RpcClient, RpcError, RpcServer
from repro.rdma.wr import Opcode, WcStatus, WorkCompletion, WorkRequest

__all__ = [
    "MemoryRegion",
    "AccessFlags",
    "MrError",
    "QueuePair",
    "QpError",
    "CompletionQueue",
    "RdmaEndpoint",
    "connect",
    "Opcode",
    "WcStatus",
    "WorkRequest",
    "WorkCompletion",
    "RpcServer",
    "RpcClient",
    "RpcError",
]
