"""Work request and work completion types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Opcode(enum.Enum):
    """Verb opcodes supported by the reliable-connected queue pair."""

    SEND = "send"
    RECV = "recv"
    RDMA_READ = "rdma_read"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_IMM = "rdma_write_imm"
    ATOMIC_CAS = "atomic_cas"
    ATOMIC_FAA = "atomic_faa"


class WcStatus(enum.Enum):
    """Completion status, mirroring ibv_wc_status (the subset we can hit)."""

    SUCCESS = "success"
    LOCAL_PROTECTION_ERROR = "local_protection_error"
    REMOTE_ACCESS_ERROR = "remote_access_error"
    REMOTE_INVALID_REQUEST = "remote_invalid_request"
    #: The peer stopped responding (crashed node); maps to IBV_WC_RETRY_EXC_ERR.
    RETRY_EXCEEDED = "retry_exceeded"


#: Wire size of an atomic request (address + compare/swap operands).
ATOMIC_REQUEST_BYTES = 24
#: Wire size of an atomic response (the prior value).
ATOMIC_RESPONSE_BYTES = 8
#: All atomics operate on exactly 8 bytes, like ibverbs.
ATOMIC_OPERAND_BYTES = 8


@dataclass
class WorkRequest:
    """One send-queue work element.

    Exactly one data source is used, depending on opcode:

    * SEND / RDMA_WRITE / RDMA_WRITE_IMM: ``inline_data`` *or*
      (``local_mr``, ``local_offset``, ``length``) naming registered memory
      to DMA out of.
    * RDMA_READ: the destination is (``local_mr``, ``local_offset``) and
      ``length`` bytes are fetched from (``remote_rkey``, ``remote_offset``).
    * ATOMIC_CAS: ``compare`` and ``swap`` (ints, 8 bytes on the wire);
      the prior value is returned in the completion.
    * ATOMIC_FAA: ``add``; prior value returned in the completion.
    """

    opcode: Opcode
    wr_id: int = 0
    # Local buffer (registered memory) view.
    local_mr: Optional[object] = None  # MemoryRegion; object to avoid cycle
    local_offset: int = 0
    length: int = 0
    # Inline payload alternative for small sends/writes.
    inline_data: Optional[bytes] = None
    # Remote target for one-sided verbs.
    remote_rkey: Optional[int] = None
    remote_offset: int = 0
    # Immediate data for RDMA_WRITE_IMM / SEND-with-imm.
    imm_data: Optional[int] = None
    # Atomic operands.
    compare: int = 0
    swap: int = 0
    add: int = 0
    # Read-combining token: RDMA_READ WRs rung with one doorbell whose
    # remote ranges are adjacent may share a group object here; a target
    # with a read combiner installed services the whole group as a single
    # device transfer (see repro.core.server.ReadCombiner).  None (the
    # default) means the WR is serviced individually.
    combine: Optional[object] = None

    def __post_init__(self) -> None:
        if self.inline_data is not None:
            self.length = len(self.inline_data)

    @property
    def is_one_sided(self) -> bool:
        """True for verbs that bypass the target CPU entirely."""
        return self.opcode in (
            Opcode.RDMA_READ,
            Opcode.RDMA_WRITE,
            Opcode.RDMA_WRITE_IMM,
            Opcode.ATOMIC_CAS,
            Opcode.ATOMIC_FAA,
        )

    @property
    def is_atomic(self) -> bool:
        return self.opcode in (Opcode.ATOMIC_CAS, Opcode.ATOMIC_FAA)


@dataclass
class WorkCompletion:
    """One completion-queue entry."""

    wr_id: int
    opcode: Opcode
    status: WcStatus = WcStatus.SUCCESS
    byte_len: int = 0
    imm_data: Optional[int] = None
    #: Prior value for atomics.
    atomic_value: int = 0
    #: Virtual time at which the completion was generated.
    timestamp: int = 0
    #: For RECV completions: where the payload landed.
    recv_mr: Optional[object] = None
    recv_offset: int = 0
    #: Extra context the QP attaches (e.g. source QP for servers).
    context: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS
