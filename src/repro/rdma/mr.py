"""Registered memory regions.

A :class:`MemoryRegion` pins a window ``[base, base + length)`` of a node's
:class:`~repro.hardware.memory.MemoryDevice` and exposes it for local and —
if the access flags allow — remote access.  Remote peers address the region
by ``(rkey, offset)`` where ``offset`` is region-relative, and every access
is bounds- and permission-checked exactly as an RNIC's MTT/MPT would.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.memory import MemoryDevice

def _key_counter_for(sim):
    """Per-simulator lkey/rkey source.

    Keys travel inside pickled RPC payloads (server/ring descriptors), so a
    process-global counter would make a second same-seed run in one process
    pickle slightly larger ints — different wire sizes, different virtual
    times.  Simulator-local numbering keeps identical runs bit-identical.
    """
    counter = getattr(sim, "_mr_key_counter", None)
    if counter is None:
        counter = itertools.count(start=0x1000)
        sim._mr_key_counter = counter
    return counter


class MrError(Exception):
    """Protection or bounds violation on a memory region."""


class AccessFlags(enum.Flag):
    """Subset of ibv_access_flags the protocols need."""

    LOCAL = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_ATOMIC = enum.auto()
    ALL = LOCAL | REMOTE_READ | REMOTE_WRITE | REMOTE_ATOMIC


class MemoryRegion:
    """A registered window of one memory device."""

    def __init__(
        self,
        device: "MemoryDevice",
        base: int,
        length: int,
        access: AccessFlags = AccessFlags.ALL,
        name: str = "",
    ):
        if base < 0 or length <= 0 or base + length > device.capacity:
            raise MrError(
                f"region [{base}, {base + length}) outside device "
                f"{device.name!r} capacity {device.capacity}"
            )
        self.device = device
        self.base = base
        self.length = length
        self.access = access
        keys = _key_counter_for(device.sim)
        self.lkey = next(keys)
        self.rkey = next(keys)
        self.name = name or f"mr-{self.rkey:#x}"

    # ------------------------------------------------------------------
    def check(self, offset: int, nbytes: int, need: AccessFlags) -> None:
        """Validate an access or raise :class:`MrError`."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.length:
            raise MrError(
                f"{self.name}: access [{offset}, {offset + nbytes}) outside "
                f"region length {self.length}"
            )
        if need & ~self.access:
            raise MrError(f"{self.name}: access flags {need} not granted ({self.access})")

    # ------------------------------------------------------------------
    # Timed access (device queuing applies) — used for DMA on data paths.
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int, need: AccessFlags = AccessFlags.LOCAL) -> Generator[Any, Any, bytes]:
        """Timed read of ``nbytes`` at region offset ``offset``."""
        self.check(offset, nbytes, need)
        data = yield from self.device.read(self.base + offset, nbytes)
        return data

    def write(self, offset: int, payload: bytes, need: AccessFlags = AccessFlags.LOCAL) -> Generator[Any, Any, None]:
        """Timed write of ``payload`` at region offset ``offset``."""
        self.check(offset, len(payload), need)
        yield from self.device.write(self.base + offset, payload)

    # ------------------------------------------------------------------
    # Untimed access — for setup, assertions, and costs accounted elsewhere.
    # ------------------------------------------------------------------
    def peek(self, offset: int, nbytes: int) -> bytes:
        self.check(offset, nbytes, AccessFlags.LOCAL)
        return self.device.peek(self.base + offset, nbytes)

    def poke(self, offset: int, payload: bytes) -> None:
        self.check(offset, len(payload), AccessFlags.LOCAL)
        self.device.poke(self.base + offset, payload)

    # ------------------------------------------------------------------
    def read_u64(self, offset: int) -> int:
        """Untimed read of an 8-byte little-endian word (atomics helper)."""
        return int.from_bytes(self.peek(offset, 8), "little")

    def write_u64(self, offset: int, value: int) -> None:
        """Untimed write of an 8-byte little-endian word (atomics helper)."""
        self.poke(offset, (value % (1 << 64)).to_bytes(8, "little"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MR {self.name} rkey={self.rkey:#x} len={self.length}>"
