"""Completion queues."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List

from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.rdma.wr import WorkCompletion


class CompletionQueue:
    """Delivery channel for work completions.

    Supports both polling (``poll``) and process-blocking consumption
    (``yield from cq.wait()``), mirroring busy-poll vs event-mode usage of a
    real CQ.
    """

    def __init__(self, sim: "Simulator", name: str = "cq"):
        self.sim = sim
        self.name = name
        self._store = Store(sim, name=name)
        self.completions = sim.metrics.counter(f"{name}.completions")

    def push(self, wc: WorkCompletion) -> None:
        """Deliver a completion (called by the QP machinery)."""
        wc.timestamp = self.sim.now
        self.completions.add()
        self._store.put(wc)

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Drain up to ``max_entries`` completions without blocking."""
        out: List[WorkCompletion] = []
        while len(out) < max_entries:
            ok, wc = self._store.try_get()
            if not ok:
                break
            out.append(wc)
        return out

    def wait(self) -> Generator[Any, Any, WorkCompletion]:
        """Process helper: block until the next completion arrives."""
        wc = yield self._store.get()
        return wc

    def next_event(self):
        """Direct completion path: the event that fires with the next WC.

        ``wc = yield cq.next_event()`` is equivalent to
        ``wc = yield from cq.wait()`` without the intermediate generator
        frame — preferred in dispatch loops (RPC serve/demux).
        """
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


class CompletionMux:
    """Out-of-order consumption of a set of completion events.

    ``post_send``/``post_send_many`` return one event per WR, but a caller
    that waits on them in posting order serializes on the *slowest prefix* —
    a completed read parked behind an uncompleted one cannot release its
    scratch buffer or be processed.  The mux funnels completions into a
    FIFO in *completion* order instead: :meth:`add` registers an event with
    an opaque tag, :meth:`next` blocks for whichever registered event fires
    first and returns ``(tag, event)``.

    Completion order is deterministic (it is the simulator's event order),
    so two identically seeded runs consume in the same sequence.
    """

    __slots__ = ("_store", "_outstanding", "_consumed_cb")

    def __init__(self, sim: "Simulator", name: str = "mux"):
        self._store = Store(sim, name=name)
        self._outstanding = 0
        # Bound once; registered on every next_event() result.
        self._consumed_cb = self._consumed

    def add(self, event, tag: Any = None) -> None:
        """Register an event; its (tag, event) pair is delivered via
        :meth:`next` once it triggers (immediately if it already has)."""
        self._outstanding += 1
        event.add_callback(lambda ev, _tag=tag: self._store.put((_tag, ev)))

    def next_event(self):
        """Direct completion path: the event firing with the next
        ``(tag, event)`` pair, for ``tag, ev = yield mux.next_event()`` —
        no intermediate generator frame per consumed completion."""
        ev = self._store.get()
        ev.add_callback(self._consumed_cb)
        return ev

    def _consumed(self, _ev) -> None:
        self._outstanding -= 1

    def next(self) -> Generator[Any, Any, tuple]:
        """Process helper: block until any registered event completes."""
        pair = yield self.next_event()
        return pair

    def __len__(self) -> int:
        """Registered events not yet consumed through :meth:`next`."""
        return self._outstanding
