"""Completion queues."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List

from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.rdma.wr import WorkCompletion


class CompletionQueue:
    """Delivery channel for work completions.

    Supports both polling (``poll``) and process-blocking consumption
    (``yield from cq.wait()``), mirroring busy-poll vs event-mode usage of a
    real CQ.
    """

    def __init__(self, sim: "Simulator", name: str = "cq"):
        self.sim = sim
        self.name = name
        self._store = Store(sim, name=name)
        self.completions = sim.metrics.counter(f"{name}.completions")

    def push(self, wc: WorkCompletion) -> None:
        """Deliver a completion (called by the QP machinery)."""
        wc.timestamp = self.sim.now
        self.completions.add()
        self._store.put(wc)

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Drain up to ``max_entries`` completions without blocking."""
        out: List[WorkCompletion] = []
        while len(out) < max_entries:
            ok, wc = self._store.try_get()
            if not ok:
                break
            out.append(wc)
        return out

    def wait(self) -> Generator[Any, Any, WorkCompletion]:
        """Process helper: block until the next completion arrives."""
        wc = yield self._store.get()
        return wc

    def __len__(self) -> int:
        return len(self._store)
