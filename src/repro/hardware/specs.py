"""Device specifications with published performance characteristics.

The paper's testbed pairs DDR4 DRAM with Intel Optane DC Persistent Memory
DIMMs over an RDMA fabric.  The numbers below follow widely published
measurements of that hardware generation:

* DDR4 DRAM: ~80 ns loaded access latency, tens of GiB/s per socket.
* Optane DC PMM (Apache Pass, 256 GB modules): ~300 ns random read latency,
  writes land in the on-DIMM write-pending queue quickly (~100 ns visible
  latency) but *sustained* write bandwidth is only ~2.3 GiB/s per DIMM versus
  ~6.6 GiB/s reads — a 3x read/write asymmetry and roughly 6x below DRAM.
  (See Izraelevitz et al., "Basic Performance Measurements of the Intel
  Optane DC Persistent Memory Module", arXiv:1903.05714.)
* Mellanox ConnectX-5, 100 Gbps: ~0.6 us half-round-trip, ~200M msgs/s on
  the wire but a few-hundred-ns per-WQE processing cost per side.

Gengar's two key mechanisms — DRAM caching of hot objects and proxy-staged
writes — exist precisely because of the NVM read latency gap and the NVM
write bandwidth wall these specs encode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.sim.units import GIB, MIB, gbps_to_bytes_per_ns, gib_per_s_to_bytes_per_ns


@dataclass(frozen=True)
class MemorySpec:
    """A byte-addressable memory device's cost model.

    Attributes:
        name: human-readable label used in metrics.
        kind: ``"dram"`` or ``"nvm"``.
        capacity_bytes: usable capacity exposed to the pool.
        read_latency_ns: per-request access latency for reads.
        write_latency_ns: per-request visible latency for writes (for NVM
            this is the ADR/WPQ buffered latency, *not* media latency —
            sustained load is bounded by ``write_bw`` instead).
        read_bw: aggregate read bandwidth in bytes/ns.
        write_bw: aggregate *sustained* write bandwidth in bytes/ns.
        channels: independent channels; each serves one request at a time at
            ``bw / channels`` so the device saturates realistically.
    """

    name: str
    kind: str
    capacity_bytes: int
    read_latency_ns: int
    write_latency_ns: int
    read_bw: float
    write_bw: float
    channels: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("dram", "nvm"):
            raise ValueError(f"unknown memory kind: {self.kind!r}")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.read_latency_ns < 0 or self.write_latency_ns < 0:
            raise ValueError("latencies must be non-negative")
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.channels < 1:
            raise ValueError("need at least one channel")

    def with_capacity(self, capacity_bytes: int) -> "MemorySpec":
        """The same device scaled to a different capacity."""
        return replace(self, capacity_bytes=capacity_bytes)


@dataclass(frozen=True)
class NicSpec:
    """An RDMA NIC's cost model.

    Attributes:
        name: label.
        processing_ns: per-work-element pipeline cost (doorbell, WQE fetch,
            DMA setup) paid on each side of every verb.
        message_rate_per_ns: sustained message rate cap (token bucket).
        message_burst: burst depth of the message-rate limiter.
        max_inline_bytes: payloads up to this size ride inside the WQE
            (saving the DMA read on the requester side).
    """

    name: str
    processing_ns: int
    message_rate_per_ns: float
    message_burst: float = 32.0
    max_inline_bytes: int = 220

    def __post_init__(self) -> None:
        if self.processing_ns < 0:
            raise ValueError("processing cost must be non-negative")
        if self.message_rate_per_ns <= 0:
            raise ValueError("message rate must be positive")


@dataclass(frozen=True)
class LinkSpec:
    """A fabric link / switch path cost model.

    Attributes:
        bandwidth: bytes/ns of each node's edge port.
        propagation_ns: one-way cable + switch latency.
        header_bytes: per-message wire overhead (headers, CRC).
        core_bandwidth: bytes/ns of each rack's core uplink/downlink; None
            keeps the fabric flat (full bisection).  A value below the sum
            of a rack's member ports models oversubscription.
        core_hop_ns: extra one-way latency for inter-rack traffic.
    """

    bandwidth: float
    propagation_ns: int
    header_bytes: int = 60
    core_bandwidth: Optional[float] = None
    core_hop_ns: int = 200

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.propagation_ns < 0:
            raise ValueError("propagation must be non-negative")
        if self.core_bandwidth is not None and self.core_bandwidth <= 0:
            raise ValueError("core bandwidth must be positive")
        if self.core_hop_ns < 0:
            raise ValueError("core hop latency must be non-negative")


# ---------------------------------------------------------------------------
# Presets (the reproduction's "testbed")
# ---------------------------------------------------------------------------

#: DDR4-2666, one socket's worth, as the DRAM side of the hybrid pool.
DDR4_DRAM = MemorySpec(
    name="ddr4",
    kind="dram",
    capacity_bytes=16 * GIB,
    read_latency_ns=80,
    write_latency_ns=80,
    read_bw=gib_per_s_to_bytes_per_ns(15.0),
    write_bw=gib_per_s_to_bytes_per_ns(15.0),
    channels=4,
)

#: Intel Optane DC PMM: slow random reads, fast buffered writes, and a hard
#: sustained-write bandwidth wall — the asymmetry Gengar is built around.
OPTANE_NVM = MemorySpec(
    name="optane",
    kind="nvm",
    capacity_bytes=128 * GIB,
    read_latency_ns=300,
    write_latency_ns=100,
    read_bw=gib_per_s_to_bytes_per_ns(6.6),
    write_bw=gib_per_s_to_bytes_per_ns(2.3),
    channels=4,
)

#: A pessimistic NVM variant (early-generation / heavily loaded DIMM) used by
#: sensitivity experiments.
SLOW_NVM = MemorySpec(
    name="slow-nvm",
    kind="nvm",
    capacity_bytes=128 * GIB,
    read_latency_ns=600,
    write_latency_ns=150,
    read_bw=gib_per_s_to_bytes_per_ns(3.0),
    write_bw=gib_per_s_to_bytes_per_ns(1.0),
    channels=2,
)

#: ConnectX-5-class RNIC.
CONNECTX5_NIC = NicSpec(
    name="cx5",
    processing_ns=250,
    message_rate_per_ns=0.075,  # 75 M msgs/s sustained
    message_burst=64.0,
    max_inline_bytes=220,
)

#: 100 Gbps fabric with a single switch hop.
DEFAULT_LINK = LinkSpec(
    bandwidth=gbps_to_bytes_per_ns(100.0),
    propagation_ns=500,
    header_bytes=60,
)

#: Small-capacity presets for unit tests (fast to simulate, same ratios).
TEST_DRAM = DDR4_DRAM.with_capacity(64 * MIB)
TEST_NVM = OPTANE_NVM.with_capacity(256 * MIB)
