"""Queued memory device model backing real byte storage.

A :class:`MemoryDevice` is both a *cost model* (requests contend for a fixed
number of channels, each serving ``latency + bytes/channel_bw``) and a
*functional store* (a ``bytearray`` that RDMA operations actually copy in and
out of).  Keeping both in one object lets tests assert data integrity and
performance shape on the same run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.resources import Resource
from repro.sim.stats import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

from repro.hardware.specs import MemorySpec


class MemoryAccessError(Exception):
    """Out-of-bounds or otherwise invalid device access."""


class SparseBuffer:
    """A page-granular sparse byte store.

    Device specs describe capacities far beyond what a host bytearray should
    eagerly allocate (an Optane DIMM is 128 GiB); pages materialize only when
    written.  Reads of untouched ranges return zeros, matching fresh memory.
    """

    PAGE_SIZE = 64 * 1024

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._pages: dict[int, bytearray] = {}

    def read(self, offset: int, nbytes: int) -> bytes:
        """Copy ``nbytes`` out, zero-filling unmaterialized pages."""
        out = bytearray(nbytes)
        pos = 0
        while pos < nbytes:
            page_no, page_off = divmod(offset + pos, self.PAGE_SIZE)
            chunk = min(nbytes - pos, self.PAGE_SIZE - page_off)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + chunk] = page[page_off : page_off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, offset: int, payload: bytes) -> None:
        """Copy ``payload`` in, materializing pages as needed."""
        pos = 0
        nbytes = len(payload)
        while pos < nbytes:
            page_no, page_off = divmod(offset + pos, self.PAGE_SIZE)
            chunk = min(nbytes - pos, self.PAGE_SIZE - page_off)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self.PAGE_SIZE)
                self._pages[page_no] = page
            page[page_off : page_off + chunk] = payload[pos : pos + chunk]
            pos += chunk

    @property
    def resident_bytes(self) -> int:
        """Host memory actually materialized (for introspection/tests)."""
        return len(self._pages) * self.PAGE_SIZE


class MemoryDevice:
    """A DRAM or NVM device with channel queuing and real backing bytes.

    Access methods are process helpers::

        data = yield from device.read(offset, nbytes)
        yield from device.write(offset, payload)

    Timing model per request: a channel is held for
    ``latency + nbytes / (bw / channels)``; requests beyond the channel count
    queue FIFO, which reproduces bandwidth saturation (the mechanism behind
    the Optane write wall that Gengar's proxy works around).
    """

    def __init__(self, sim: "Simulator", spec: MemorySpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._data = SparseBuffer(spec.capacity_bytes)
        self._channels = Resource(sim, capacity=spec.channels, name=f"{self.name}.channels")
        self._per_channel_read_bw = spec.read_bw / spec.channels
        self._per_channel_write_bw = spec.write_bw / spec.channels
        m = sim.metrics
        self.bytes_read = m.counter(f"{self.name}.bytes_read")
        self.bytes_written = m.counter(f"{self.name}.bytes_written")
        self.read_latency: Histogram = m.histogram(f"{self.name}.read_latency")
        self.write_latency: Histogram = m.histogram(f"{self.name}.write_latency")
        self.queue_depth = m.level(f"{self.name}.queue_depth")

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total device capacity in bytes."""
        return self.spec.capacity_bytes

    @property
    def is_persistent(self) -> bool:
        """True for NVM devices (contents survive 'power loss')."""
        return self.spec.kind == "nvm"

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity:
            raise MemoryAccessError(
                f"{self.name}: access [{offset}, {offset + nbytes}) outside "
                f"capacity {self.capacity}"
            )

    def read_service_time(self, nbytes: int) -> int:
        """Channel hold time for a read of ``nbytes``."""
        return self.spec.read_latency_ns + round(nbytes / self._per_channel_read_bw)

    def write_service_time(self, nbytes: int) -> int:
        """Channel hold time for a write of ``nbytes``."""
        return self.spec.write_latency_ns + round(nbytes / self._per_channel_write_bw)

    # ------------------------------------------------------------------
    # Timed, functional access (process helpers)
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> Generator[Any, Any, bytes]:
        """Read ``nbytes`` at ``offset``; returns the bytes."""
        self._check_range(offset, nbytes)
        start = self.sim.now
        self.queue_depth.adjust(+1)
        try:
            with (yield self._channels.request()):
                yield self.sim.sleep(self.read_service_time(nbytes))
        finally:
            self.queue_depth.adjust(-1)
        self.bytes_read.add(nbytes)
        self.read_latency.record(self.sim.now - start)
        return self._data.read(offset, nbytes)

    def write(self, offset: int, payload: bytes) -> Generator[Any, Any, None]:
        """Write ``payload`` at ``offset``."""
        nbytes = len(payload)
        self._check_range(offset, nbytes)
        start = self.sim.now
        self.queue_depth.adjust(+1)
        try:
            with (yield self._channels.request()):
                yield self.sim.sleep(self.write_service_time(nbytes))
        finally:
            self.queue_depth.adjust(-1)
        self._data.write(offset, payload)
        self.bytes_written.add(nbytes)
        self.write_latency.record(self.sim.now - start)

    # ------------------------------------------------------------------
    # Instant access (zero simulated cost)
    # ------------------------------------------------------------------
    # Used by the NIC's DMA engine when the timing is accounted elsewhere,
    # and by tests that need to inspect or seed contents.
    def peek(self, offset: int, nbytes: int) -> bytes:
        """Untimed read of device contents."""
        self._check_range(offset, nbytes)
        return self._data.read(offset, nbytes)

    def poke(self, offset: int, payload: bytes) -> None:
        """Untimed write of device contents."""
        self._check_range(offset, len(payload))
        self._data.write(offset, payload)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MemoryDevice {self.name} {self.spec.kind} {self.capacity >> 20} MiB>"
