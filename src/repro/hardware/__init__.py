"""Hardware models: hybrid memory devices, RDMA NICs, and the fabric.

The models are *queued cost models*: every operation acquires the physical
resource it contends for (a memory channel, a NIC pipeline slot, link
serialization time) and holds it for a latency derived from published device
characteristics.  The defaults in :mod:`repro.hardware.specs` encode the
DRAM/Optane asymmetry that motivates Gengar's design.
"""

from repro.hardware.memory import MemoryDevice
from repro.hardware.network import Fabric
from repro.hardware.nic import Nic
from repro.hardware.specs import (
    CONNECTX5_NIC,
    DDR4_DRAM,
    DEFAULT_LINK,
    OPTANE_NVM,
    LinkSpec,
    MemorySpec,
    NicSpec,
    SLOW_NVM,
)

__all__ = [
    "MemoryDevice",
    "Nic",
    "Fabric",
    "MemorySpec",
    "NicSpec",
    "LinkSpec",
    "DDR4_DRAM",
    "OPTANE_NVM",
    "SLOW_NVM",
    "CONNECTX5_NIC",
    "DEFAULT_LINK",
]
